#!/usr/bin/env bash
# Perf-regression harness: runs the factor_reuse bench and writes a
# machine-readable BENCH_pr3.json at the repo root.
#
# Usage:
#   scripts/bench.sh            # full mode (default bending-device grid)
#   scripts/bench.sh --smoke    # small grid + few reps, finishes in seconds
#
# The bench itself asserts the headline invariant (cached re-solve >= 3x
# faster than a cold factorize+solve), so a perf regression fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$(pwd)"

# Smoke runs are a gate, not a measurement: write them under target/ so the
# committed full-mode BENCH_pr3.json is never clobbered by scripts/check.sh.
OUT="$ROOT/BENCH_pr3.json"
for arg in "$@"; do
  if [ "$arg" = "--smoke" ]; then
    OUT="$ROOT/target/BENCH_pr3.smoke.json"
  fi
done

cargo bench -p maps-bench --bench factor_reuse -- "$@" --out "$OUT"
