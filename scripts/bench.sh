#!/usr/bin/env bash
# Perf-regression harness: runs the factor_reuse, obs_overhead,
# mapsd_load, and spectrum_sweep benches and writes machine-readable
# BENCH_pr3.json (factorization reuse), BENCH_pr4.json (batched vs
# sequential multi-RHS), BENCH_pr5.json (flight-recorder span/exporter
# overhead), BENCH_pr6.json (telemetry server render + scrape overhead),
# BENCH_pr7.json (mapsd daemon latency/throughput + chaos run),
# BENCH_pr8.json (blocked multi-RHS kernel + wideband spectrum sweep),
# BENCH_pr9.json (f32 tape-free inference + mixed-precision factorization),
# and BENCH_pr10.json (per-request tracing/wide-event overhead on a warm
# mapsd /solve) at the repo root.
#
# Usage:
#   scripts/bench.sh            # full mode (default bending-device grid)
#   scripts/bench.sh --smoke    # small grid + few reps, finishes in seconds
#   scripts/bench.sh --compare  # also diff fresh numbers against the newest
#                               # committed BENCH_pr*.json baseline; warn on
#                               # >10% drift
#
# The benches themselves assert the headline invariants (cached re-solve
# >= 3x faster than a cold factorize+solve; batched multi-RHS solves no
# slower than sequential at K=2 and faster at K>=4; flight-recorder
# overhead on a cached solve under 5%; a 10 Hz /metrics scrape within 5%
# of an unscraped cached solve; mapsd warm-cache p50 beats cold at every
# concurrency; the chaos run answers every request with a bounded queue
# and zero panics; f32 tape-free inference beats the taped f64 forward
# and mixed factorize+refine beats the full f64 LU at refined accuracy),
# so a perf regression fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$(pwd)"

# Smoke runs are a gate, not a measurement: write them under target/ so the
# committed full-mode JSONs are never clobbered by scripts/check.sh.
OUT="$ROOT/BENCH_pr3.json"
OUT_BATCHED="$ROOT/BENCH_pr4.json"
OUT_OBS="$ROOT/BENCH_pr5.json"
OUT_SCRAPE="$ROOT/BENCH_pr6.json"
OUT_MAPSD="$ROOT/BENCH_pr7.json"
OUT_SPECTRUM="$ROOT/BENCH_pr8.json"
OUT_PRECISION="$ROOT/BENCH_pr9.json"
OUT_REQUEST_OBS="$ROOT/BENCH_pr10.json"
COMPARE=0
BENCH_ARGS=()
for arg in "$@"; do
  case "$arg" in
    --smoke)
      OUT="$ROOT/target/BENCH_pr3.smoke.json"
      OUT_BATCHED="$ROOT/target/BENCH_pr4.smoke.json"
      OUT_OBS="$ROOT/target/BENCH_pr5.smoke.json"
      OUT_SCRAPE="$ROOT/target/BENCH_pr6.smoke.json"
      OUT_MAPSD="$ROOT/target/BENCH_pr7.smoke.json"
      OUT_SPECTRUM="$ROOT/target/BENCH_pr8.smoke.json"
      OUT_PRECISION="$ROOT/target/BENCH_pr9.smoke.json"
      OUT_REQUEST_OBS="$ROOT/target/BENCH_pr10.smoke.json"
      BENCH_ARGS+=("$arg")
      ;;
    --compare)
      COMPARE=1
      ;;
    *)
      BENCH_ARGS+=("$arg")
      ;;
  esac
done

cargo bench -p maps-bench --bench factor_reuse -- "${BENCH_ARGS[@]+"${BENCH_ARGS[@]}"}" \
  --out "$OUT" --out-batched "$OUT_BATCHED"
cargo bench -p maps-bench --bench obs_overhead -- "${BENCH_ARGS[@]+"${BENCH_ARGS[@]}"}" \
  --out "$OUT_OBS" --out-pr6 "$OUT_SCRAPE"
cargo bench -p maps-bench --bench mapsd_load -- "${BENCH_ARGS[@]+"${BENCH_ARGS[@]}"}" \
  --out-pr7 "$OUT_MAPSD"
cargo bench -p maps-bench --bench spectrum_sweep -- "${BENCH_ARGS[@]+"${BENCH_ARGS[@]}"}" \
  --out "$OUT_SPECTRUM"
cargo bench -p maps-bench --bench precision -- "${BENCH_ARGS[@]+"${BENCH_ARGS[@]}"}" \
  --out "$OUT_PRECISION"
cargo bench -p maps-bench --bench request_obs -- "${BENCH_ARGS[@]+"${BENCH_ARGS[@]}"}" \
  --out-pr10 "$OUT_REQUEST_OBS"

# --compare: diff the fresh numbers against the newest *committed*
# BENCH_pr*.json baseline (auto-detected, so new PR benches join the gate
# without editing this script). Timing leaves (*_ns, *_ms) warn when they
# grow >10%; throughput leaves (*_rps) warn when they shrink >10%. Warn,
# not fail: the hard perf invariants already gate inside the benches.
if [ "$COMPARE" = "1" ]; then
  if ! command -v python3 > /dev/null; then
    echo "bench compare: python3 unavailable, skipping baseline diff"
    exit 0
  fi
  BASELINE="$(git ls-files 'BENCH_pr*.json' | sort -V | tail -n1 || true)"
  if [ -z "$BASELINE" ]; then
    echo "bench compare: no committed BENCH_pr*.json baseline, skipping"
    exit 0
  fi
  # Map the baseline name to the matching freshly-written file.
  case "$BASELINE" in
    BENCH_pr3.json) FRESH="$OUT" ;;
    BENCH_pr4.json) FRESH="$OUT_BATCHED" ;;
    BENCH_pr5.json) FRESH="$OUT_OBS" ;;
    BENCH_pr6.json) FRESH="$OUT_SCRAPE" ;;
    BENCH_pr7.json) FRESH="$OUT_MAPSD" ;;
    BENCH_pr8.json) FRESH="$OUT_SPECTRUM" ;;
    BENCH_pr9.json) FRESH="$OUT_PRECISION" ;;
    BENCH_pr10.json) FRESH="$OUT_REQUEST_OBS" ;;
    *)
      echo "bench compare: no fresh output maps to baseline $BASELINE, skipping"
      exit 0
      ;;
  esac
  python3 - "$FRESH" "$ROOT/$BASELINE" <<'PY'
import json
import sys

fresh_path, baseline_path = sys.argv[1], sys.argv[2]
try:
    fresh = json.load(open(fresh_path))
    baseline = json.load(open(baseline_path))
except OSError as e:
    print(f"bench compare: skipping ({e})")
    sys.exit(0)

if fresh.get("mode") != baseline.get("mode"):
    print(
        f"bench compare: skipping ({fresh.get('mode')} run vs "
        f"{baseline.get('mode')} baseline are not comparable)"
    )
    sys.exit(0)


def leaves(node, path=""):
    """Yield (dotted-path, numeric value) for every numeric leaf."""
    if isinstance(node, dict):
        for k, v in node.items():
            yield from leaves(v, f"{path}.{k}" if path else k)
    elif isinstance(node, list):
        for i, v in enumerate(node):
            yield from leaves(v, f"{path}[{i}]")
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        yield path, float(node)


base = dict(leaves(baseline))
warned = 0
compared = 0
for path, now in leaves(fresh):
    prior = base.get(path)
    if prior is None or prior == 0:
        continue
    leaf = path.rsplit(".", 1)[-1]
    drift = 100.0 * (now - prior) / abs(prior)
    if leaf.endswith("_ns") or leaf.endswith("_ms"):
        compared += 1
        if drift > 10.0:
            print(f"bench compare: WARNING {path} regressed {drift:+.1f}% "
                  f"({prior:g} -> {now:g})")
            warned += 1
    elif leaf.endswith("_rps"):
        compared += 1
        if drift < -10.0:
            print(f"bench compare: WARNING {path} throughput fell {drift:+.1f}% "
                  f"({prior:g} -> {now:g})")
            warned += 1

print(
    f"bench compare: {fresh_path} vs committed {baseline_path}: "
    f"{compared} comparable leaves, {warned} over the 10% drift budget"
)
PY

  # Cross-PR kernel check: the pr8 blocked-sweep speedups against the
  # committed pr4 baseline (same workload shape, pre-blocked kernels).
  # The blocked kernels must never fall back below the pr4 numbers.
  if [ -f "$OUT_SPECTRUM" ] && git ls-files --error-unmatch BENCH_pr4.json > /dev/null 2>&1; then
    python3 - "$OUT_SPECTRUM" "$ROOT/BENCH_pr4.json" <<'PY'
import json
import sys

fresh = json.load(open(sys.argv[1]))
pr4 = json.load(open(sys.argv[2]))
base = {e["k"]: e["speedup"] for e in pr4.get("multi_rhs", [])}
note = "" if fresh.get("mode") == pr4.get("mode") else \
    f" [{fresh.get('mode')} run vs {pr4.get('mode')} baseline]"
bad = 0
for e in fresh.get("multi_rhs", []):
    k, now = e["k"], e["speedup"]
    prior = base.get(k)
    if prior is None:
        continue
    tag = "ok" if now >= prior else "WARNING: below pr4 baseline"
    bad += now < prior
    print(f"bench compare: multi_rhs K={k}: blocked {now:.3f}x vs "
          f"pr4 {prior:.3f}x ({tag}){note}")
if not base:
    print("bench compare: BENCH_pr4.json has no multi_rhs entries, skipping")
sys.exit(1 if bad else 0)
PY
  fi
fi
