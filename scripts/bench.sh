#!/usr/bin/env bash
# Perf-regression harness: runs the factor_reuse and obs_overhead benches
# and writes machine-readable BENCH_pr3.json (factorization reuse),
# BENCH_pr4.json (batched vs sequential multi-RHS), BENCH_pr5.json
# (flight-recorder span/exporter overhead), and BENCH_pr6.json (telemetry
# server render + scrape overhead) at the repo root.
#
# Usage:
#   scripts/bench.sh            # full mode (default bending-device grid)
#   scripts/bench.sh --smoke    # small grid + few reps, finishes in seconds
#   scripts/bench.sh --compare  # also diff fresh numbers against the
#                               # committed baselines; warn on >10% drift
#
# The benches themselves assert the headline invariants (cached re-solve
# >= 3x faster than a cold factorize+solve; batched multi-RHS solves no
# slower than sequential at K=2 and faster at K>=4; flight-recorder
# overhead on a cached solve under 5%; a 10 Hz /metrics scrape within 5%
# of an unscraped cached solve), so a perf regression fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$(pwd)"

# Smoke runs are a gate, not a measurement: write them under target/ so the
# committed full-mode JSONs are never clobbered by scripts/check.sh.
OUT="$ROOT/BENCH_pr3.json"
OUT_BATCHED="$ROOT/BENCH_pr4.json"
OUT_OBS="$ROOT/BENCH_pr5.json"
OUT_SCRAPE="$ROOT/BENCH_pr6.json"
COMPARE=0
BENCH_ARGS=()
for arg in "$@"; do
  case "$arg" in
    --smoke)
      OUT="$ROOT/target/BENCH_pr3.smoke.json"
      OUT_BATCHED="$ROOT/target/BENCH_pr4.smoke.json"
      OUT_OBS="$ROOT/target/BENCH_pr5.smoke.json"
      OUT_SCRAPE="$ROOT/target/BENCH_pr6.smoke.json"
      BENCH_ARGS+=("$arg")
      ;;
    --compare)
      COMPARE=1
      ;;
    *)
      BENCH_ARGS+=("$arg")
      ;;
  esac
done

cargo bench -p maps-bench --bench factor_reuse -- "${BENCH_ARGS[@]+"${BENCH_ARGS[@]}"}" \
  --out "$OUT" --out-batched "$OUT_BATCHED"
cargo bench -p maps-bench --bench obs_overhead -- "${BENCH_ARGS[@]+"${BENCH_ARGS[@]}"}" \
  --out "$OUT_OBS" --out-pr6 "$OUT_SCRAPE"

# --compare: diff the fresh BENCH_pr6.json numbers against the committed
# prior baseline. The paired cached-solve measurement appears in both files
# (BENCH_pr5 cached_solve_ns.recorder_off vs BENCH_pr6 scraped_solve_ns.idle,
# same grid and solver path), so drift between them is a real regression
# signal rather than a cross-machine artifact. Warn (not fail) on >10%:
# the hard perf invariants already gate inside the benches themselves.
if [ "$COMPARE" = "1" ]; then
  if ! command -v python3 > /dev/null; then
    echo "bench compare: python3 unavailable, skipping baseline diff"
    exit 0
  fi
  python3 - "$OUT_SCRAPE" "$ROOT/BENCH_pr5.json" <<'PY'
import json
import sys

fresh_path, baseline_path = sys.argv[1], sys.argv[2]
try:
    fresh = json.load(open(fresh_path))
    baseline = json.load(open(baseline_path))
except OSError as e:
    print(f"bench compare: skipping ({e})")
    sys.exit(0)

if fresh.get("mode") != baseline.get("mode"):
    print(
        f"bench compare: skipping ({fresh.get('mode')} run vs "
        f"{baseline.get('mode')} baseline are not comparable)"
    )
    sys.exit(0)

idle = fresh["scraped_solve_ns"]["idle"]
prior = baseline["cached_solve_ns"]["recorder_off"]
drift = 100.0 * (idle - prior) / prior
print(
    f"bench compare: cached solve idle {idle} ns vs prior baseline {prior} ns "
    f"({drift:+.1f}%)"
)
if drift > 10.0:
    print(
        f"bench compare: WARNING cached-solve baseline regressed {drift:.1f}% "
        f"(>10%) against {baseline_path}"
    )

overhead = fresh["scraped_solve_ns"]["overhead_pct"]
print(f"bench compare: 10 Hz scrape overhead on a cached solve {overhead:+.1f}%")
if overhead > 10.0:
    print(
        f"bench compare: WARNING scrape overhead {overhead:.1f}% exceeds the "
        f"10% comparison budget"
    )
PY
fi
