#!/usr/bin/env bash
# Perf-regression harness: runs the factor_reuse and obs_overhead benches
# and writes machine-readable BENCH_pr3.json (factorization reuse),
# BENCH_pr4.json (batched vs sequential multi-RHS), and BENCH_pr5.json
# (flight-recorder span/exporter overhead) at the repo root.
#
# Usage:
#   scripts/bench.sh            # full mode (default bending-device grid)
#   scripts/bench.sh --smoke    # small grid + few reps, finishes in seconds
#
# The benches themselves assert the headline invariants (cached re-solve
# >= 3x faster than a cold factorize+solve; batched multi-RHS solves no
# slower than sequential at K=2 and faster at K>=4; flight-recorder
# overhead on a cached solve under 5%), so a perf regression fails the
# script.
set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$(pwd)"

# Smoke runs are a gate, not a measurement: write them under target/ so the
# committed full-mode JSONs are never clobbered by scripts/check.sh.
OUT="$ROOT/BENCH_pr3.json"
OUT_BATCHED="$ROOT/BENCH_pr4.json"
OUT_OBS="$ROOT/BENCH_pr5.json"
for arg in "$@"; do
  if [ "$arg" = "--smoke" ]; then
    OUT="$ROOT/target/BENCH_pr3.smoke.json"
    OUT_BATCHED="$ROOT/target/BENCH_pr4.smoke.json"
    OUT_OBS="$ROOT/target/BENCH_pr5.smoke.json"
  fi
done

cargo bench -p maps-bench --bench factor_reuse -- "$@" --out "$OUT" --out-batched "$OUT_BATCHED"
cargo bench -p maps-bench --bench obs_overhead -- "$@" --out "$OUT_OBS"
