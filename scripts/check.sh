#!/usr/bin/env bash
# Full local gate: build, test, lint. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> fault-injection smoke (deterministic schedules, must recover)"
cargo run --release --example fault_injection_smoke

echo "==> factor-reuse perf smoke (cached re-solve must stay >= 3x faster)"
bash scripts/bench.sh --smoke

echo "==> all checks passed"
