#!/usr/bin/env bash
# Full local gate: build, test, lint. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> fault-injection smoke (deterministic schedules, must recover)"
cargo run --release --example fault_injection_smoke

echo "==> flight-recorder export smoke (trace + profile + series must parse)"
TRACE_DIR="target/trace_smoke"
rm -rf "$TRACE_DIR"
mkdir -p "$TRACE_DIR"
MAPS_TRACE="$TRACE_DIR/trace.json" \
MAPS_PROFILE="$TRACE_DIR/profile.txt" \
MAPS_SERIES="$TRACE_DIR/series" \
  cargo run --release --example wdm_design
test -s "$TRACE_DIR/trace.json" || { echo "missing trace.json"; exit 1; }
test -s "$TRACE_DIR/profile.txt" || { echo "missing profile.txt"; exit 1; }
ls "$TRACE_DIR"/series/*.csv > /dev/null || { echo "missing series CSVs"; exit 1; }
grep -q '"traceEvents"' "$TRACE_DIR/trace.json" || { echo "trace.json is not a Chrome trace"; exit 1; }
if command -v python3 > /dev/null; then
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$TRACE_DIR/trace.json"
fi

echo "==> factor-reuse + flight-recorder perf smoke (cached re-solve >= 3x, obs overhead < 5%)"
bash scripts/bench.sh --smoke

echo "==> all checks passed"
