#!/usr/bin/env bash
# Full local gate: build, test, lint. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test --doc --workspace -q (doc examples are the API contract)"
cargo test --doc --workspace -q

echo "==> mixed-precision smoke (MAPS_MIXED_PRECISION=1 must pass the solver suite)"
MAPS_MIXED_PRECISION=1 cargo test --release -p maps-fdfd -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> fault-injection smoke (deterministic schedules, must recover)"
cargo run --release --example fault_injection_smoke

echo "==> flight-recorder export smoke (trace + profile + series must parse)"
TRACE_DIR="target/trace_smoke"
rm -rf "$TRACE_DIR"
mkdir -p "$TRACE_DIR"
MAPS_TRACE="$TRACE_DIR/trace.json" \
MAPS_PROFILE="$TRACE_DIR/profile.txt" \
MAPS_SERIES="$TRACE_DIR/series" \
  cargo run --release --example wdm_design
test -s "$TRACE_DIR/trace.json" || { echo "missing trace.json"; exit 1; }
test -s "$TRACE_DIR/profile.txt" || { echo "missing profile.txt"; exit 1; }
ls "$TRACE_DIR"/series/*.csv > /dev/null || { echo "missing series CSVs"; exit 1; }
grep -q '"traceEvents"' "$TRACE_DIR/trace.json" || { echo "trace.json is not a Chrome trace"; exit 1; }
if command -v python3 > /dev/null; then
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$TRACE_DIR/trace.json"
fi

echo "==> telemetry smoke (/metrics + /healthz on an ephemeral port)"
SERVE_LOG="target/telemetry_smoke.log"
rm -f "$SERVE_LOG"
MAPS_OBS_ADDR=127.0.0.1:0 \
  cargo run --release --example run_report -- --serve 40 > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2> /dev/null || true' EXIT
# The example prints "telemetry: listening on http://ADDR" once bound.
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's|^telemetry: listening on http://||p' "$SERVE_LOG" | head -n1)"
  [ -n "$ADDR" ] && break
  kill -0 "$SERVE_PID" 2> /dev/null || { cat "$SERVE_LOG"; echo "serve mode died before binding"; exit 1; }
  sleep 0.1
done
test -n "$ADDR" || { cat "$SERVE_LOG"; echo "telemetry server never printed its address"; exit 1; }
# std-only scrape: bash /dev/tcp works everywhere the build does; curl is
# used when present for a second opinion on the HTTP framing.
http_get() {
  exec 3<> "/dev/tcp/${ADDR%:*}/${ADDR##*:}"
  printf 'GET %s HTTP/1.1\r\nHost: maps\r\nConnection: close\r\n\r\n' "$1" >&3
  cat <&3
  exec 3>&- 3<&-
}
sleep 0.5 # let the first workload tick land so counters are non-zero
METRICS="$(http_get /metrics)"
echo "$METRICS" | head -n1 | grep -q '200 OK' || { echo "$METRICS" | head -n5; echo "/metrics did not return 200"; exit 1; }
echo "$METRICS" | grep -q '^fdfd_solve_batch_requests_total ' || { echo "/metrics missing fdfd_solve_batch_requests_total"; exit 1; }
http_get /healthz | grep -q '200 OK' || { echo "/healthz did not return 200"; exit 1; }
if command -v curl > /dev/null; then
  curl -fsS "http://$ADDR/metrics" | grep -q '^fdfd_solve_batch_requests_total ' \
    || { echo "curl /metrics missing known counter"; exit 1; }
  curl -fsS "http://$ADDR/healthz" > /dev/null || { echo "curl /healthz failed"; exit 1; }
fi
wait "$SERVE_PID" || { cat "$SERVE_LOG"; echo "serve mode exited non-zero"; exit 1; }
trap - EXIT
grep -q 'telemetry: served 40 ticks' "$SERVE_LOG" || { cat "$SERVE_LOG"; echo "serve mode did not run to completion"; exit 1; }

echo "==> mapsd smoke (ephemeral port, concurrent burst, coalesce + shed counters, drain)"
MAPSD_LOG="target/mapsd_smoke.log"
rm -f "$MAPSD_LOG"
MAPS_D_ADDR=127.0.0.1:0 MAPS_D_WORKERS=1 MAPS_D_QUEUE=1 \
  cargo run --release -p maps-mapsd --bin mapsd > "$MAPSD_LOG" 2>&1 &
MAPSD_PID=$!
trap 'kill "$MAPSD_PID" 2> /dev/null || true' EXIT
# The daemon prints "mapsd listening on ADDR" once bound.
DADDR=""
for _ in $(seq 1 100); do
  DADDR="$(sed -n 's|^mapsd listening on ||p' "$MAPSD_LOG" | head -n1)"
  [ -n "$DADDR" ] && break
  kill -0 "$MAPSD_PID" 2> /dev/null || { cat "$MAPSD_LOG"; echo "mapsd died before binding"; exit 1; }
  sleep 0.1
done
test -n "$DADDR" || { cat "$MAPSD_LOG"; echo "mapsd never printed its address"; exit 1; }
mapsd_get() {
  exec 3<> "/dev/tcp/${DADDR%:*}/${DADDR##*:}"
  printf 'GET %s HTTP/1.1\r\nHost: maps\r\nConnection: close\r\n\r\n' "$1" >&3
  cat <&3
  exec 3>&- 3<&-
}
mapsd_post() {
  local body="$2"
  exec 3<> "/dev/tcp/${DADDR%:*}/${DADDR##*:}"
  printf 'POST %s HTTP/1.1\r\nHost: maps\r\nContent-Type: application/json\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s' \
    "$1" "${#body}" "$body" >&3
  cat <&3
  exec 3>&- 3<&-
}
mapsd_get /readyz | head -n1 | grep -q '200 OK' || { echo "/readyz not ready on a fresh daemon"; exit 1; }
# Concurrent burst of identical solves: 1 worker + queue depth 1, so the
# burst must coalesce on the shared factorization AND shed the overflow.
SOLVE_BODY='{"nx":80,"ny":80,"dx":0.05,"eps":2.25,"omega":4.05,"deadline_ms":30000}'
BURST_DIR="target/mapsd_smoke_burst"
rm -rf "$BURST_DIR"
mkdir -p "$BURST_DIR"
BURST_PIDS=()
for i in $(seq 1 8); do
  { mapsd_post /solve "$SOLVE_BODY" > "$BURST_DIR/resp_$i" 2> /dev/null || true; } &
  BURST_PIDS+=("$!")
done
# Wait on the burst only — a bare `wait` would also wait on the daemon.
wait "${BURST_PIDS[@]}"
grep -l 'HTTP/1.1 200' "$BURST_DIR"/resp_* > /dev/null || { echo "no burst request succeeded"; exit 1; }
if grep -l 'HTTP/1.1 500' "$BURST_DIR"/resp_* > /dev/null 2>&1; then
  echo "burst produced a 500"; exit 1
fi
DMETRICS="$(mapsd_get /metrics)"
echo "$DMETRICS" | awk '/^mapsd_coalesce_(leader|hit|follower)_total /{n+=$2} END{exit !(n>0)}' \
  || { echo "$DMETRICS" | grep '^mapsd_' || true; echo "/metrics shows no coalescing on an identical burst"; exit 1; }
echo "$DMETRICS" | awk '/^mapsd_shed_total /{n=$2} END{exit !(n>0)}' \
  || { echo "$DMETRICS" | grep '^mapsd_' || true; echo "/metrics shows no shed on an oversubscribed burst"; exit 1; }
mapsd_post /shutdown '' | head -n1 | grep -q '202' || { echo "/shutdown did not answer 202"; exit 1; }
wait "$MAPSD_PID" || { cat "$MAPSD_LOG"; echo "mapsd exited non-zero after drain"; exit 1; }
trap - EXIT

echo "==> request-tracing smoke (loadgen under load-shed, access-log JSONL, wide-event reconciliation, exemplars)"
ACCESS_LOG="target/mapsd_access_smoke.jsonl"
LOADGEN_OUT="target/mapsd_loadgen_smoke.log"
rm -f "$ACCESS_LOG" "$LOADGEN_OUT"
# 16 clients through a depth-2 queue: some requests shed, and every one —
# served or shed — must still land as exactly one wide event. MAPS_TRACE
# enables the recorder; slow-threshold 0 retains every span tree, so the
# latency histogram carries an exemplar.
MAPS_ACCESS_LOG="$ACCESS_LOG" MAPS_TRACE=target/mapsd_trace_smoke.json \
MAPS_TAIL_SLOW_MS=0 MAPS_TRACE_SAMPLE=4 \
  cargo run --release --example mapsd_loadgen -- \
  --clients 16 --requests 3 --queue 2 --warm --nx 40 --ny 32 \
  > "$LOADGEN_OUT" 2>&1 || { cat "$LOADGEN_OUT"; echo "loadgen failed"; exit 1; }
grep -q ' (reconciled)' "$LOADGEN_OUT" \
  || { cat "$LOADGEN_OUT"; echo "wide events did not reconcile with requests"; exit 1; }
grep -q '# {trace_id=' "$LOADGEN_OUT" \
  || { cat "$LOADGEN_OUT"; echo "no exemplar on the request latency histogram"; exit 1; }
python3 - "$ACCESS_LOG" <<'PY'
import json, sys

n = 0
for line in open(sys.argv[1]):
    line = line.strip()
    if not line:
        continue
    ev = json.loads(line)  # every line must be complete, valid JSON
    for key in ("ts", "endpoint", "client", "trace_id", "status", "disposition"):
        assert key in ev, f"wide event missing {key}: {ev}"
    n += 1
assert n == 48, f"access log has {n} events for 48 admissions"
print(f"access log: {n} valid wide events, all reconciled")
PY
cargo run --release --example run_report -- --access-log "$ACCESS_LOG" \
  > target/run_report_access_smoke.log 2>&1 \
  || { cat target/run_report_access_smoke.log; echo "run_report --access-log failed"; exit 1; }
grep -q 'slowest requests:' target/run_report_access_smoke.log \
  || { cat target/run_report_access_smoke.log; echo "forensics report missing the slowest-N table"; exit 1; }

echo "==> factor-reuse + flight-recorder perf smoke (cached re-solve >= 3x, obs overhead < 5%, scrape overhead bounded)"
bash scripts/bench.sh --smoke --compare

echo "==> all checks passed"
