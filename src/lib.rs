//! # MAPS — Multi-Fidelity AI-Augmented Photonic Simulation and Inverse Design
//!
//! A from-scratch Rust reproduction of the MAPS infrastructure (Ma et al.,
//! DATE 2025): an exact 2-D FDFD Maxwell solver with adjoint gradients
//! ([`fdfd`]), a dataset acquisition framework with a six-device benchmark
//! zoo and trajectory-aware sampling ([`data`]), a training framework with
//! neural operators and standardized metrics ([`nn`], [`train`]), and a
//! fabrication-aware adjoint inverse-design toolkit ([`invdes`]).
//!
//! ```
//! use maps::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Simulate a point source in vacuum.
//! let grid = Grid2d::new(48, 48, 0.05);
//! let eps = RealField2d::constant(grid, 1.0);
//! let j = maps::fdfd::point_source(grid, 1.2, 1.2, maps::linalg::Complex64::ONE);
//! let solver = FdfdSolver::new();
//! let ez = solver.solve_ez(&eps, &j, omega_for_wavelength(1.55))?;
//! assert!(ez.norm() > 0.0);
//! # Ok(())
//! # }
//! ```

/// Shared vocabulary: grids, fields, ports, labels, the solver trait.
pub use maps_core as core;
/// Dataset acquisition: device zoo, sampling strategies, rich labels.
pub use maps_data as data;
/// The 2-D FDFD Maxwell solver with PML, mode sources, and adjoints.
pub use maps_fdfd as fdfd;
/// Fabrication-aware adjoint inverse design.
pub use maps_invdes as invdes;
/// Numerical kernels: complex, banded LU, FFT, eigensolvers.
pub use maps_linalg as linalg;
/// The fault-tolerant persistent solve daemon (`mapsd`).
pub use maps_mapsd as mapsd;
/// Neural operator models and optimizers.
pub use maps_nn as nn;
/// Zero-dependency tracing, metrics, and convergence telemetry.
pub use maps_obs as obs;
/// Tensors and tape-based autodiff.
pub use maps_tensor as tensor;
/// Training framework: loaders, losses, metrics, neural field solver.
pub use maps_train as train;

/// The most common types for a quick start.
pub mod prelude {
    pub use maps_core::{
        omega_for_wavelength, Axis, ComplexField2d, Direction, FieldSolver, Grid2d,
        InstrumentedSolver, Port, RealField2d, Rect, Shape,
    };
    pub use maps_data::{DeviceKind, DeviceResolution, SamplerConfig, SamplingStrategy};
    pub use maps_fdfd::{FdfdSolver, ModeMonitor, ModeSource, PowerObjective};
    pub use maps_invdes::{
        DesignProblem, ExactAdjoint, InitStrategy, InverseDesigner, OptimConfig, Patch, Symmetry,
    };
    pub use maps_nn::{Fno, FnoConfig, Model};
    pub use maps_train::{train_field_model, NeuralFieldSolver, TrainConfig};
}
