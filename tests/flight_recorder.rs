//! End-to-end flight-recorder tests: convergence series written by the
//! real optimization/training/solver loops, byte-stable across identical
//! seeded runs, and a parseable Chrome trace of an instrumented run.
//!
//! These tests share the process-wide series registry and span recorder;
//! a file-local mutex serializes them.

use maps::fdfd::{FdfdSolver, PmlConfig};
use maps::invdes::{ExactAdjoint, InitStrategy, InverseDesigner, OptimConfig};
use maps::linalg::{bicgstab, Complex64, CooMatrix, IterativeOptions};
use maps::obs::recorder;
use serde::Value;
use std::collections::HashMap;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

const INVDES_ITERATIONS: usize = 6;

fn run_bend_design() -> maps::invdes::OptimResult {
    let mut device = maps::data::DeviceKind::Bending.build(maps::data::DeviceResolution::low());
    let solver = ExactAdjoint::new(FdfdSolver::with_pml(PmlConfig::auto(device.grid().dl)));
    device.problem.calibrate(solver.solver()).unwrap();
    let designer = InverseDesigner::new(OptimConfig {
        iterations: INVDES_ITERATIONS,
        learning_rate: 0.12,
        beta_start: 1.5,
        beta_growth: 1.15,
        filter_radius: 1.5,
        symmetry: None,
        litho: None,
        init: InitStrategy::Uniform(0.5),
        ..OptimConfig::default()
    });
    designer.run(&device.problem, &solver).unwrap()
}

/// Collects the convergence CSVs of one seeded bend run as name → bytes.
fn design_series_files(dir: &std::path::Path) -> HashMap<String, String> {
    maps::obs::series_reset();
    run_bend_design();
    let written = maps::obs::write_series_csv(dir).expect("series export");
    written
        .iter()
        .map(|p| {
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read_to_string(p).unwrap(),
            )
        })
        .collect()
}

#[test]
fn invdes_series_have_one_row_per_iteration_and_are_byte_stable() {
    let _guard = lock();
    let tmp = std::env::temp_dir().join(format!("maps-fr-{}", std::process::id()));
    let first = design_series_files(&tmp.join("run1"));
    let second = design_series_files(&tmp.join("run2"));

    for name in [
        "invdes.objective.csv",
        "invdes.gray_level.csv",
        "invdes.lr.csv",
    ] {
        let body = first.get(name).unwrap_or_else(|| panic!("{name} written"));
        // Header plus one row per iteration, steps 0..N in order.
        let rows: Vec<&str> = body.lines().collect();
        assert_eq!(rows.len(), 1 + INVDES_ITERATIONS, "{name}:\n{body}");
        assert_eq!(rows[0], "step,value");
        for (k, row) in rows[1..].iter().enumerate() {
            let (step, value) = row.split_once(',').expect("two columns");
            assert_eq!(step.parse::<usize>().unwrap(), k, "{name} row {k}");
            assert!(value.parse::<f64>().unwrap().is_finite(), "{name} row {k}");
        }
        // Two identical seeded runs produce byte-identical trajectories.
        assert_eq!(
            Some(body),
            second.get(name),
            "{name} differs between identical runs"
        );
    }
    std::fs::remove_dir_all(&tmp).ok();
    maps::obs::series_reset();
}

#[test]
fn bicgstab_residual_trajectory_has_one_row_per_iteration() {
    let _guard = lock();
    maps::obs::series_reset();
    recorder::enable();

    let n = 96;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, Complex64::new(2.3, 0.4));
        if i > 0 {
            coo.push(i, i - 1, Complex64::from_re(-1.0));
        }
        if i + 1 < n {
            coo.push(i, i + 1, Complex64::from_re(-1.0));
        }
    }
    let a = coo.to_csr();
    let b: Vec<Complex64> = (0..n)
        .map(|k| Complex64::new((k as f64 * 0.11).sin(), (k as f64 * 0.05).cos()))
        .collect();
    let (_, stats) = bicgstab(&a, &b, IterativeOptions::default()).unwrap();
    recorder::disable();

    let trajectories: Vec<maps::obs::Series> = maps::obs::all_series()
        .into_iter()
        .filter(|s| s.name().starts_with("bicgstab.residual."))
        .collect();
    assert_eq!(trajectories.len(), 1, "one trajectory per solve");
    let points = trajectories[0].points();
    assert_eq!(points.len(), stats.iterations, "one row per iteration");
    // Steps are 1..=iterations in order; the last value matches the
    // reported final residual.
    for (k, (step, value)) in points.iter().enumerate() {
        assert_eq!(*step, k as u64 + 1);
        assert!(value.is_finite() && *value >= 0.0);
    }
    assert_eq!(points.last().unwrap().1, stats.residual);
    maps::obs::series_reset();
}

#[test]
fn training_loss_series_has_one_row_per_epoch() {
    let _guard = lock();
    maps::obs::series_reset();

    use maps::core::{ComplexField2d, EmFields, Fidelity, Grid2d, RealField2d, RichLabels, Sample};
    let g = Grid2d::new(12, 12, 0.1);
    let samples: Vec<Sample> = (0..4)
        .map(|k| {
            let mut src = ComplexField2d::zeros(g);
            src.set(3 + k, 6, Complex64::ONE);
            let mut ez = ComplexField2d::zeros(g);
            for iy in 0..12 {
                for ix in 0..12 {
                    let d = (ix as f64 - (3 + k) as f64).abs() + (iy as f64 - 6.0).abs();
                    ez.set(ix, iy, Complex64::new((-d * 0.4).exp(), 0.0));
                }
            }
            Sample {
                device_id: format!("dev-{k}"),
                device_kind: "synthetic".into(),
                eps_r: RealField2d::constant(g, 2.0),
                density: None,
                source: src,
                labels: RichLabels {
                    fidelity: Fidelity::High,
                    wavelength: 1.55,
                    input_port: 0,
                    input_mode: 0,
                    transmissions: vec![],
                    reflection: 0.0,
                    radiation: 0.0,
                    fields: EmFields {
                        ez,
                        hx: ComplexField2d::zeros(g),
                        hy: ComplexField2d::zeros(g),
                    },
                    adjoint_gradient: None,
                    maxwell_residual: 0.0,
                },
            }
        })
        .collect();

    use maps::nn::{Fno, FnoConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut params = maps::tensor::Params::new();
    let mut rng = StdRng::seed_from_u64(0);
    let model = Fno::new(
        &mut params,
        &mut rng,
        FnoConfig {
            in_channels: 4,
            out_channels: 2,
            width: 6,
            modes: 3,
            depth: 1,
        },
    );
    let epochs = 5;
    let report = maps::train::train_field_model_validated(
        &model,
        &mut params,
        &samples[..3],
        &samples[3..],
        &maps::train::TrainConfig {
            epochs,
            learning_rate: 5e-3,
            ..Default::default()
        },
    );

    let loss = maps::obs::series("train.loss");
    let val = maps::obs::series("train.val_nl2");
    let grad_cos = maps::obs::series("train.grad_cosine");
    assert_eq!(loss.len(), epochs, "one loss row per epoch");
    assert_eq!(val.len(), epochs, "one val row per epoch");
    assert_eq!(
        grad_cos.len(),
        epochs - 1,
        "gradient similarity needs a previous epoch"
    );
    for (k, (step, value)) in loss.points().iter().enumerate() {
        assert_eq!(*step, k as u64);
        assert!(value.is_finite());
    }
    assert_eq!(report.val_epochs.len(), epochs);
    assert_eq!(report.final_val().unwrap(), val.points().last().unwrap().1);
    for (_, c) in grad_cos.points() {
        assert!((-1.0..=1.0).contains(&c), "cosine out of range: {c}");
    }
    maps::obs::series_reset();
}

#[test]
fn trace_export_of_instrumented_run_parses() {
    let _guard = lock();
    maps::obs::series_reset();
    // Cold cache so the trace contains factorization spans even when other
    // tests in this binary already solved the same geometry.
    maps::fdfd::factor_cache::global().clear();
    recorder::enable();
    run_bend_design();
    let spans = recorder::take();
    recorder::disable();

    assert!(!spans.is_empty(), "design run records spans");
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"invdes.run"), "{names:?}");
    assert!(names.contains(&"invdes.iteration"));
    assert!(names.contains(&"fdfd.factorize"));

    let json = maps::obs::chrome_trace(&spans);
    let value: Value = serde_json::from_str(&json).expect("trace parses");
    let events = value.field("traceEvents").unwrap().as_arr().unwrap();
    assert_eq!(events.len(), spans.len());
    for ev in events {
        assert!(ev.field("ts").unwrap().as_f64().unwrap() >= 0.0);
        assert!(ev.field("dur").unwrap().as_f64().unwrap() >= 0.0);
    }

    // The profile covers the same spans, and inclusive totals dominate
    // self time.
    let profile = maps::obs::profile(&spans);
    let run_entry = profile.iter().find(|e| e.name == "invdes.run").unwrap();
    assert_eq!(run_entry.count, 1);
    assert!(run_entry.self_time <= run_entry.total);
    maps::obs::series_reset();
}
