//! End-to-end MAPS-Data → MAPS-Train pipeline tests.

use maps::core::Fidelity;
use maps::data::{
    label_batch, sample_densities, Dataset, DeviceKind, DeviceResolution, GenerateConfig,
    SamplerConfig, SamplingStrategy,
};
use maps::nn::{Fno, FnoConfig};
use maps::tensor::Params;
use maps::train::{evaluate_n_l2, train_field_model, LoaderConfig, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_dataset(
    kind: DeviceKind,
    count: usize,
    seed: u64,
) -> (maps::data::DeviceSpec, Vec<maps::core::Sample>) {
    let device = kind.build(DeviceResolution::low());
    let densities = sample_densities(
        SamplingStrategy::Random,
        &device,
        &SamplerConfig {
            count,
            seed,
            trajectory_iterations: 4,
            perturbation: 0.2,
        },
    )
    .unwrap();
    let samples = label_batch(
        &device,
        &densities,
        &GenerateConfig {
            fidelity: Fidelity::Low,
            with_adjoint: false,
            with_residual: true,
            ..Default::default()
        },
    )
    .unwrap();
    (device, samples)
}

#[test]
fn generated_samples_satisfy_maxwell() {
    let (_, samples) = small_dataset(DeviceKind::Crossing, 3, 5);
    for s in &samples {
        assert!(
            s.labels.maxwell_residual < 1e-9,
            "sample {} residual {}",
            s.device_id,
            s.labels.maxwell_residual
        );
    }
}

#[test]
fn training_beats_trivial_predictor() {
    let (_, samples) = small_dataset(DeviceKind::Bending, 6, 7);
    let mut params = Params::new();
    let mut rng = StdRng::seed_from_u64(0);
    let model = Fno::new(
        &mut params,
        &mut rng,
        FnoConfig {
            in_channels: 4,
            out_channels: 2,
            width: 6,
            modes: 4,
            depth: 2,
        },
    );
    let report = train_field_model(
        &model,
        &mut params,
        &samples,
        &TrainConfig {
            epochs: 8,
            learning_rate: 5e-3,
            loader: LoaderConfig {
                batch_size: 3,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    // The zero predictor scores N-L2 = 1; training must beat it in-sample.
    let nl2 = evaluate_n_l2(&model, &params, &samples, report.normalizer);
    assert!(nl2 < 1.0, "train N-L2 {nl2} should beat trivial 1.0");
    // Loss decreased.
    assert!(report.final_loss() < report.epochs[0].loss);
}

#[test]
fn dataset_roundtrip_with_real_samples() {
    let (_, samples) = small_dataset(DeviceKind::Wdm, 2, 9);
    let ds = Dataset::from_samples(samples);
    let dir = std::env::temp_dir().join("maps_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wdm.json");
    ds.save_json(&path).unwrap();
    let back = Dataset::load_json(&path).unwrap();
    assert_eq!(back.len(), ds.len());
    assert_eq!(
        back.samples[0].labels.wavelength,
        ds.samples[0].labels.wavelength
    );
    assert_eq!(
        back.samples[0].labels.fields.ez,
        ds.samples[0].labels.fields.ez
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn multi_wavelength_device_varies_by_source() {
    let (_, samples) = small_dataset(DeviceKind::Wdm, 2, 11);
    // WDM emits two variants per density.
    assert_eq!(samples.len(), 4);
    let wavelengths: std::collections::BTreeSet<u64> = samples
        .iter()
        .map(|s| (s.labels.wavelength * 100.0).round() as u64)
        .collect();
    assert_eq!(wavelengths.len(), 2, "two wavelength channels expected");
    // Fields at the two wavelengths differ for the same structure.
    let same_structure: Vec<&maps::core::Sample> = samples
        .iter()
        .filter(|s| s.eps_r == samples[0].eps_r)
        .collect();
    assert!(same_structure.len() >= 2);
    let d = same_structure[0]
        .labels
        .fields
        .ez
        .normalized_l2_distance(&same_structure[1].labels.fields.ez);
    assert!(d > 0.01, "wavelength change should alter the field: {d}");
}
