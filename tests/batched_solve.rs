//! Integration tests for the batched excitation plane (`SolveRequest` /
//! `FieldSolver::solve_ez_batch`).
//!
//! These tests exercise the *global* factorization cache and the *global*
//! telemetry recorder, both shared by every test thread in this binary, so
//! a file-local mutex serializes them (same discipline as
//! `tests/factor_cache.rs`).

use maps::core::{
    omega_for_wavelength, ComplexField2d, FaultInjectingSolver, FaultPlan, FieldSolver, Grid2d,
    InjectedFault, RealField2d, RetryPolicy, RobustSolver, SolveRequest,
};
use maps::data::{DeviceKind, DeviceResolution};
use maps::fdfd::factor_cache::{self, DEFAULT_CAPACITY};
use maps::fdfd::{FdfdSolver, ModeMonitor, ModeSource, PmlConfig, PowerObjective};
use maps::invdes::{
    Combine, ExactAdjoint, Excitation, InitStrategy, MultiExcitationDesigner, OptimConfig,
};
use maps::linalg::Complex64;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

struct CacheGuard<'a> {
    _lock: std::sync::MutexGuard<'a, ()>,
}

fn exclusive_cache() -> CacheGuard<'static> {
    let lock = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let cache = factor_cache::global();
    cache.set_capacity(DEFAULT_CAPACITY);
    cache.clear();
    CacheGuard { _lock: lock }
}

impl Drop for CacheGuard<'_> {
    fn drop(&mut self) {
        let cache = factor_cache::global();
        cache.set_capacity(DEFAULT_CAPACITY);
        cache.clear();
    }
}

fn assert_bit_identical(a: &ComplexField2d, b: &ComplexField2d, what: &str) {
    let (a, b) = (a.as_slice(), b.as_slice());
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{what}: cell {k} differs: {x:?} != {y:?}"
        );
    }
}

fn waveguide_fixture() -> (RealField2d, ComplexField2d, ComplexField2d) {
    let grid = Grid2d::new(44, 36, 0.08);
    let mut eps = RealField2d::constant(grid, 2.25);
    for iy in 14..22 {
        for ix in 0..44 {
            eps.set(ix, iy, 12.11);
        }
    }
    let mut j1 = ComplexField2d::zeros(grid);
    j1.set(9, 18, Complex64::ONE);
    let mut j2 = ComplexField2d::zeros(grid);
    j2.set(30, 17, Complex64::new(0.3, -0.7));
    (eps, j1, j2)
}

/// Tentpole acceptance: a mixed-frequency, mixed-direction batch returns
/// exactly the bits of the scalar entry points, in request order.
#[test]
fn mixed_frequency_batch_is_bit_identical_to_scalar_path() {
    let _guard = exclusive_cache();
    let (eps, j1, j2) = waveguide_fixture();
    let w1 = omega_for_wavelength(1.50);
    let w2 = omega_for_wavelength(1.60);
    let solver = FdfdSolver::new();

    // Scalar references first (cold cache), then a cold batch.
    let refs = [
        solver.solve_ez(&eps, &j1, w1).expect("fwd w1"),
        solver.solve_ez(&eps, &j2, w2).expect("fwd w2"),
        solver.solve_adjoint_ez(&eps, &j2, w1).expect("adj w1"),
        solver.solve_adjoint_ez(&eps, &j1, w2).expect("adj w2"),
        solver.solve_ez(&eps, &j2, w1).expect("fwd w1 again"),
    ];
    factor_cache::global().clear();
    let misses_before = factor_cache::global().stats().misses;

    let requests = [
        SolveRequest::forward(&j1, w1),
        SolveRequest::forward(&j2, w2),
        SolveRequest::adjoint(&j2, w1),
        SolveRequest::adjoint(&j1, w2),
        SolveRequest::forward(&j2, w1),
    ];
    let out = solver.solve_ez_batch(&eps, &requests);
    assert_eq!(out.len(), requests.len());
    for (k, (got, want)) in out.iter().zip(&refs).enumerate() {
        let got = got.as_ref().expect("batched solve");
        assert_bit_identical(got, want, &format!("request {k}"));
    }

    // Two distinct frequencies in the batch -> exactly two factorizations.
    let misses = factor_cache::global().stats().misses - misses_before;
    assert_eq!(misses, 2, "one factorization per distinct omega");
}

fn wdm_excitations(
    device: &maps::data::DeviceSpec,
) -> Result<Vec<Excitation>, Box<dyn std::error::Error>> {
    let grid = device.grid();
    let base = &device.problem.base_eps;
    let input = device.ports[0];
    let (out_hi, out_lo) = (device.ports[1], device.ports[2]);
    let mut excitations = Vec::new();
    for (lambda, label, want, avoid) in [
        (1.50, "1.50um -> top", out_hi, out_lo),
        (1.60, "1.60um -> bottom", out_lo, out_hi),
    ] {
        let omega = omega_for_wavelength(lambda);
        let source = ModeSource::new(base, &input, omega)?.current_density(grid);
        let objective = PowerObjective::new()
            .with_term(
                ModeMonitor::new(base, &want, omega)?.outgoing_functional(),
                1.0 / device.problem.normalization,
            )
            .with_term(
                ModeMonitor::new(base, &avoid, omega)?.outgoing_functional(),
                -0.5 / device.problem.normalization,
            );
        excitations.push(Excitation {
            label: label.into(),
            omega,
            source,
            objective,
            weight: 1.0,
        });
    }
    Ok(excitations)
}

/// Acceptance: a two-excitation WDM design iteration factorizes exactly
/// once per distinct frequency — the forward batch pays one LU per ω and
/// the adjoint batch reuses both through the factor cache.
#[test]
fn wdm_iteration_factorizes_exactly_once_per_frequency() {
    let _guard = exclusive_cache();

    let mut device = DeviceKind::Wdm.build(DeviceResolution::low());
    let solver = ExactAdjoint::new(FdfdSolver::with_pml(PmlConfig::auto(device.grid().dl)));
    device
        .problem
        .calibrate(solver.solver())
        .expect("calibrate");
    let excitations = wdm_excitations(&device).expect("excitations");

    let designer = MultiExcitationDesigner::new(
        OptimConfig {
            iterations: 2,
            init: InitStrategy::Uniform(0.5),
            ..OptimConfig::default()
        },
        Combine::WeightedSum,
    );
    let (nx, ny) = device.problem.design_size;
    let theta = InitStrategy::Uniform(0.5).build(nx, ny);

    // Calibration and mode solving warmed the cache with unrelated
    // operators; the measured iterations start cold.
    factor_cache::global().clear();
    maps::obs::recorder::enable();
    let first = designer
        .evaluate(&device.problem, &excitations, &solver, &theta, 1.5)
        .expect("first iteration");
    let second = designer
        .evaluate(&device.problem, &excitations, &solver, &theta, 1.5)
        .expect("second iteration");
    let spans = maps::obs::recorder::take();
    maps::obs::recorder::disable();

    assert_eq!(first.2.len(), 2, "two per-excitation objectives");
    assert!(
        (first.0 - second.0).abs() == 0.0,
        "same design evaluates identically"
    );

    let factorizations = spans.iter().filter(|s| s.name == "fdfd.factorize").count();
    assert_eq!(
        factorizations, 2,
        "one factorization per distinct omega across both iterations \
         (adjoints and the second iteration hit the cache)"
    );

    // Each iteration issues one forward batch and one adjoint batch, each
    // carrying both excitations grouped into two single-member ω buckets.
    let batches: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "fdfd.solve_batch")
        .collect();
    assert_eq!(
        batches.len(),
        4,
        "2 iterations x (forward + adjoint) batches"
    );
    for s in &batches {
        assert_eq!(s.field("requests"), Some("2"), "both excitations per batch");
        assert_eq!(s.field("groups"), Some("2"), "two distinct frequencies");
    }
}

/// Acceptance: RobustSolver batch semantics. An injected failure is
/// retried for its own slot only; an unrecoverable one is quarantined
/// without poisoning the rest of the batch.
#[test]
fn robust_batch_quarantines_only_the_faulted_request() {
    let _guard = exclusive_cache();
    let (eps, j1, j2) = waveguide_fixture();
    let omega = omega_for_wavelength(1.55);

    let clean = FdfdSolver::new();
    let refs = [
        clean.solve_ez(&eps, &j1, omega).expect("ref 0"),
        clean.solve_ez(&eps, &j2, omega).expect("ref 1"),
        clean.solve_adjoint_ez(&eps, &j1, omega).expect("ref 2"),
    ];
    let requests = [
        SolveRequest::forward(&j1, omega),
        SolveRequest::forward(&j2, omega),
        SolveRequest::adjoint(&j1, omega),
    ];

    // One transient fault: within a batch, first attempts consume call
    // indices 0..K, so call 1 is request 1's first attempt and its retry
    // (call 3) succeeds.
    let transient = RobustSolver::new(
        FaultInjectingSolver::new(
            FdfdSolver::new(),
            FaultPlan::new().fail_at(1, InjectedFault::Error),
        ),
        RetryPolicy::default(),
    );
    let out = transient.solve_ez_batch(&eps, &requests);
    for (k, (got, want)) in out.iter().zip(&refs).enumerate() {
        let got = got.as_ref().expect("recovered batch slot");
        assert_bit_identical(got, want, &format!("transient request {k}"));
    }
    let stats = transient.stats();
    assert_eq!(stats.retries, 1, "exactly one retry");
    assert_eq!(stats.recovered, 1, "the faulted request recovered");
    assert_eq!(stats.unrecovered, 0);

    // A persistent fault on request 1: first attempt (call 1) and both
    // retries (calls 3, 4) fail, so only that slot is quarantined.
    let persistent = RobustSolver::new(
        FaultInjectingSolver::new(
            FdfdSolver::new(),
            FaultPlan::new()
                .fail_at(1, InjectedFault::Error)
                .fail_at(3, InjectedFault::Error)
                .fail_at(4, InjectedFault::Error),
        ),
        RetryPolicy::default(),
    );
    let out = persistent.solve_ez_batch(&eps, &requests);
    assert!(out[1].is_err(), "the poisoned request stays quarantined");
    assert_bit_identical(out[0].as_ref().expect("slot 0"), &refs[0], "healthy slot 0");
    assert_bit_identical(out[2].as_ref().expect("slot 2"), &refs[2], "healthy slot 2");
    let stats = persistent.stats();
    assert_eq!(stats.unrecovered, 1, "one quarantined request");
    assert_eq!(stats.retries, 2, "both retries consumed");
}
