//! Physics integration tests: energy accounting and reciprocity of the
//! FDFD substrate on real device geometries.

use maps::core::{Axis, Direction, FieldSolver, Grid2d, Port, RealField2d, Rect, Shape};
use maps::fdfd::{FdfdSolver, ModeMonitor, ModeSource, PmlConfig};

fn straight_guide(grid: Grid2d) -> RealField2d {
    let yc = grid.height() / 2.0;
    let mut eps = RealField2d::constant(grid, 2.07);
    maps::core::paint(
        &mut eps,
        &Shape::Rect(Rect::new(0.0, yc - 0.24, grid.width(), yc + 0.24)),
        12.11,
    );
    eps
}

/// A straight waveguide transmits essentially everything: the forward modal
/// power at the far monitor equals the forward power just after the source,
/// and the backward (reflected) amplitude is tiny.
#[test]
fn straight_waveguide_unit_transmission() {
    let grid = Grid2d::new(80, 60, 0.05);
    let eps = straight_guide(grid);
    let yc = grid.height() / 2.0;
    let omega = maps::core::omega_for_wavelength(1.55);
    let solver = FdfdSolver::with_pml(PmlConfig::auto(grid.dl));
    let input = Port::new((1.2, yc), 0.48, Axis::X, Direction::Positive);
    let j = ModeSource::new(&eps, &input, omega)
        .unwrap()
        .current_density(grid);
    let ez = solver.solve_ez(&eps, &j, omega).unwrap();

    let near = ModeMonitor::new(
        &eps,
        &Port::new((1.6, yc), 0.48, Axis::X, Direction::Positive),
        omega,
    )
    .unwrap();
    let far = ModeMonitor::new(
        &eps,
        &Port::new((grid.width() - 1.2, yc), 0.48, Axis::X, Direction::Positive),
        omega,
    )
    .unwrap();
    let p_near = near.outgoing_power(&ez);
    let p_far = far.outgoing_power(&ez);
    assert!(p_near > 0.0);
    let transmission = p_far / p_near;
    assert!(
        (transmission - 1.0).abs() < 0.05,
        "straight guide transmission {transmission}"
    );
    // Backward amplitude at the near monitor ≪ forward.
    let (fwd, bwd) = near.amplitudes(&ez);
    assert!(
        bwd.abs() < 0.1 * fwd.abs(),
        "unidirectional source leaks backward: fwd {} bwd {}",
        fwd.abs(),
        bwd.abs()
    );
}

/// Lorentz reciprocity on an arbitrary structure: with sources at A and B,
/// `Σ E_A·J_B = Σ E_B·J_A` (the FDFD operator is complex-symmetric in the
/// interior; PML staggering perturbs this only marginally).
#[test]
fn reciprocity_of_point_sources() {
    let grid = Grid2d::new(60, 60, 0.05);
    let mut eps = RealField2d::constant(grid, 2.07);
    maps::core::paint(&mut eps, &Shape::Rect(Rect::new(1.0, 1.0, 2.0, 2.0)), 12.11);
    let omega = maps::core::omega_for_wavelength(1.55);
    let solver = FdfdSolver::with_pml(PmlConfig::auto(grid.dl));
    let a = (20usize, 30usize);
    let b = (40usize, 25usize);
    let mut ja = maps::core::ComplexField2d::zeros(grid);
    ja.set(a.0, a.1, maps::linalg::Complex64::ONE);
    let mut jb = maps::core::ComplexField2d::zeros(grid);
    jb.set(b.0, b.1, maps::linalg::Complex64::ONE);
    let ea = solver.solve_ez(&eps, &ja, omega).unwrap();
    let eb = solver.solve_ez(&eps, &jb, omega).unwrap();
    let lhs = ea.get(b.0, b.1);
    let rhs = eb.get(a.0, a.1);
    assert!(
        (lhs - rhs).abs() < 1e-6 * lhs.abs().max(rhs.abs()),
        "reciprocity violated: {lhs} vs {rhs}"
    );
}

/// The exact transpose adjoint and the reciprocity-approximation adjoint
/// (default trait path) produce nearly identical adjoint fields for
/// interior-supported right-hand sides.
#[test]
fn adjoint_reciprocity_approximation_is_accurate() {
    let grid = Grid2d::new(60, 48, 0.05);
    let eps = straight_guide(grid);
    let omega = maps::core::omega_for_wavelength(1.55);
    let solver = FdfdSolver::with_pml(PmlConfig::auto(grid.dl));
    let mut rhs = maps::core::ComplexField2d::zeros(grid);
    rhs.set(30, 24, maps::linalg::Complex64::new(1.0, 0.5));
    rhs.set(31, 24, maps::linalg::Complex64::new(-0.5, 0.2));
    // Exact transpose (FdfdSolver override).
    let exact = solver.solve_adjoint_ez(&eps, &rhs, omega).unwrap();
    // Reciprocity default: forward solve with J = i·rhs/ω.
    let scale = maps::linalg::Complex64::new(0.0, 1.0 / omega);
    let j = maps::core::ComplexField2d::from_vec(
        grid,
        rhs.as_slice().iter().map(|r| *r * scale).collect(),
    );
    let approx = solver.solve_ez(&eps, &j, omega).unwrap();
    // The SC-PML operator satisfies A = D·S·D⁻¹ with S symmetric and D the
    // diagonal stretch factors, so forward and transpose solutions agree
    // exactly on the *interior* (D = 1) for interior-supported right-hand
    // sides — which is where adjoint gradients are consumed. Compare there.
    let margin = solver.pml().thickness + 2;
    let mut num = 0.0;
    let mut den = 0.0;
    for iy in margin..grid.ny - margin {
        for ix in margin..grid.nx - margin {
            num += (approx.get(ix, iy) - exact.get(ix, iy)).norm_sqr();
            den += exact.get(ix, iy).norm_sqr();
        }
    }
    let dist = (num / den).sqrt();
    assert!(dist < 1e-8, "interior reciprocity adjoint error {dist}");
}

/// Power balance on the bend device: transmission + reflection + radiation
/// accounts for the injected power within discretization tolerance.
#[test]
fn bend_power_balance() {
    use maps::data::{label_sample, DeviceKind, DeviceResolution, GenerateConfig};
    use maps::invdes::InitStrategy;
    let mut device = DeviceKind::Bending.build(DeviceResolution::high());
    let solver = FdfdSolver::with_pml(PmlConfig::auto(device.grid().dl));
    device.problem.calibrate(&solver).unwrap();
    let density = InitStrategy::Uniform(1.0)
        .build(device.problem.design_size.0, device.problem.design_size.1);
    let sample = label_sample(
        &device,
        &density,
        &device.variants[0].clone(),
        &GenerateConfig::default(),
        0,
    )
    .unwrap();
    let total =
        sample.labels.total_transmission() + sample.labels.reflection + sample.labels.radiation;
    // radiation is defined as the remainder, so the balance closes unless
    // guided power exceeded injection (which would indicate a bug).
    assert!(
        (0.9..=1.1).contains(&total),
        "power balance {total} (T {} R {} rad {})",
        sample.labels.total_transmission(),
        sample.labels.reflection,
        sample.labels.radiation
    );
    assert!(sample.labels.reflection < 1.0);
    assert!(sample.labels.total_transmission() < 1.05);
}
