//! End-to-end inverse design across device families and constraint
//! configurations.

use maps::data::{DeviceKind, DeviceResolution};
use maps::fdfd::{FdfdSolver, PmlConfig};
use maps::invdes::{
    ExactAdjoint, InitStrategy, InverseDesigner, LithoCorner, LithoModel, OptimConfig, Symmetry,
};

fn solver_for(device: &maps::data::DeviceSpec) -> ExactAdjoint {
    ExactAdjoint::new(FdfdSolver::with_pml(PmlConfig::auto(device.grid().dl)))
}

#[test]
fn bend_optimization_reaches_high_transmission() {
    let mut device = DeviceKind::Bending.build(DeviceResolution::low());
    let solver = solver_for(&device);
    device.problem.calibrate(solver.solver()).unwrap();
    let designer = InverseDesigner::new(OptimConfig {
        iterations: 18,
        learning_rate: 0.12,
        beta_start: 1.5,
        beta_growth: 1.15,
        filter_radius: 1.5,
        symmetry: None,
        litho: None,
        init: InitStrategy::Uniform(0.5),
        ..OptimConfig::default()
    });
    let result = designer.run(&device.problem, &solver).unwrap();
    let best = result.best_objective().unwrap();
    assert!(
        best > 0.5,
        "bend should exceed 50% transmission, got {best:.3}"
    );
    // Binarization progressed.
    let start_gray = result.history.first().unwrap().gray_level;
    let end_gray = result.history.last().unwrap().gray_level;
    assert!(
        end_gray < start_gray,
        "gray level should drop: {start_gray} -> {end_gray}"
    );
}

#[test]
fn crossing_optimization_with_symmetry() {
    let mut device = DeviceKind::Crossing.build(DeviceResolution::low());
    let solver = solver_for(&device);
    device.problem.calibrate(solver.solver()).unwrap();
    let designer = InverseDesigner::new(OptimConfig {
        iterations: 14,
        learning_rate: 0.12,
        beta_start: 2.0,
        beta_growth: 1.15,
        filter_radius: 1.2,
        symmetry: Some(Symmetry::MirrorY),
        litho: None,
        init: InitStrategy::TransmissionStrip {
            background: 0.3,
            strip: 0.9,
            half_height_frac: 0.25,
        },
        ..OptimConfig::default()
    });
    let result = designer.run(&device.problem, &solver).unwrap();
    assert!(
        result.best_objective().unwrap() > result.history[0].objective,
        "crossing optimization should improve"
    );
    // Symmetry constraint held: density mirror-symmetric in y.
    let d = &result.density;
    for iy in 0..d.ny() {
        for ix in 0..d.nx() {
            let a = d.get(ix, iy);
            let b = d.get(ix, d.ny() - 1 - iy);
            assert!((a - b).abs() < 1e-9, "asymmetry at ({ix},{iy})");
        }
    }
}

#[test]
fn litho_in_the_loop_changes_design_but_still_optimizes() {
    let mut device = DeviceKind::Bending.build(DeviceResolution::low());
    let solver = solver_for(&device);
    device.problem.calibrate(solver.solver()).unwrap();
    let base = OptimConfig {
        iterations: 10,
        learning_rate: 0.12,
        beta_start: 2.0,
        beta_growth: 1.2,
        filter_radius: 1.2,
        symmetry: None,
        litho: None,
        init: InitStrategy::Uniform(0.5),
        ..OptimConfig::default()
    };
    let plain = InverseDesigner::new(base.clone())
        .run(&device.problem, &solver)
        .unwrap();
    let with_litho = InverseDesigner::new(OptimConfig {
        litho: Some(LithoModel::new(device.grid().dl)),
        ..base
    })
    .run(&device.problem, &solver)
    .unwrap();
    assert!(with_litho.best_objective().unwrap() > with_litho.history[0].objective);
    // The printed design differs from the mask-only design.
    assert_ne!(plain.density, with_litho.density);
}

#[test]
fn corner_objectives_differ_without_robustness() {
    // A sanity check of the variation model itself: evaluating the same θ
    // at different corners gives different transmissions.
    let mut device = DeviceKind::Bending.build(DeviceResolution::low());
    let solver = solver_for(&device);
    device.problem.calibrate(solver.solver()).unwrap();
    let robust = maps::invdes::RobustDesigner::new(
        OptimConfig {
            iterations: 1,
            init: InitStrategy::Uniform(0.5),
            ..OptimConfig::default()
        },
        LithoModel::new(device.grid().dl),
        LithoCorner::triple(0.06, 0.25, 0.01).to_vec(),
    );
    let theta = InitStrategy::TransmissionStrip {
        background: 0.1,
        strip: 0.95,
        half_height_frac: 0.25,
    }
    .build(device.problem.design_size.0, device.problem.design_size.1);
    let (_, _, per_corner) = robust
        .evaluate(&device.problem, &solver, &theta, 10.0)
        .unwrap();
    let spread = per_corner.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - per_corner.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        spread > 1e-6,
        "process corners should change the objective, spread {spread}"
    );
}
