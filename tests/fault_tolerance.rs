//! End-to-end fault tolerance: injected solver failures through the full
//! inverse-design loop, checkpoint/resume determinism, resilient dataset
//! generation, and telemetry consistency.

use maps::core::{
    FaultInjectingSolver, FaultPlan, FieldSolver, InjectedFault, InstrumentedSolver, RetryPolicy,
    RobustSolver,
};
use maps::data::{DeviceKind, DeviceResolution, GenerateConfig};
use maps::fdfd::{FdfdSolver, PmlConfig};
use maps::invdes::{FieldGradient, InitStrategy, InverseDesigner, OptimCheckpoint, OptimConfig};

fn bend_setup() -> (maps::data::DeviceSpec, FdfdSolver) {
    let mut device = DeviceKind::Bending.build(DeviceResolution::low());
    let solver = FdfdSolver::with_pml(PmlConfig::auto(device.grid().dl));
    device.problem.calibrate(&solver).unwrap();
    (device, solver)
}

fn config(iterations: usize) -> OptimConfig {
    OptimConfig {
        iterations,
        learning_rate: 0.12,
        beta_start: 1.5,
        beta_growth: 1.15,
        filter_radius: 1.5,
        init: InitStrategy::Uniform(0.5),
        ..OptimConfig::default()
    }
}

/// An inverse-design run whose solver fails on two iterations completes,
/// records both recoveries, and still produces a finite, binarizing design.
#[test]
fn invdes_recovers_from_injected_solve_failures() {
    let (device, solver) = bend_setup();
    // FieldGradient issues one forward + one adjoint call per iteration;
    // a failed forward skips the adjoint. Call indices: it0 = {0, 1},
    // it1 = {2} (forward fails), it2 = {3, 4}, it3 = {5} (fails), …
    let faulty = FaultInjectingSolver::new(
        solver,
        FaultPlan::new()
            .fail_at(2, InjectedFault::Error)
            .fail_at(5, InjectedFault::NonFinite),
    );
    let designer = InverseDesigner::new(config(8));
    let result = designer
        .run(&device.problem, &FieldGradient::new(&faulty))
        .expect("run must survive two injected failures");

    assert_eq!(result.recoveries.len(), 2, "{:?}", result.recoveries);
    assert_eq!(result.recoveries[0].iteration, 1);
    assert_eq!(result.recoveries[1].iteration, 3);
    assert!(result.recoveries[1].error.contains("non-finite"));
    assert_eq!(result.history.iter().filter(|r| r.recovered).count(), 2);
    assert_eq!(faulty.injected(), 2);

    // The design is untouched by the poisoned solves.
    assert!(result.density.as_slice().iter().all(|v| v.is_finite()));
    assert!(result
        .density
        .as_slice()
        .iter()
        .all(|v| (0.0..=1.0).contains(v)));
    let start_gray = result.history.first().unwrap().gray_level;
    let end_gray = result.history.last().unwrap().gray_level;
    assert!(end_gray < start_gray, "binarization must still progress");
    assert!(result.best_objective().unwrap().is_finite());
}

/// Exhausting the failure budget aborts instead of looping forever.
#[test]
fn failure_budget_aborts_the_run() {
    let (device, solver) = bend_setup();
    let faulty = FaultInjectingSolver::new(solver, FaultPlan::new().always(InjectedFault::Error));
    let designer = InverseDesigner::new(OptimConfig {
        max_solve_failures: 2,
        ..config(10)
    });
    let err = designer
        .run(&device.problem, &FieldGradient::new(&faulty))
        .unwrap_err();
    assert!(
        matches!(
            err,
            maps::invdes::OptimError::TooManyFailures { failures: 3, .. }
        ),
        "{err}"
    );
}

/// Resuming from a mid-run checkpoint reproduces the uninterrupted run.
#[test]
fn checkpoint_resume_matches_uninterrupted_run() {
    let (device, solver) = bend_setup();
    let grad = FieldGradient::new(&solver);
    let designer = InverseDesigner::new(OptimConfig {
        checkpoint_every: 3,
        ..config(6)
    });

    let mut checkpoints: Vec<OptimCheckpoint> = Vec::new();
    let full = designer
        .run_resumable(
            &device.problem,
            &grad,
            None,
            |_, _, _| {},
            |cp| checkpoints.push(cp.clone()),
        )
        .unwrap();
    let cp = checkpoints
        .iter()
        .find(|cp| cp.iteration == 3)
        .expect("checkpoint at the 3-iteration boundary");

    // Round-trip through JSON like a crash/restart would.
    let restored = OptimCheckpoint::from_json(&cp.to_json().unwrap()).unwrap();
    let resumed = designer
        .run_resumable(
            &device.problem,
            &grad,
            Some(&restored),
            |_, _, _| {},
            |_| {},
        )
        .unwrap();

    let full_obj = full.history.last().unwrap().objective;
    let resumed_obj = resumed.history.last().unwrap().objective;
    assert!(
        (full_obj - resumed_obj).abs() < 1e-9,
        "resume must reproduce the final objective: {full_obj} vs {resumed_obj}"
    );
    assert_eq!(resumed.history.len(), full.history.len());
    for (a, b) in full.theta.as_slice().iter().zip(resumed.theta.as_slice()) {
        assert!((a - b).abs() < 1e-12, "θ must match after resume");
    }
}

/// A resilient generation batch with ~20% injected failures quarantines
/// exactly the failed jobs and leaves the surviving samples byte-identical
/// to a fault-free run.
#[test]
fn resilient_generation_quarantines_and_preserves_good_samples() {
    let device = DeviceKind::Bending.build(DeviceResolution::low());
    let densities: Vec<maps::invdes::Patch> = (0..5)
        .map(|k| {
            maps::invdes::Patch::constant(
                device.problem.design_size.0,
                device.problem.design_size.1,
                0.3 + 0.1 * k as f64,
            )
        })
        .collect();
    let cfg = GenerateConfig {
        with_adjoint: false,
        with_residual: false,
        ..Default::default()
    };
    // One solve per job (no adjoint) → call index == density index.
    // Failing index 1 of 5 jobs = a 20% failure rate.
    let faulty = FaultInjectingSolver::new(
        FdfdSolver::with_pml(PmlConfig::auto(device.grid().dl)),
        FaultPlan::new().fail_at(1, InjectedFault::Error),
    );
    let report = maps::data::label_batch_resilient_with(&faulty, &device, &densities, &cfg);
    assert_eq!(report.total_jobs(), 5);
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.quarantined[0].density_index, 1);
    assert_eq!(report.ok.len(), 4);
    assert!((report.quarantine_rate() - 0.2).abs() < 1e-12);

    let clean = maps::data::label_batch_resilient(&device, &densities, &cfg);
    assert!(clean.quarantined.is_empty());
    let surviving: Vec<&maps::core::Sample> = clean
        .ok
        .iter()
        .filter(|s| s.device_id != clean.ok[1].device_id)
        .collect();
    assert_eq!(surviving.len(), report.ok.len());
    for (a, b) in surviving.iter().zip(&report.ok) {
        assert_eq!(a.device_id, b.device_id);
        assert_eq!(
            a.labels.fields.ez.as_slice(),
            b.labels.fields.ez.as_slice(),
            "surviving samples must be byte-identical to the fault-free run"
        );
    }
}

/// The InstrumentedSolver's failure counter and the RobustSolver's retry
/// stats must tell the same story when they wrap the same faulty solver.
#[test]
fn instrumented_failures_agree_with_robust_retry_stats() {
    let grid = maps::core::Grid2d::new(36, 32, 0.05);
    let eps = maps::core::RealField2d::constant(grid, 1.0);
    let mut j = maps::core::ComplexField2d::zeros(grid);
    j.set(18, 16, maps::linalg::Complex64::ONE);
    let omega = maps::core::omega_for_wavelength(1.55);

    // Unique name so the global `solver.<name>.failures` counter is not
    // shared with other (possibly parallel) tests.
    let faulty = FaultInjectingSolver::new(
        FdfdSolver::new(),
        FaultPlan::new()
            .fail_at(0, InjectedFault::Error)
            .fail_at(3, InjectedFault::Error),
    )
    .with_name("fault-obs-consistency");
    let robust = RobustSolver::new(InstrumentedSolver::new(faulty), RetryPolicy::default());

    // Calls 0 and 3 fail and are retried (the retry consumes the next
    // fault-free index); calls in between succeed first try.
    for _ in 0..3 {
        robust.solve_ez(&eps, &j, omega).unwrap();
    }
    let stats = robust.stats();
    assert_eq!(stats.retries, 2);
    assert_eq!(stats.recovered, 2);
    assert_eq!(stats.fallbacks, 0);
    assert_eq!(stats.unrecovered, 0);
    let instrumented_failures = maps::obs::counter("solver.fault-obs-consistency.failures").get();
    assert_eq!(
        instrumented_failures, stats.retries,
        "telemetry failure count must equal the retries that hid them"
    );
    assert_eq!(robust.primary().inner().injected(), 2);
    assert_eq!(robust.primary().inner().calls(), 5);
}
