//! End-to-end tests of the live telemetry plane: the `/metrics` endpoint
//! must agree with the in-process registry, `/trace` must show worker
//! spans stitched to their spawning flow (without draining the ring),
//! `/readyz` must follow the stall watchdog, and concurrent scrapes must
//! never tear while rayon workers hammer the instruments.
//!
//! The server, registry, recorder, and watchdog are process-wide; a
//! file-local mutex serializes these tests.

use maps::core::{ComplexField2d, FieldSolver, Grid2d, RealField2d, SolveRequest};
use maps::fdfd::{FdfdSolver, PmlConfig};
use maps::obs::recorder;
use rayon::prelude::*;
use serde::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

/// Minimal std-only HTTP GET against the telemetry server.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect telemetry server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: maps\r\n\r\n").expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Value of one Prometheus sample line (`name value`) in a scrape body.
fn prom_value(body: &str, name: &str) -> Option<f64> {
    body.lines().filter(|l| !l.starts_with('#')).find_map(|l| {
        let (n, v) = l.split_once(' ')?;
        (n == name).then(|| v.trim().parse().ok())?
    })
}

/// Runs one small multi-ω solve batch through the real FDFD plane.
fn solve_workload() {
    let grid = Grid2d::new(40, 40, 0.05);
    let eps = RealField2d::constant(grid, 2.25);
    let mut j = ComplexField2d::zeros(grid);
    j.set(20, 20, maps::linalg::Complex64::ONE);
    let solver = FdfdSolver::with_pml(PmlConfig::auto(grid.dl));
    let requests = [
        SolveRequest::forward(&j, 4.0),
        SolveRequest::forward(&j, 4.25),
        SolveRequest::forward(&j, 4.5),
    ];
    for result in solver.solve_ez_batch(&eps, &requests) {
        result.expect("workload solve succeeds");
    }
}

#[test]
fn metrics_scrape_matches_in_process_registry() {
    let _guard = lock();
    let server = maps::obs::serve("127.0.0.1:0").expect("bind ephemeral");
    solve_workload();

    // Read the registry first, then scrape: nothing else runs between the
    // two (the serial lock holds), so the values must agree exactly.
    let batch_requests = maps::obs::global()
        .counter_value("fdfd.solve_batch.requests")
        .expect("workload bumped the batch counter");
    let forward_solves = maps::obs::global()
        .counter_value("fdfd.forward_solves")
        .expect("workload bumped the forward counter");

    let (status, body) = http_get(server.addr(), "/metrics");
    assert_eq!(status, 200);
    assert_eq!(
        prom_value(&body, "fdfd_solve_batch_requests_total"),
        Some(batch_requests as f64),
        "scraped batch-request counter disagrees with the registry"
    );
    assert_eq!(
        prom_value(&body, "fdfd_forward_solves_total"),
        Some(forward_solves as f64),
        "scraped forward-solve counter disagrees with the registry"
    );
    // Span histograms export as summaries with quantiles and _count.
    assert!(
        body.contains("span_fdfd_solve_batch_seconds{quantile=\"0.5\"}"),
        "missing summary quantiles:\n{body}"
    );
    assert!(body.contains("span_fdfd_solve_batch_seconds_count"));

    let (status, snapshot) = http_get(server.addr(), "/snapshot");
    assert_eq!(status, 200);
    let parsed: Value = serde_json::from_str(&snapshot).expect("snapshot JSON parses");
    let counted = parsed
        .field("counters")
        .and_then(|c| c.field("fdfd.solve_batch.requests"))
        .and_then(Value::as_f64)
        .expect("snapshot carries the counter");
    assert_eq!(counted as u64, batch_requests);

    server.stop();
}

#[test]
fn trace_endpoint_shows_stitched_worker_flows_without_draining() {
    let _guard = lock();
    recorder::enable();
    let server = maps::obs::serve("127.0.0.1:0").expect("bind ephemeral");

    // A threaded labeling run: densities fan out over scoped workers.
    let device = maps::data::DeviceKind::Bending.build(maps::data::DeviceResolution::low());
    let densities = maps::data::sample_densities(
        maps::data::SamplingStrategy::Random,
        &device,
        &maps::data::SamplerConfig {
            count: 4,
            seed: 11,
            trajectory_iterations: 2,
            perturbation: 0.25,
        },
    )
    .expect("densities");
    let report = maps::data::label_batch_resilient_par(&device, &densities, &Default::default());
    assert!(!report.ok.is_empty(), "labeling produced samples");

    let ring_before = recorder::snapshot().len();
    let (status, body) = http_get(server.addr(), "/trace?last=4096");
    assert_eq!(status, 200);
    assert_eq!(
        recorder::snapshot().len(),
        ring_before,
        "/trace must not drain the ring"
    );

    let trace: Value = serde_json::from_str(&body).expect("trace JSON parses");
    let events = trace
        .field("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");

    // Locate the batch span and every per-density worker span.
    let mut batch: Option<(u64, u64, u64)> = None; // (span_id, flow, tid)
    let mut workers: Vec<(u64, u64, u64)> = Vec::new(); // (flow, parent, tid)
    for ev in events {
        let Ok(name) = ev.field("name").and_then(|n| n.as_str()) else {
            continue;
        };
        let arg = |key: &str| {
            ev.field("args")
                .and_then(|a| a.field(key))
                .and_then(Value::as_f64)
                .map(|v| v as u64)
        };
        let tid = ev.field("tid").and_then(Value::as_f64).unwrap() as u64;
        if name == "data.label_batch_resilient_par" {
            batch = Some((arg("span_id").unwrap(), arg("flow").unwrap(), tid));
        } else if name == "data.label_density" {
            workers.push((arg("flow").unwrap(), arg("parent").unwrap(), tid));
        }
    }
    let (batch_id, batch_flow, batch_tid) = batch.expect("batch span exported");
    assert!(!workers.is_empty(), "worker spans exported");
    for (flow, parent, _) in &workers {
        assert_eq!(*flow, batch_flow, "worker span carries the batch flow id");
        assert_eq!(*parent, batch_id, "worker span's parent is the batch span");
    }
    // With more than one core the fan-out crosses threads and the exporter
    // emits flow arrows for those edges.
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    if cores > 1 && workers.iter().any(|(_, _, tid)| *tid != batch_tid) {
        assert!(
            body.contains("\"ph\":\"s\"") && body.contains("\"ph\":\"f\""),
            "cross-thread fan-out must emit flow arrows:\n{body:.360}"
        );
    }

    server.stop();
    recorder::disable();
}

#[test]
fn readyz_follows_the_stall_watchdog() {
    let _guard = lock();
    let server = maps::obs::serve("127.0.0.1:0").expect("bind ephemeral");
    maps::obs::watchdog::set_deadline(
        "telemetry.test.hang",
        maps::obs::watchdog::Deadline {
            slow: Duration::from_millis(5),
            stall: Duration::from_millis(20),
        },
    );
    let watchdog =
        maps::obs::watchdog::start(Duration::from_millis(5), 0).expect("watchdog not yet running");

    let (status, body) = http_get(server.addr(), "/readyz");
    assert_eq!(status, 200, "healthy process is ready: {body}");

    {
        let _hang = maps::obs::span("telemetry.test.hang");
        std::thread::sleep(Duration::from_millis(80));
        let (status, body) = http_get(server.addr(), "/readyz");
        assert_eq!(status, 503, "stalled span must flip readiness");
        assert!(body.contains("telemetry.test.hang"), "{body}");
        let (status, _) = http_get(server.addr(), "/healthz");
        assert_eq!(status, 200, "liveness stays up during a stall");
    }
    // Span closed: readiness recovers within a few samples.
    let mut recovered = false;
    for _ in 0..40 {
        std::thread::sleep(Duration::from_millis(10));
        if http_get(server.addr(), "/readyz").0 == 200 {
            recovered = true;
            break;
        }
    }
    assert!(recovered, "readiness must recover after the stall clears");
    assert!(
        maps::obs::global()
            .counter_value("obs.watchdog.stalls")
            .unwrap_or(0)
            >= 1
    );

    watchdog.stop();
    server.stop();
}

#[test]
fn series_endpoint_serves_csv_and_404s_unknown_names() {
    let _guard = lock();
    let server = maps::obs::serve("127.0.0.1:0").expect("bind ephemeral");
    let series = maps::obs::series("telemetry.test.objective");
    series.push(0, 0.25);
    series.push(1, 0.5);

    let (status, body) = http_get(server.addr(), "/series/telemetry.test.objective");
    assert_eq!(status, 200);
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines[0], "step,value");
    assert!(
        lines.contains(&"0,0.25") && lines.contains(&"1,0.5"),
        "{body}"
    );

    let (status, _) = http_get(server.addr(), "/series/telemetry.test.unknown");
    assert_eq!(status, 404);
    // The miss must not have created the series.
    assert!(maps::obs::series_get("telemetry.test.unknown").is_none());

    server.stop();
}

#[test]
fn concurrent_hammer_and_scrape_lose_nothing_and_never_tear() {
    let _guard = lock();
    let server = maps::obs::serve("127.0.0.1:0").expect("bind ephemeral");
    let addr = server.addr();

    const ITEMS: u64 = 2_000;
    let before = maps::obs::global()
        .counter_value("telemetry.test.hammer")
        .unwrap_or(0);

    // Scraper thread: hit /metrics as fast as it will answer while the
    // workers below hammer every instrument kind.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let scrape_count = std::sync::atomic::AtomicU64::new(0);
    let scrapes = std::thread::scope(|scope| {
        let scraper = scope.spawn(|| {
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let (status, body) = http_get(addr, "/metrics");
                assert_eq!(status, 200);
                // Tear check: every sample line still splits into exactly
                // name + value, even mid-hammer.
                for line in body
                    .lines()
                    .filter(|l| !l.is_empty() && !l.starts_with('#'))
                {
                    assert_eq!(
                        line.split_whitespace().count(),
                        2,
                        "torn render line: {line:?}"
                    );
                }
                scrape_count.fetch_add(1, std::sync::atomic::Ordering::Release);
            }
        });

        let items: Vec<u64> = (0..ITEMS).collect();
        let _: Vec<()> = items
            .par_iter()
            .map(|&k| {
                maps::obs::counter("telemetry.test.hammer").inc();
                maps::obs::histogram("telemetry.test.latency").record(k as f64 * 1e-6);
                maps::obs::series("telemetry.test.progress").push(k, k as f64);
            })
            .collect();

        // The hammer can outrun the scraper's first HTTP round trip; keep
        // the scraper going until it has demonstrably rendered mid-test.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while scrape_count.load(std::sync::atomic::Ordering::Acquire) < 2
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
        scraper.join().expect("scraper thread");
        scrape_count.load(std::sync::atomic::Ordering::Acquire)
    });
    assert!(scrapes > 0, "scraper never completed a request");

    // Nothing lost: the final scrape total equals the exact hammer count.
    let (_, body) = http_get(addr, "/metrics");
    assert_eq!(
        prom_value(&body, "telemetry_test_hammer_total"),
        Some((before + ITEMS) as f64)
    );
    assert_eq!(
        prom_value(&body, "telemetry_test_latency_count"),
        Some(ITEMS as f64)
    );
    assert_eq!(
        maps::obs::series("telemetry.test.progress").len() as u64,
        ITEMS
    );

    server.stop();
}
