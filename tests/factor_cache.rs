//! Integration tests for the process-wide factorization cache.
//!
//! These tests exercise the *global* cache and the *global* telemetry
//! registry/recorder, which are shared by every test thread in this binary.
//! A file-local mutex serializes them so stats deltas and recorded spans
//! are attributable to one test at a time.

use maps::core::{omega_for_wavelength, ComplexField2d, FieldSolver, Grid2d, RealField2d};
use maps::data::{DeviceKind, DeviceResolution};
use maps::fdfd::factor_cache::{self, DEFAULT_CAPACITY};
use maps::fdfd::{FdfdSolver, PmlConfig};
use maps::invdes::{ExactAdjoint, InitStrategy, InverseDesigner, OptimConfig};
use maps::linalg::Complex64;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

/// Locks the global cache for one test: resets capacity to the default and
/// drops every cached factor, restoring the same state on drop.
struct CacheGuard<'a> {
    _lock: std::sync::MutexGuard<'a, ()>,
}

fn exclusive_cache() -> CacheGuard<'static> {
    let lock = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let cache = factor_cache::global();
    cache.set_capacity(DEFAULT_CAPACITY);
    cache.clear();
    CacheGuard { _lock: lock }
}

impl Drop for CacheGuard<'_> {
    fn drop(&mut self) {
        let cache = factor_cache::global();
        cache.set_capacity(DEFAULT_CAPACITY);
        cache.clear();
    }
}

fn point_source(grid: Grid2d, ix: usize, iy: usize) -> ComplexField2d {
    let mut j = ComplexField2d::zeros(grid);
    j.set(ix, iy, Complex64::ONE);
    j
}

fn assert_bit_identical(a: &ComplexField2d, b: &ComplexField2d, what: &str) {
    let (a, b) = (a.as_slice(), b.as_slice());
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{what}: cell {k} differs: {x:?} != {y:?}"
        );
    }
}

#[test]
fn cache_hit_is_bit_identical_to_cold_solve() {
    let _guard = exclusive_cache();
    let cache = factor_cache::global();

    let grid = Grid2d::new(40, 36, 0.08);
    let mut eps = RealField2d::constant(grid, 2.25);
    for iy in 14..22 {
        for ix in 4..36 {
            eps.set(ix, iy, 12.11);
        }
    }
    let j = point_source(grid, 8, 18);
    let omega = omega_for_wavelength(1.55);
    let solver = FdfdSolver::new();

    let before = cache.stats();
    let cold = solver.solve_ez(&eps, &j, omega).expect("cold solve");
    let warm = solver.solve_ez(&eps, &j, omega).expect("warm solve");
    let mid = cache.stats();
    assert_eq!(mid.misses - before.misses, 1, "first solve factorizes");
    assert_eq!(mid.hits - before.hits, 1, "second solve reuses the factor");

    // Drop the cached factor and solve again from scratch: the recomputed
    // factorization must reproduce exactly the same bits.
    cache.clear();
    let recold = solver.solve_ez(&eps, &j, omega).expect("re-cold solve");

    assert_bit_identical(&cold, &warm, "cached vs cold");
    assert_bit_identical(&cold, &recold, "recomputed vs cold");
}

#[test]
fn cache_invalidates_on_eps_omega_and_pml_change() {
    let _guard = exclusive_cache();
    let cache = factor_cache::global();

    let grid = Grid2d::new(32, 32, 0.08);
    let eps = RealField2d::constant(grid, 2.25);
    let j = point_source(grid, 16, 16);
    let omega = omega_for_wavelength(1.55);
    let solver = FdfdSolver::new();

    let misses = |c: &factor_cache::FactorCache| c.stats().misses;

    let m0 = misses(cache);
    solver.solve_ez(&eps, &j, omega).expect("base solve");
    assert_eq!(misses(cache) - m0, 1);

    // One-ULP permittivity change must miss.
    let mut eps2 = eps.clone();
    eps2.set(10, 10, f64::from_bits(2.25f64.to_bits() + 1));
    let m1 = misses(cache);
    solver
        .solve_ez(&eps2, &j, omega)
        .expect("eps-changed solve");
    assert_eq!(
        misses(cache) - m1,
        1,
        "permittivity change must refactorize"
    );

    // Frequency change must miss.
    let m2 = misses(cache);
    solver
        .solve_ez(&eps, &j, omega_for_wavelength(1.31))
        .expect("omega-changed solve");
    assert_eq!(misses(cache) - m2, 1, "frequency change must refactorize");

    // PML change must miss (different solver configuration, same inputs).
    let thick = FdfdSolver::with_pml(PmlConfig {
        thickness: 14,
        ..PmlConfig::default()
    });
    let m3 = misses(cache);
    thick.solve_ez(&eps, &j, omega).expect("pml-changed solve");
    assert_eq!(misses(cache) - m3, 1, "PML change must refactorize");

    // And the unchanged inputs still hit after all that churn.
    let h0 = cache.stats().hits;
    solver.solve_ez(&eps, &j, omega).expect("base solve again");
    assert_eq!(cache.stats().hits - h0, 1, "original operator still cached");
}

#[test]
fn global_lru_eviction_respects_capacity() {
    let _guard = exclusive_cache();
    let cache = factor_cache::global();
    cache.set_capacity(2);

    let grid = Grid2d::new(32, 32, 0.08);
    let j = point_source(grid, 16, 16);
    let omega = omega_for_wavelength(1.55);
    let solver = FdfdSolver::new();

    let before = cache.stats();
    // Three distinct designs through a capacity-2 ring: the first becomes
    // LRU and is evicted when the third arrives.
    for eps_val in [2.0, 4.0, 6.0] {
        let eps = RealField2d::constant(grid, eps_val);
        solver.solve_ez(&eps, &j, omega).expect("solve");
    }
    let after = cache.stats();
    assert_eq!(after.misses - before.misses, 3);
    assert_eq!(
        after.evictions - before.evictions,
        1,
        "capacity 2 holds two of three"
    );

    // The evicted (oldest) design misses again; the two survivors hit.
    let m0 = cache.stats().misses;
    solver
        .solve_ez(&RealField2d::constant(grid, 2.0), &j, omega)
        .expect("evicted design");
    assert_eq!(
        cache.stats().misses - m0,
        1,
        "evicted design must refactorize"
    );
    let h0 = cache.stats().hits;
    solver
        .solve_ez(&RealField2d::constant(grid, 6.0), &j, omega)
        .expect("retained design");
    assert_eq!(cache.stats().hits - h0, 1, "retained design must hit");
}

/// Acceptance: an inverse-design run performs exactly one factorization per
/// design iteration (the adjoint solve reuses the forward factor), and
/// disabling the cache does not change the optimization trajectory.
#[test]
fn invdes_factorizes_exactly_once_per_design_iteration() {
    let _guard = exclusive_cache();
    let cache = factor_cache::global();

    let mut device = DeviceKind::Bending.build(DeviceResolution::low());
    let solver = ExactAdjoint::new(FdfdSolver::with_pml(PmlConfig::auto(device.grid().dl)));
    device
        .problem
        .calibrate(solver.solver())
        .expect("calibrate");

    let config = OptimConfig {
        iterations: 20,
        learning_rate: 0.12,
        beta_start: 1.5,
        beta_growth: 1.15,
        filter_radius: 1.5,
        symmetry: None,
        litho: None,
        init: InitStrategy::Uniform(0.5),
        ..OptimConfig::default()
    };

    // Calibration populated the cache; start the measured run cold.
    cache.clear();
    maps::obs::recorder::enable();
    let cached = InverseDesigner::new(config.clone())
        .run(&device.problem, &solver)
        .expect("cached run");
    let spans = maps::obs::recorder::take();
    maps::obs::recorder::disable();

    let factorizations = spans.iter().filter(|s| s.name == "fdfd.factorize").count();
    assert_eq!(cached.history.len(), 20, "all iterations recorded");
    assert_eq!(
        factorizations,
        cached.history.len(),
        "exactly one factorization per design iteration (forward + adjoint share one LU)"
    );

    // Re-run with the LRU ring disabled and the cache emptied: the final
    // objective must agree to 1e-12 (reuse is bit-identical, so the entire
    // trajectory is reproduced).
    cache.set_capacity(0);
    cache.clear();
    let uncached = InverseDesigner::new(config)
        .run(&device.problem, &solver)
        .expect("uncached run");

    let a = cached.history.last().expect("cached history").objective;
    let b = uncached.history.last().expect("uncached history").objective;
    assert!(
        (a - b).abs() <= 1e-12 * a.abs().max(1.0),
        "cached ({a:.17}) and uncached ({b:.17}) objectives must match to 1e-12"
    );
}
