//! Integration of the neural solver with the inverse-design toolkit (the
//! paper's §IV-D loop, in miniature).

use maps::core::FieldSolver;
use maps::data::{
    label_batch, sample_densities, DeviceKind, DeviceResolution, GenerateConfig, SamplerConfig,
    SamplingStrategy,
};
use maps::fdfd::{FdfdSolver, PmlConfig};
use maps::invdes::{FieldGradient, GradientSolver, InitStrategy, InverseDesigner, OptimConfig};
use maps::nn::{Fno, FnoConfig};
use maps::tensor::Params;
use maps::train::{train_field_model, NeuralFieldSolver, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trained_surrogate(device: &maps::data::DeviceSpec) -> NeuralFieldSolver<Fno> {
    let densities = sample_densities(
        SamplingStrategy::PerturbedOptTraj,
        device,
        &SamplerConfig {
            count: 6,
            seed: 3,
            trajectory_iterations: 5,
            perturbation: 0.25,
        },
    )
    .unwrap();
    let samples = label_batch(
        device,
        &densities,
        &GenerateConfig {
            with_adjoint: false,
            with_residual: false,
            ..Default::default()
        },
    )
    .unwrap();
    let mut params = Params::new();
    let mut rng = StdRng::seed_from_u64(1);
    let model = Fno::new(
        &mut params,
        &mut rng,
        FnoConfig {
            in_channels: 4,
            out_channels: 2,
            width: 6,
            modes: 4,
            depth: 2,
        },
    );
    let report = train_field_model(
        &model,
        &mut params,
        &samples,
        &TrainConfig {
            epochs: 4,
            learning_rate: 4e-3,
            ..Default::default()
        },
    );
    NeuralFieldSolver::new(model, params, report.normalizer)
}

#[test]
fn neural_gradient_loop_runs_end_to_end() {
    let mut device = DeviceKind::Bending.build(DeviceResolution::low());
    let fdfd = FdfdSolver::with_pml(PmlConfig::auto(device.grid().dl));
    device.problem.calibrate(&fdfd).unwrap();
    let neural = trained_surrogate(&device);

    // The neural solver slots into the generic gradient backend.
    let grad = FieldGradient::new(&neural);
    let source = device.problem.source().unwrap();
    let objective = device.problem.objective().unwrap();
    let omega = device.problem.omega();
    let density = InitStrategy::Uniform(0.5)
        .build(device.problem.design_size.0, device.problem.design_size.1);
    let eps = device.problem.eps_for(&density);
    let eval = grad
        .objective_and_gradient(&eps, &source, omega, &objective)
        .unwrap();
    assert!(eval.objective.is_finite());
    assert!(eval.grad_eps.as_slice().iter().any(|g| *g != 0.0));

    // A short optimization run completes and records history.
    let designer = InverseDesigner::new(OptimConfig {
        iterations: 3,
        ..OptimConfig::default()
    });
    let result = designer.run(&device.problem, &grad).unwrap();
    assert_eq!(result.history.len(), 3);
    assert!(result.history.iter().all(|r| r.objective.is_finite()));
}

#[test]
fn neural_and_exact_solvers_share_the_interface() {
    let device = DeviceKind::Bending.build(DeviceResolution::low());
    let neural = trained_surrogate(&device);
    let fdfd = FdfdSolver::with_pml(PmlConfig::auto(device.grid().dl));
    let solvers: Vec<&dyn FieldSolver> = vec![&neural, &fdfd];
    let source = device.problem.source().unwrap();
    let omega = device.problem.omega();
    for s in solvers {
        let ez = s
            .solve_ez(&device.problem.base_eps, &source, omega)
            .unwrap();
        assert_eq!(ez.grid(), device.grid(), "{} grid mismatch", s.name());
        assert!(ez.norm() > 0.0, "{} returned an empty field", s.name());
    }
}
