//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Value`] tree to JSON text and parses it
//! back. Numbers round-trip exactly: Rust's float formatter emits the
//! shortest representation that parses back to the same `f64`, which is the
//! property upstream's `float_roundtrip` feature provides (that feature name
//! is accepted and a no-op here).

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization or parse failure.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.message().to_string())
    }
}

/// Serializes a value to a JSON string.
///
/// # Errors
///
/// Infallible for well-formed values; the `Result` mirrors upstream's API.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to JSON bytes.
///
/// # Errors
///
/// Infallible for well-formed values; the `Result` mirrors upstream's API.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes a value to indented JSON.
///
/// # Errors
///
/// Infallible for well-formed values; the `Result` mirrors upstream's API.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

/// Deserializes a value from JSON bytes.
///
/// # Errors
///
/// Returns [`Error`] on invalid UTF-8, malformed JSON, or a shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(s)
}

// --- writer ----------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(x) => write_number(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Obj(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(x: f64, out: &mut String) {
    if x.is_finite() {
        // Rust's shortest-roundtrip formatting; integers print without ".0"
        // in JSON terms only when exact, matching serde_json closely enough.
        let s = format!("{x}");
        out.push_str(&s);
    } else {
        // serde_json writes null for non-finite floats.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                let c =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::new("invalid \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-scan the full UTF-8 character starting at pos - 1.
                    let rest = std::str::from_utf8(&self.bytes[self.pos - 1..])
                        .map_err(|e| Error::new(e.to_string()))?;
                    let c = rest.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|e| Error::new(e.to_string()))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new(format!("invalid hex `{hex}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("-3e-4").unwrap(), -3e-4);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &x in &[std::f64::consts::PI, 1.0 / 3.0, 1e-300, 6.02214076e23] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "via {s}");
        }
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1.0f64, -2.5, 3e8];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&s).unwrap(), v);
        let pairs = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        let s = to_string(&pairs).unwrap();
        assert_eq!(from_str::<Vec<(f64, f64)>>(&s).unwrap(), pairs);
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let s = "µm φ=0.5 → ±∞".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""µm""#).unwrap(), "µm");
    }

    #[test]
    fn whitespace_and_nesting_parse() {
        let v: Vec<Vec<f64>> = from_str(" [ [1 , 2] , [ ] ,\n[3] ] ").unwrap();
        assert_eq!(v, vec![vec![1.0, 2.0], vec![], vec![3.0]]);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<f64>("1.5x").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<f64>("nul").is_err());
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = vec![vec![1.0f64, 2.0], vec![3.0]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<f64>>>(&pretty).unwrap(), v);
    }
}
