//! Offline stand-in for `rayon`.
//!
//! Implements the two patterns this workspace uses with genuine
//! parallelism: the input is striped across `std::thread::scope` workers
//! (one per available core) and results are reassembled in input order.
//! Work stealing, `ParallelIterator` adaptor chains, and the rest of
//! rayon's surface are intentionally absent.
//!
//! Supported surface:
//!
//! - `slice.par_iter().map(f).collect::<C>()` — plain parallel map; `C` is
//!   `Vec<R>` or `Result<Vec<R>, E>` (the latter short-circuits to the
//!   first error *in input order*).
//! - `slice.par_iter().map_indexed(f).collect::<C>()` — like `map`, but
//!   `f(index, &item)` also receives the item's input position. The
//!   closure may return any `Send` type, including per-item `Result`s or
//!   outcome enums collected into `Vec` — the pattern the resilient
//!   labeling path uses to quarantine failures deterministically while
//!   solving in parallel.
//! - `par_iter().len()` / `is_empty()`.
//!
//! Result ordering is always the input order, regardless of which worker
//! finished first; that invariant is what lets callers produce
//! byte-identical reports from parallel and sequential runs.
//!
//! Workers automatically adopt the spawning thread's `maps-obs`
//! [`TaskContext`](maps_obs::TaskContext) (flow id + parent span id), so
//! spans opened inside a `par_iter` closure stitch to the span that fanned
//! the work out instead of starting disconnected per-thread traces. When
//! nothing is recording, the context is the zero value and adoption is two
//! thread-local writes per worker.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Everything a caller needs in scope for `.par_iter()`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Borrowing conversion into a parallel iterator (slice-backed).
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: Sync + 'a;

    /// Returns a parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f` (executed on worker threads).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Maps every element through `f(index, &item)`, where `index` is the
    /// element's position in the input. Indexed mapping lets callers that
    /// need provenance (which job produced this outcome?) run in parallel
    /// without materializing `(index, item)` pairs first.
    pub fn map_indexed<R, F>(self, f: F) -> ParMapIndexed<'a, T, F>
    where
        F: Fn(usize, &'a T) -> R + Sync,
        R: Send,
    {
        ParMapIndexed {
            items: self.items,
            f,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The result of [`ParIter::map`], consumed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map on all elements in parallel and gathers the results in
    /// input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromParallelResults<R>,
    {
        C::from_ordered(parallel_map(self.items, &self.f))
    }
}

/// The result of [`ParIter::map_indexed`], consumed by
/// [`ParMapIndexed::collect`].
pub struct ParMapIndexed<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMapIndexed<'a, T, F> {
    /// Runs the indexed map on all elements in parallel and gathers the
    /// results in input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(usize, &'a T) -> R + Sync,
        R: Send,
        C: FromParallelResults<R>,
    {
        C::from_ordered(parallel_map_indexed(self.items, &self.f))
    }
}

/// Sink types accepted by [`ParMap::collect`].
pub trait FromParallelResults<R>: Sized {
    /// Builds the sink from results in input order.
    fn from_ordered(results: Vec<R>) -> Self;
}

impl<R> FromParallelResults<R> for Vec<R> {
    fn from_ordered(results: Vec<R>) -> Self {
        results
    }
}

impl<R, E> FromParallelResults<Result<R, E>> for Result<Vec<R>, E> {
    fn from_ordered(results: Vec<Result<R, E>>) -> Self {
        results.into_iter().collect()
    }
}

fn worker_count(jobs: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(jobs).max(1)
}

fn parallel_map<'a, T: Sync, R: Send>(items: &'a [T], f: &(impl Fn(&'a T) -> R + Sync)) -> Vec<R> {
    parallel_map_indexed(items, &|_, item| f(item))
}

fn parallel_map_indexed<'a, T: Sync, R: Send>(
    items: &'a [T],
    f: &(impl Fn(usize, &'a T) -> R + Sync),
) -> Vec<R> {
    let n = items.len();
    let workers = worker_count(n);
    if n <= 1 || workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Trace stitching: workers adopt the spawning thread's flow/parent
    // context so spans they open link back to the span that fanned out
    // (a no-op TaskContext when nothing is being recorded).
    let ctx = maps_obs::current_context();
    // Atomic work index so uneven jobs (FDFD solves of varying size) balance
    // across threads; a mutex-guarded sparse buffer reassembles order.
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _ctx = maps_obs::adopt_context(ctx);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(i, &items[i]);
                    slots.lock().expect("rayon-stub slot lock")[i] = Some(r);
                }
            });
        }
    });
    slots
        .into_inner()
        .expect("rayon-stub slot lock")
        .into_iter()
        .map(|slot| slot.expect("every index filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..500).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_into_result_short_circuits_on_err() {
        let input: Vec<i64> = (0..100).collect();
        let ok: Result<Vec<i64>, String> = input.par_iter().map(|x| Ok(x + 1)).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<i64>, String> = input
            .par_iter()
            .map(|x| {
                if *x == 50 {
                    Err("boom".to_string())
                } else {
                    Ok(*x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn map_indexed_sees_input_positions_and_preserves_order() {
        #[derive(Debug, PartialEq)]
        enum Outcome {
            Ok(usize),
            Failed(usize),
        }
        let input: Vec<u64> = (0..300).map(|x| x * 10).collect();
        let out: Vec<Outcome> = input
            .par_iter()
            .map_indexed(|i, x| {
                assert_eq!(*x, i as u64 * 10, "index must match input position");
                if i % 7 == 0 {
                    Outcome::Failed(i)
                } else {
                    Outcome::Ok(i)
                }
            })
            .collect();
        for (i, o) in out.iter().enumerate() {
            let expect = if i % 7 == 0 {
                Outcome::Failed(i)
            } else {
                Outcome::Ok(i)
            };
            assert_eq!(*o, expect);
        }
        // Indexed maps also collect into Result like plain maps.
        let err: Result<Vec<usize>, String> = input
            .par_iter()
            .map_indexed(|i, _| {
                if i == 250 {
                    Err("boom".to_string())
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let input: Vec<usize> = (0..256).collect();
        let _out: Vec<usize> = input
            .par_iter()
            .map(|x| {
                ids.lock().unwrap().insert(std::thread::current().id());
                // Small spin so threads overlap.
                std::hint::black_box((0..1000).sum::<usize>());
                *x
            })
            .collect();
        let distinct = ids.lock().unwrap().len();
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        if cores > 1 {
            assert!(
                distinct > 1,
                "expected parallel execution, saw {distinct} thread(s)"
            );
        }
    }

    #[test]
    fn workers_inherit_spawning_span_context() {
        maps_obs::recorder::enable();
        let flow = {
            let parent = maps_obs::span("rayon.test.fanout");
            let flow = parent.flow();
            assert_ne!(flow, 0);
            let input: Vec<usize> = (0..64).collect();
            let flows: Vec<(u64, u64)> = input
                .par_iter()
                .map(|_| {
                    let child = maps_obs::span("rayon.test.item");
                    (child.flow(), maps_obs::current_context().flow)
                })
                .collect();
            for (child_flow, ctx_flow) in flows {
                assert_eq!(child_flow, flow, "worker span joined the fanout flow");
                assert_eq!(ctx_flow, flow);
            }
            flow
        };
        // After the scope the spawning thread's context is restored; a new
        // root span starts a fresh flow.
        let next = maps_obs::span("rayon.test.after");
        assert_ne!(next.flow(), flow);
        drop(next);
        maps_obs::recorder::disable();
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = vec![7u8];
        let out: Vec<u8> = one.par_iter().map(|x| *x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
