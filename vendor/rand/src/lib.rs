//! Offline stand-in for the `rand` crate.
//!
//! The build environment resolves crates without network access, so the real
//! `rand` is unavailable. This vendored replacement implements exactly the
//! API surface the MAPS workspace uses — [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`] —
//! on top of a xoshiro256++ generator seeded through SplitMix64. It is not a
//! drop-in statistical replacement for upstream `rand` (stream values
//! differ), but every consumer in this workspace only relies on seeded
//! determinism and reasonable uniformity, both of which hold.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (uniform on `[0, 1)` for floats, full-range for integers).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the standard distribution.
pub trait StandardSample {
    /// Draws one value.
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::standard_sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::standard_sample(rng);
        self.start + (self.end - self.start) * u
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64 (replaces upstream's ChaCha12-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
            let k = rng.gen_range(3usize..9);
            assert!((3..9).contains(&k));
            let j = rng.gen_range(0..=4u64);
            assert!(j <= 4);
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn rng_works_through_mut_references() {
        fn sample(rng: &mut impl Rng) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(0);
        let x = sample(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
