//! Offline stand-in for `serde`.
//!
//! The real `serde` is unreachable in this build environment (crates resolve
//! offline), so this vendored replacement provides the same *spelling* —
//! `#[derive(Serialize, Deserialize)]`, `use serde::{Serialize, Deserialize}`
//! — over a radically simplified data model: every serializable value maps to
//! a [`Value`] tree, and `serde_json` renders/parses that tree. The full
//! serde visitor architecture is unnecessary here because the workspace only
//! serializes plain structs, unit enums, and one shallow mixed enum, always
//! through JSON.
//!
//! Conventions match `serde_json`'s defaults so persisted datasets keep a
//! familiar shape: structs become objects, unit enum variants become strings,
//! tuple/struct enum variants become single-key objects.

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The universal serialized form: a JSON-like tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Any number (integers are stored exactly up to 2^53).
    Num(f64),
    /// String.
    Str(String),
    /// Sequence.
    Arr(Vec<Value>),
    /// Map with insertion-ordered keys (struct fields, enum variants).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a struct field by name.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when `self` is not an object or lacks the field.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Obj(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("missing field `{name}`"))),
            other => Err(DeError::new(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Interprets the value as a string slice.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value is not a string.
    pub fn as_str(&self) -> Result<&str, DeError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }

    /// Interprets the value as a number.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value is not a number.
    pub fn as_f64(&self) -> Result<f64, DeError> {
        match self {
            Value::Num(x) => Ok(*x),
            other => Err(DeError::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }

    /// Interprets the value as a boolean.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value is not a boolean.
    pub fn as_bool(&self) -> Result<bool, DeError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }

    /// Interprets the value as an array.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value is not an array.
    pub fn as_arr(&self) -> Result<&[Value], DeError> {
        match self {
            Value::Arr(items) => Ok(items),
            other => Err(DeError::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }

    /// Interprets the value as a single-entry object — the encoding of a
    /// tuple or struct enum variant — returning `(variant_name, payload)`.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value is not a single-key object.
    pub fn as_variant(&self) -> Result<(&str, &Value), DeError> {
        match self {
            Value::Obj(entries) if entries.len() == 1 => Ok((entries[0].0.as_str(), &entries[0].1)),
            other => Err(DeError::new(format!(
                "expected single-key variant object, found {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization failure: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// The error description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the serialized [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction from the serialized [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not match `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitive impls -------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

/// Identity deserialization: parse into the raw [`Value`] tree itself,
/// for callers that inspect dynamic JSON (e.g. exported trace files).
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64()? as f32)
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let x = v.as_f64()?;
                if x.fract() != 0.0 {
                    return Err(DeError::new(format!(
                        "expected integer, found fractional number {x}"
                    )));
                }
                Ok(x as $t)
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_str()?.to_string())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_arr()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // Keys are rendered through their serialized form; string keys stay
        // strings, everything else falls back to its JSON rendering.
        Value::Obj(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        other => format!("{other:?}"),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_arr()?;
                let expected = [$($idx,)+].len();
                if items.len() != expected {
                    return Err(DeError::new(format!(
                        "expected {expected}-tuple, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<f64> = vec![1.0, 2.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let t = (1.0f64, 2.0f64);
        assert_eq!(<(f64, f64)>::from_value(&t.to_value()).unwrap(), t);
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Some(3.0).to_value()).unwrap(),
            Some(3.0)
        );
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(f64::from_value(&Value::Str("x".into())).is_err());
        assert!(usize::from_value(&Value::Num(1.5)).is_err());
        assert!(Value::Null.field("missing").is_err());
        let obj = Value::Obj(vec![("a".into(), Value::Num(1.0))]);
        assert!(obj.field("a").is_ok());
        assert!(obj.field("b").is_err());
    }
}
