//! Derive macros for the vendored `serde` stand-in.
//!
//! `syn`/`quote` are as unreachable as `serde` itself in this offline build
//! environment, so the input item is parsed directly from the raw
//! [`proc_macro::TokenStream`] and the generated impls are assembled as
//! source text. Supported shapes — which cover every derive in this
//! workspace — are:
//!
//! - structs with named fields,
//! - enums of unit variants,
//! - enums mixing unit, 1-element tuple, and named-field variants.
//!
//! Generics, tuple structs, and `#[serde(...)]` attributes are rejected with
//! a compile-time panic so that accidental new uses fail loudly instead of
//! silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// --- parsed representation -------------------------------------------------

enum Variant {
    Unit(String),
    /// One unnamed payload field, e.g. `Rect(Rect)`.
    Tuple1(String),
    /// Named payload fields, e.g. `Circle { cx, cy, r }`.
    Struct(String, Vec<String>),
}

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// --- token-stream parsing --------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility (`pub`, `pub(crate)`, ...).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, found {other:?}"),
    };
    i += 1;
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if kind == "struct" {
                Item::Struct {
                    name,
                    fields: parse_named_fields(&body),
                }
            } else {
                Item::Enum {
                    name,
                    variants: parse_variants(&body),
                }
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => panic!(
            "serde_derive stub: generic type `{name}` is not supported; \
             hand-write the impls or extend vendor/serde_derive"
        ),
        other => panic!(
            "serde_derive stub: `{name}` must have a braced body (tuple/unit \
             structs unsupported), found {other:?}"
        ),
    }
}

/// Splits a token slice on commas that sit outside `<...>` nesting.
/// (Parens/brackets/braces are single `Group` tokens, so only angle
/// brackets need explicit depth tracking.)
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Strips leading attributes and visibility from a field/variant chunk.
fn strip_attrs_and_vis(chunk: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match chunk.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return &chunk[i..],
        }
    }
}

fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    split_top_level_commas(body)
        .iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let chunk = strip_attrs_and_vis(chunk);
            match (chunk.first(), chunk.get(1)) {
                (Some(TokenTree::Ident(id)), Some(TokenTree::Punct(p))) if p.as_char() == ':' => {
                    id.to_string()
                }
                _ => panic!("serde_derive stub: expected `name: Type` field, found {chunk:?}"),
            }
        })
        .collect()
}

fn parse_variants(body: &[TokenTree]) -> Vec<Variant> {
    split_top_level_commas(body)
        .iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let chunk = strip_attrs_and_vis(chunk);
            let name = match chunk.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive stub: expected variant name, found {other:?}"),
            };
            match chunk.get(1) {
                None => Variant::Unit(name),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let payload: Vec<TokenTree> = g.stream().into_iter().collect();
                    let parts = split_top_level_commas(&payload);
                    if parts.len() != 1 {
                        panic!(
                            "serde_derive stub: tuple variant `{name}` must have exactly \
                             one field, found {}",
                            parts.len()
                        );
                    }
                    Variant::Tuple1(name)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let payload: Vec<TokenTree> = g.stream().into_iter().collect();
                    Variant::Struct(name, parse_named_fields(&payload))
                }
                other => panic!("serde_derive stub: malformed variant `{name}`: {other:?}"),
            }
        })
        .collect()
}

// --- code generation -------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "obj.push((::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut obj = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Obj(obj)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(v) => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),\n"
                    ),
                    Variant::Tuple1(v) => format!(
                        "{name}::{v}(f0) => ::serde::Value::Obj(::std::vec![(\
                         ::std::string::String::from(\"{v}\"), \
                         ::serde::Serialize::to_value(f0))]),\n"
                    ),
                    Variant::Struct(v, fields) => {
                        let binds = fields.join(", ");
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "inner.push((::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f})));\n"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                                 let mut inner = ::std::vec::Vec::new();\n\
                                 {pushes}\
                                 ::serde::Value::Obj(::std::vec![(\
                                 ::std::string::String::from(\"{v}\"), \
                                 ::serde::Value::Obj(inner))])\n\
                             }},\n"
                        )
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?,\n"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(v) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"
                    )),
                    _ => None,
                })
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(_) => None,
                    Variant::Tuple1(v) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(_payload)?)),\n"
                    )),
                    Variant::Struct(v, fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     _payload.field(\"{f}\")?)?,\n"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {inits} }}),\n"
                        ))
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if let ::serde::Value::Str(s) = v {{\n\
                             return match s.as_str() {{\n\
                                 {unit_arms}\
                                 other => ::std::result::Result::Err(::serde::DeError::new(\
                                     ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }};\n\
                         }}\n\
                         let (variant, _payload) = v.as_variant()?;\n\
                         match variant {{\n\
                             {payload_arms}\
                             other => ::std::result::Result::Err(::serde::DeError::new(\
                                 ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
