//! Offline stand-in for `criterion`.
//!
//! Keeps the `criterion_group!`/`criterion_main!`/`benchmark_group` surface
//! used by `crates/bench` but replaces the statistical machinery with a plain
//! wall-clock mean. Behaviour matches criterion's two modes:
//!
//! - under `cargo bench` (cargo passes `--bench`): each benchmark runs
//!   `sample_size` timed iterations and prints its mean per-iteration time;
//! - under `cargo test` (no `--bench` flag): each benchmark body runs exactly
//!   once as a smoke test, with no timing output.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, one per `criterion_group!` run.
pub struct Criterion {
    measure: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            // Cargo appends `--bench` when running bench targets via
            // `cargo bench`; its absence means we are a `cargo test` smoke run.
            measure: std::env::args().any(|a| a == "--bench"),
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            measure: self.measure,
            sample_size: self.default_sample_size,
        }
    }

    /// Registers a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            name: String::new(),
            measure: self.measure,
            sample_size: self.default_sample_size,
        };
        group.bench_function(id, f);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup {
    name: String,
    measure: bool,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as a benchmark named `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: if self.measure {
                self.sample_size as u64
            } else {
                1
            },
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if self.measure {
            let mean = b.elapsed.checked_div(b.iters as u32).unwrap_or_default();
            let label = if self.name.is_empty() {
                format!("{id}")
            } else {
                format!("{}/{id}", self.name)
            };
            println!("{label:<40} time: {mean:>12.3?}  ({} iters)", b.iters);
        }
        self
    }

    /// Runs `f` with an input value, criterion-style.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` does the timed work.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<R, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> R,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: format!("{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Bundles benchmark functions into a callable group, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut c = Criterion {
            measure: false,
            default_sample_size: 20,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(50);
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_runs_sample_size_iterations() {
        let mut c = Criterion {
            measure: true,
            default_sample_size: 20,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(7);
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(42), &42, |b, _| {
            b.iter(|| runs += 1)
        });
        group.finish();
        assert_eq!(runs, 7);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("32x32").to_string(), "32x32");
    }
}
