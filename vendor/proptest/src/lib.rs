//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace's property tests use: the `proptest!`
//! macro, `prop_assert!`/`prop_assert_eq!`, range and tuple strategies,
//! `prop::collection::vec`, `prop_map`/`prop_flat_map`, and
//! `ProptestConfig::with_cases`. Inputs are drawn from a deterministic
//! per-test PRNG (seeded from the test name), so failures reproduce exactly
//! on re-run. Shrinking and persisted regression files are intentionally
//! absent: a failing case panics with the ordinary assert message instead of
//! a minimized counterexample.

use std::ops::Range;

/// Per-test deterministic PRNG (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name so each property test draws a
    /// stable, independent sequence.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, mixed into a fixed base seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from [0, 1) with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty integer range strategy");
                let offset = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + offset) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// A strategy producing one fixed value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is drawn from `size` (a `usize` or `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a property test.
///
/// Without shrinking there is nothing to report beyond the assertion itself,
/// so this is `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property test (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// The `proptest!` runner wraps each case body in a loop, so rejecting a
/// case is a plain `continue` on to the next drawn input.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]` that
/// draws `cases` inputs from a deterministic PRNG and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_each! { config = $config; $($rest)* }
    };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };

    /// Mirrors the real prelude's `prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let x = Strategy::generate(&(1.5..9.5f64), &mut rng);
            assert!((1.5..9.5).contains(&x));
            let n = Strategy::generate(&(2usize..40), &mut rng);
            assert!((2..40).contains(&n));
            let s = Strategy::generate(&(-7i64..-2), &mut rng);
            assert!((-7..-2).contains(&s));
        }
    }

    #[test]
    fn determinism_per_name() {
        let draw = || {
            let mut rng = crate::TestRng::deterministic("fixed");
            Strategy::generate(&(0.0..1.0f64), &mut rng)
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn vec_and_flat_map_compose() {
        let strategy = (2usize..6, 2usize..6).prop_flat_map(|(nx, ny)| {
            prop::collection::vec(0.0..1.0f64, nx * ny).prop_map(move |v| (nx, ny, v))
        });
        let mut rng = crate::TestRng::deterministic("compose");
        for _ in 0..100 {
            let (nx, ny, v) = Strategy::generate(&strategy, &mut rng);
            assert_eq!(v.len(), nx * ny);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: tuple strategies and trailing commas.
        #[test]
        fn macro_roundtrip(
            a in 0usize..10,
            pair in (0.0..1.0f64, 0.0..1.0f64),
        ) {
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&pair.0) && (0.0..1.0).contains(&pair.1));
            prop_assert_eq!(a, a);
        }
    }
}
