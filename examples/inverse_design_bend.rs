//! Adjoint inverse design of a 90° waveguide bend (the paper's canonical
//! workload): topology-optimize the corner region for transmission with
//! minimum-feature-size filtering and progressive binarization.
//!
//! ```text
//! cargo run --release --example inverse_design_bend
//! ```

use maps::data::{DeviceKind, DeviceResolution};
use maps::invdes::{
    minimum_feature_size, ExactAdjoint, InitStrategy, InverseDesigner, OptimConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut device = DeviceKind::Bending.build(DeviceResolution::low());
    let solver = ExactAdjoint::new(maps::fdfd::FdfdSolver::with_pml(
        maps::fdfd::PmlConfig::auto(device.grid().dl),
    ));
    device.problem.calibrate(solver.solver())?;

    let designer = InverseDesigner::new(OptimConfig {
        iterations: 30,
        learning_rate: 0.12,
        beta_start: 1.5,
        beta_growth: 1.12,
        filter_radius: 1.5,
        symmetry: None,
        litho: None,
        init: InitStrategy::Uniform(0.5),
        ..OptimConfig::default()
    });

    println!("iter |  transmission |  gray level |  beta");
    let result = designer.run_with_callback(&device.problem, &solver, |rec, _, _| {
        if rec.iteration % 3 == 0 {
            println!(
                "{:4} |        {:.4} |      {:.4} | {:.2}",
                rec.iteration, rec.objective, rec.gray_level, rec.beta
            );
        }
    })?;

    let first = result.history.first().expect("history").objective;
    let best = result.best_objective().expect("non-empty history");
    println!(
        "\ntransmission: {first:.4} -> {best:.4} over {} iterations",
        result.history.len()
    );
    let mfs = minimum_feature_size(&result.density, 0.5, 0.05);
    println!(
        "final design: gray level {:.4}, minimum feature size ~{} cells ({:.0} nm)",
        result.density.gray_level(),
        mfs,
        mfs as f64 * device.grid().dl * 1000.0
    );
    assert!(best > first, "optimization must improve the bend");

    // Convergence CSVs (invdes.objective / gray_level / lr) and the run
    // report. MAPS_TRACE/MAPS_PROFILE/MAPS_SERIES export too.
    maps::obs::export_from_env()?;
    if std::env::var_os("MAPS_SERIES").is_none() {
        let dir = "target/series/inverse_design_bend";
        let written = maps::obs::write_series_csv(dir)?;
        println!("wrote {} convergence CSVs to {dir}", written.len());
    }
    println!("\n{}", maps::obs::RunReport::from_globals().render());
    Ok(())
}
