//! Deterministic fault-injection smoke run: drive a full inverse-design
//! loop and a resilient dataset batch against a solver with scheduled
//! failures, and assert the stack recovers.
//!
//! ```text
//! cargo run --release --example fault_injection_smoke
//! ```
//!
//! Exit code 0 means every injected fault was either retried away, caught
//! and recovered by the optimizer, or quarantined by the data pipeline.

use maps::core::{
    FaultInjectingSolver, FaultPlan, FieldSolver, InjectedFault, RetryPolicy, RobustSolver,
};
use maps::data::{DeviceKind, DeviceResolution, GenerateConfig};
use maps::fdfd::{FdfdSolver, PmlConfig};
use maps::invdes::{FieldGradient, InitStrategy, InverseDesigner, OptimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut device = DeviceKind::Bending.build(DeviceResolution::low());
    let exact = FdfdSolver::with_pml(PmlConfig::auto(device.grid().dl));
    device.problem.calibrate(&exact)?;

    // --- 1. Solver-level retry: transient faults hidden by RobustSolver.
    let flaky = FaultInjectingSolver::new(
        FdfdSolver::with_pml(PmlConfig::auto(device.grid().dl)),
        FaultPlan::new()
            .fail_at(0, InjectedFault::Error)
            .fail_at(3, InjectedFault::NonFinite),
    );
    let robust = RobustSolver::new(flaky, RetryPolicy::default());
    let source = device.problem.source()?;
    let omega = device.problem.omega();
    for _ in 0..3 {
        robust.solve_ez(&device.problem.base_eps, &source, omega)?;
    }
    let stats = robust.stats();
    println!(
        "robust solver: {} retries, {} non-finite catches, {} recovered",
        stats.retries, stats.nonfinite, stats.recovered
    );
    assert!(
        stats.recovered >= 2,
        "both injected faults must be recovered"
    );
    assert_eq!(stats.unrecovered, 0);

    // --- 2. Optimizer-level recovery: failures the solver cannot hide.
    let faulty = FaultInjectingSolver::new(
        FdfdSolver::with_pml(PmlConfig::auto(device.grid().dl)),
        FaultPlan::new()
            .fail_at(2, InjectedFault::Error)
            .fail_at(5, InjectedFault::NonFinite),
    );
    let designer = InverseDesigner::new(OptimConfig {
        iterations: 8,
        learning_rate: 0.12,
        beta_start: 1.5,
        beta_growth: 1.15,
        filter_radius: 1.5,
        init: InitStrategy::Uniform(0.5),
        ..OptimConfig::default()
    });
    let result = designer.run(&device.problem, &FieldGradient::new(&faulty))?;
    println!(
        "inverse design: {} iterations, {} recoveries, final objective {:.4}",
        result.history.len(),
        result.recoveries.len(),
        result
            .history
            .last()
            .map(|r| r.objective)
            .unwrap_or(f64::NAN),
    );
    for r in &result.recoveries {
        println!("  recovered at iteration {}: {}", r.iteration, r.error);
    }
    assert!(
        !result.recoveries.is_empty(),
        "faults must be recorded as recoveries"
    );
    assert!(result.density.as_slice().iter().all(|v| v.is_finite()));
    assert!(result.best_objective().expect("history").is_finite());

    // --- 3. Data-pipeline quarantine: bad samples isolated, batch survives.
    let densities: Vec<maps::invdes::Patch> = (0..5)
        .map(|k| {
            maps::invdes::Patch::constant(
                device.problem.design_size.0,
                device.problem.design_size.1,
                0.3 + 0.1 * k as f64,
            )
        })
        .collect();
    let gen_faulty = FaultInjectingSolver::new(
        FdfdSolver::with_pml(PmlConfig::auto(device.grid().dl)),
        FaultPlan::new().fail_at(1, InjectedFault::Error),
    );
    let report = maps::data::label_batch_resilient_with(
        &gen_faulty,
        &device,
        &densities,
        &GenerateConfig {
            with_adjoint: false,
            with_residual: false,
            ..Default::default()
        },
    );
    println!(
        "dataset batch: {} ok, {} quarantined ({:.0}%)",
        report.ok.len(),
        report.quarantined.len(),
        report.quarantine_rate() * 100.0
    );
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.ok.len(), 4);

    println!("fault-injection smoke: all recoveries verified");
    Ok(())
}
