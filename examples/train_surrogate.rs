//! MAPS-Train walkthrough: generate a small perturbed-trajectory dataset
//! for the bend, train an FNO field surrogate, and report the paper's
//! standardized metrics (N-L2norm and gradient similarity).
//!
//! ```text
//! cargo run --release --example train_surrogate
//! ```

use maps::data::{
    label_batch, sample_densities, Dataset, DeviceKind, DeviceResolution, GenerateConfig,
    SamplerConfig, SamplingStrategy,
};
use maps::nn::{Fno, FnoConfig};
use maps::tensor::Params;
use maps::train::{
    evaluate_n_l2, fwd_adj_field_gradient, gradient_similarity, predict_field,
    train_field_model_validated, LoaderConfig, NeuralFieldSolver, TrainConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Dataset.
    let device = DeviceKind::Bending.build(DeviceResolution::low());
    let densities = sample_densities(
        SamplingStrategy::PerturbedOptTraj,
        &device,
        &SamplerConfig {
            count: 16,
            seed: 2,
            trajectory_iterations: 8,
            perturbation: 0.25,
        },
    )?;
    let samples = label_batch(&device, &densities, &GenerateConfig::default())?;
    let dataset = Dataset::from_samples(samples);
    let (train, test) = dataset.split_by_device(0.75, 9);
    println!(
        "dataset: {} train / {} test samples",
        train.len(),
        test.len()
    );

    // 2. Model + training.
    let mut params = Params::new();
    let mut rng = StdRng::seed_from_u64(0);
    let model = Fno::new(
        &mut params,
        &mut rng,
        FnoConfig {
            in_channels: 4,
            out_channels: 2,
            width: 10,
            modes: 6,
            depth: 3,
        },
    );
    let report = train_field_model_validated(
        &model,
        &mut params,
        &train.samples,
        &test.samples,
        &TrainConfig {
            epochs: 12,
            learning_rate: 3e-3,
            loader: LoaderConfig {
                batch_size: 4,
                mixup: 0,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    for (e, v) in report.epochs.iter().zip(&report.val_epochs).step_by(3) {
        println!(
            "epoch {:3}  loss {:.4}  val N-L2 {:.4}",
            e.epoch, e.loss, v.loss
        );
    }

    // 3. Standardized metrics.
    let train_nl2 = evaluate_n_l2(&model, &params, &train.samples, report.normalizer);
    let test_nl2 = evaluate_n_l2(&model, &params, &test.samples, report.normalizer);
    println!("train N-L2norm: {train_nl2:.4}");
    println!("test  N-L2norm: {test_nl2:.4}");

    // Gradient similarity on a test sample with the Fwd&Adj-Field method.
    let solver = NeuralFieldSolver::new(model, params, report.normalizer);
    let probe = &test.samples[0];
    let omega = maps::core::omega_for_wavelength(probe.labels.wavelength);
    let objective = device.problem.objective()?;
    let grad = fwd_adj_field_gradient(&solver, &probe.eps_r, &probe.source, omega, &objective)?;
    let grad_patch = device.problem.gradient_to_patch(&grad);
    let exact = probe
        .labels
        .adjoint_gradient
        .as_ref()
        .expect("dataset carries adjoint labels");
    let grad_field =
        maps::core::RealField2d::from_vec(exact.grid(), grad_patch.as_slice().to_vec());
    let sim = gradient_similarity(&grad_field, exact);
    println!("gradient similarity (Fwd & Adj Field): {sim:.4}");

    // Sanity: the surrogate field resembles the FDFD field.
    let pred = predict_field(solver.model(), solver.params(), probe, solver.normalizer());
    println!(
        "probe-field N-L2: {:.4}",
        pred.normalized_l2_distance(&probe.labels.fields.ez)
    );

    // 4. Convergence CSVs (train.loss, train.val_nl2, train.grad_cosine)
    // and the run report. MAPS_TRACE/MAPS_PROFILE/MAPS_SERIES export too.
    maps::obs::export_from_env()?;
    if std::env::var_os("MAPS_SERIES").is_none() {
        let dir = "target/series/train_surrogate";
        let written = maps::obs::write_series_csv(dir)?;
        println!("\nwrote {} convergence CSVs to {dir}", written.len());
    }
    println!("\n{}", maps::obs::RunReport::from_globals().render());
    Ok(())
}
