//! MAPS-Data walkthrough: draw design densities with the three sampling
//! strategies, simulate them with rich labels at two fidelity levels, split
//! at the device level, and write the dataset to JSON.
//!
//! ```text
//! cargo run --release --example dataset_generation
//! ```

use maps::core::Fidelity;
use maps::data::{
    label_batch, paired_devices, richardson, sample_densities, Dataset, DeviceKind, GenerateConfig,
    SamplerConfig, SamplingStrategy,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (low_dev, mut high_dev) = paired_devices(DeviceKind::Bending);
    let mut low_dev = low_dev;
    for (dev, label) in [(&mut low_dev, "low"), (&mut high_dev, "high")] {
        let solver = maps::fdfd::FdfdSolver::with_pml(maps::fdfd::PmlConfig::auto(dev.grid().dl));
        let p = dev.problem.calibrate(&solver)?;
        println!("{label}-fidelity injected power: {p:.3e}");
    }

    let config = SamplerConfig {
        count: 6,
        seed: 11,
        trajectory_iterations: 10,
        perturbation: 0.25,
    };

    let mut dataset = Dataset::new();
    for strategy in [
        SamplingStrategy::Random,
        SamplingStrategy::OptTraj,
        SamplingStrategy::PerturbedOptTraj,
    ] {
        let densities = sample_densities(strategy, &low_dev, &config)?;
        let samples = label_batch(
            &low_dev,
            &densities,
            &GenerateConfig {
                fidelity: Fidelity::Low,
                ..Default::default()
            },
        )?;
        let mean_t: f64 = samples
            .iter()
            .map(|s| s.labels.total_transmission())
            .sum::<f64>()
            / samples.len() as f64;
        println!(
            "{:18} {} samples, mean transmission {:.4}",
            strategy.name(),
            samples.len(),
            mean_t
        );
        dataset.extend(samples);
    }

    // Multi-fidelity pairing on one structure.
    let densities = sample_densities(SamplingStrategy::Random, &low_dev, &config)?;
    let low = label_batch(&low_dev, &densities[..1], &GenerateConfig::default())?;
    let high_densities = sample_densities(SamplingStrategy::Random, &high_dev, &config)?;
    let high = label_batch(&high_dev, &high_densities[..1], &GenerateConfig::default())?;
    let t_low = low[0].labels.total_transmission();
    let t_high = high[0].labels.total_transmission();
    println!(
        "fidelity pair: low {:.4}, high {:.4}, Richardson estimate {:.4}",
        t_low,
        t_high,
        richardson(t_low, t_high, 2.0)
    );

    // Device-level split and persistence.
    let (train, test) = dataset.split_by_device(0.75, 3);
    println!("split: {} train / {} test samples", train.len(), test.len());
    let path = std::env::temp_dir().join("maps_bending_dataset.json");
    dataset.save_json(&path)?;
    let reloaded = Dataset::load_json(&path)?;
    println!(
        "saved + reloaded {} samples at {}",
        reloaded.len(),
        path.display()
    );

    // Every sample's forward/adjoint solves went through the batched solve
    // plane; the factor cache amortizes one LU per (density, frequency).
    let metrics = maps::obs::global();
    let counter = |name: &str| metrics.counter_value(name).unwrap_or(0);
    println!(
        "batched plane: {} batches / {} requests; factor cache {} hits / {} misses",
        counter("fdfd.solve_batch.calls"),
        counter("fdfd.solve_batch.requests"),
        counter("fdfd.factor_cache.hit"),
        counter("fdfd.factor_cache.miss"),
    );
    Ok(())
}
