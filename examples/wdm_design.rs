//! Multi-excitation inverse design of a wavelength-division multiplexer:
//! route λ = 1.50 µm to the top output arm and λ = 1.60 µm to the bottom
//! arm, simultaneously, with crosstalk penalties — the workflow the paper's
//! multiplexing devices (WDM/MDM) require.
//!
//! Both excitations go down the batched solve plane: every iteration issues
//! one forward batch and one adjoint batch, paying one factorization per
//! wavelength (amortized to zero by the factor cache once the design
//! stabilizes between reparametrization updates). The exit report prints
//! the factor-cache and batch counters that prove it.
//!
//! ```text
//! cargo run --release --example wdm_design
//! ```

use maps::data::{DeviceKind, DeviceResolution};
use maps::fdfd::{FdfdSolver, ModeMonitor, ModeSource, PmlConfig, PowerObjective};
use maps::invdes::{
    Combine, ExactAdjoint, Excitation, InitStrategy, MultiExcitationDesigner, OptimConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut device = DeviceKind::Wdm.build(DeviceResolution::low());
    let solver = ExactAdjoint::new(FdfdSolver::with_pml(PmlConfig::auto(device.grid().dl)));
    device.problem.calibrate(solver.solver())?;
    let grid = device.grid();
    let base = &device.problem.base_eps;
    let input = device.ports[0];
    let (out_hi, out_lo) = (device.ports[1], device.ports[2]);

    // One excitation per wavelength channel: reward the designated arm,
    // penalize the other (crosstalk).
    let mut excitations = Vec::new();
    for (lambda, label, want, avoid) in [
        (1.50, "1.50um -> top", out_hi, out_lo),
        (1.60, "1.60um -> bottom", out_lo, out_hi),
    ] {
        let omega = maps::core::omega_for_wavelength(lambda);
        let source = ModeSource::new(base, &input, omega)?.current_density(grid);
        let objective = PowerObjective::new()
            .with_term(
                ModeMonitor::new(base, &want, omega)?.outgoing_functional(),
                1.0 / device.problem.normalization,
            )
            .with_term(
                ModeMonitor::new(base, &avoid, omega)?.outgoing_functional(),
                -0.5 / device.problem.normalization,
            );
        excitations.push(Excitation {
            label: label.into(),
            omega,
            source,
            objective,
            weight: 1.0,
        });
    }

    let designer = MultiExcitationDesigner::new(
        OptimConfig {
            iterations: 25,
            learning_rate: 0.12,
            beta_start: 1.5,
            beta_growth: 1.1,
            filter_radius: 1.2,
            symmetry: None,
            litho: None,
            init: InitStrategy::Uniform(0.5),
            ..OptimConfig::default()
        },
        Combine::SoftMin { tau: 5.0 },
    );

    println!(
        "iter | combined |  {:>16} | {:>16}",
        excitations[0].label, excitations[1].label
    );
    let mut first = Vec::new();
    let mut last = Vec::new();
    let result =
        designer.run_with_callback(&device.problem, &excitations, &solver, |rec, per| {
            if rec.iteration == 0 {
                first = per.to_vec();
            }
            last = per.to_vec();
            if rec.iteration % 4 == 0 {
                println!(
                    "{:4} |   {:.4} |           {:.4} |           {:.4}",
                    rec.iteration, rec.objective, per[0], per[1]
                );
            }
        })?;

    println!(
        "\nchannel objectives: ({:.4}, {:.4}) -> ({:.4}, {:.4})",
        first[0], first[1], last[0], last[1]
    );
    let improved = last[0] > first[0] && last[1] > first[1];
    println!(
        "both wavelength channels improved? {}",
        if improved { "YES" } else { "no" }
    );

    // Wideband verdict on the final design: one batched spectrum sweep,
    // K = 32 wavelengths across the C/L bands in a single `solve_ez_batch`
    // (each distinct ω pays one factorization, then every block of
    // right-hand sides rides one pass over its cached factors). A working
    // WDM shows the 1.50 µm channel peaking on the top arm and 1.60 µm on
    // the bottom arm.
    let final_eps = device.problem.eps_for(&result.density);
    let wavelengths = maps::fdfd::linspace_wavelengths(1.45, 1.65, 32);
    let spectrum = maps::fdfd::transmission_spectrum(
        solver.solver(),
        &final_eps,
        &input,
        &[out_hi, out_lo],
        &wavelengths,
    )?;
    println!(
        "\nfinal-design transmission spectrum (K = {}):",
        spectrum.len()
    );
    println!("  lambda_um |  T(top)  | T(bottom)");
    for p in spectrum.iter().step_by(2) {
        println!(
            "     {:.4} |   {:.4} |    {:.4}",
            p.wavelength_um, p.transmission[0], p.transmission[1]
        );
    }

    // Telemetry from the batched plane: how many batches ran, how many
    // requests they carried, and how often the per-ω factorization was
    // reused instead of recomputed.
    let metrics = maps::obs::global();
    let counter = |name: &str| metrics.counter_value(name).unwrap_or(0);
    println!("\nbatched-plane counters:");
    println!(
        "  fdfd.solve_batch.calls    = {}",
        counter("fdfd.solve_batch.calls")
    );
    println!(
        "  fdfd.solve_batch.requests = {}",
        counter("fdfd.solve_batch.requests")
    );
    println!(
        "  fdfd.factor_cache.hit     = {}",
        counter("fdfd.factor_cache.hit")
    );
    println!(
        "  fdfd.factor_cache.miss    = {}",
        counter("fdfd.factor_cache.miss")
    );

    // Flight-recorder exports: MAPS_TRACE (Chrome/Perfetto trace),
    // MAPS_PROFILE (self-time profile), MAPS_SERIES (convergence CSVs).
    let exported = maps::obs::export_from_env()?;
    for path in &exported {
        println!("exported {}", path.display());
    }
    Ok(())
}
