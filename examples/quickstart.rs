//! Quickstart: simulate a 90° waveguide bend with the exact FDFD solver,
//! report where the light goes, and dump the telemetry the run produced.
//!
//! ```text
//! MAPS_LOG=debug cargo run --release --example quickstart
//! ```
//!
//! With `MAPS_LOG=debug` the run prints nested span timings to stderr;
//! either way it ends with a JSON metrics snapshot (solve counts, latency
//! percentiles, iterative-solver residuals).

use maps::core::{FieldSolver, InstrumentedSolver};
use maps::data::{label_sample, DeviceKind, DeviceResolution, GenerateConfig};
use maps::fdfd::{Backend, FdfdSolver};
use maps::invdes::InitStrategy;
use maps::linalg::IterativeOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the benchmark bend device (input left, output top).
    let mut device = DeviceKind::Bending.build(DeviceResolution::high());
    let grid = device.grid();
    println!(
        "device: {} on a {}x{} grid (dl = {} um)",
        device.kind.name(),
        grid.nx,
        grid.ny,
        grid.dl
    );

    // 2. Calibrate the injected power so results read as fractions.
    let solver = FdfdSolver::with_pml(maps::fdfd::PmlConfig::auto(grid.dl));
    let p_in = device.problem.calibrate(&solver)?;
    println!("calibrated injected power: {p_in:.4e}");

    // 3. A hand-drawn design: a solid block in the corner region.
    let (nx, ny) = device.problem.design_size;
    let density = InitStrategy::Uniform(1.0).build(nx, ny);

    // 4. Simulate and print the rich labels.
    let sample = label_sample(
        &device,
        &density,
        &device.variants[0].clone(),
        &GenerateConfig::default(),
        0,
    )?;
    println!("wavelength: {} um", sample.labels.wavelength);
    println!("maxwell residual: {:.2e}", sample.labels.maxwell_residual);
    println!("reflection: {:.4}", sample.labels.reflection);
    for t in &sample.labels.transmissions {
        println!("  port {} transmission: {:.4}", t.port, t.power);
    }
    println!("radiation/loss: {:.4}", sample.labels.radiation);
    let total = sample.labels.total_transmission();
    println!("total guided transmission: {total:.4}");
    assert!(
        sample.labels.maxwell_residual < 1e-9,
        "FDFD solution must satisfy the Maxwell system"
    );

    // 5. Re-run the same physics through the telemetry stack: wrap the
    //    direct solver to collect per-solve latency, and do one
    //    iterative-backend solve so convergence telemetry shows up too.
    let eps = device.problem.eps_for(&density);
    let source = device.problem.source()?;
    let omega = device.problem.omega();

    let instrumented = InstrumentedSolver::new(solver);
    let ez = instrumented.solve_ez(&eps, &source, omega)?;
    println!(
        "{}: |Ez| = {:.4e} ({} cells)",
        instrumented.name(),
        ez.norm(),
        grid.len()
    );

    let iterative = InstrumentedSolver::new(
        FdfdSolver::with_pml(maps::fdfd::PmlConfig::auto(grid.dl)).backend(Backend::Iterative(
            IterativeOptions {
                max_iterations: 20_000,
                tolerance: 1e-8,
            },
        )),
    );
    let ez_it = iterative.solve_ez(&eps, &source, omega)?;
    println!(
        "{}: |Ez| = {:.4e} (vs direct {:.4e})",
        iterative.name(),
        ez_it.norm(),
        ez.norm()
    );

    // 6. Everything the run measured, as one JSON snapshot.
    println!("\nmetrics snapshot:");
    println!("{}", maps::obs::global().to_json_pretty());
    Ok(())
}
