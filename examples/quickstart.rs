//! Quickstart: simulate a 90° waveguide bend with the exact FDFD solver and
//! report where the light goes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use maps::data::{label_sample, DeviceKind, DeviceResolution, GenerateConfig};
use maps::fdfd::FdfdSolver;
use maps::invdes::InitStrategy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the benchmark bend device (input left, output top).
    let mut device = DeviceKind::Bending.build(DeviceResolution::high());
    let grid = device.grid();
    println!(
        "device: {} on a {}x{} grid (dl = {} um)",
        device.kind.name(),
        grid.nx,
        grid.ny,
        grid.dl
    );

    // 2. Calibrate the injected power so results read as fractions.
    let solver = FdfdSolver::with_pml(maps::fdfd::PmlConfig::auto(grid.dl));
    let p_in = device.problem.calibrate(&solver)?;
    println!("calibrated injected power: {p_in:.4e}");

    // 3. A hand-drawn design: a solid block in the corner region.
    let (nx, ny) = device.problem.design_size;
    let density = InitStrategy::Uniform(1.0).build(nx, ny);

    // 4. Simulate and print the rich labels.
    let sample = label_sample(
        &device,
        &density,
        &device.variants[0].clone(),
        &GenerateConfig::default(),
        0,
    )?;
    println!("wavelength: {} um", sample.labels.wavelength);
    println!("maxwell residual: {:.2e}", sample.labels.maxwell_residual);
    println!("reflection: {:.4}", sample.labels.reflection);
    for t in &sample.labels.transmissions {
        println!("  port {} transmission: {:.4}", t.port, t.power);
    }
    println!("radiation/loss: {:.4}", sample.labels.radiation);
    let total = sample.labels.total_transmission();
    println!("total guided transmission: {total:.4}");
    assert!(
        sample.labels.maxwell_residual < 1e-9,
        "FDFD solution must satisfy the Maxwell system"
    );
    Ok(())
}
