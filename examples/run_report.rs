//! Post-hoc run report: slowest spans, cache hit rates, and convergence
//! summaries for a finished MAPS run.
//!
//! Four modes:
//!
//! ```text
//! # Demo: run a small inverse design, export its artifacts, then read
//! # them back and print the report.
//! cargo run --release --example run_report
//!
//! # Forensics: report on a previous run's exported artifacts.
//! cargo run --release --example run_report -- snapshot.json [series_dir]
//!
//! # Request forensics: digest a mapsd access log (MAPS_ACCESS_LOG JSONL
//! # of wide events) — dispositions, per-endpoint latency, slowest N.
//! cargo run --release --example run_report -- --access-log access.jsonl
//!
//! # Live: start the telemetry server and keep a workload running so the
//! # endpoints have something to serve. N ticks, or until killed when 0.
//! MAPS_OBS_ADDR=127.0.0.1:0 cargo run --release --example run_report -- --serve [N]
//! ```
//!
//! The snapshot is the registry JSON written by
//! `maps::obs::global().to_json()` (or `to_json_pretty()`); the series
//! directory holds the per-series CSVs written under `MAPS_SERIES`.

use maps::obs::{RunReport, SeriesSummary, SpanStat};
use serde::Value;
use std::path::Path;

/// Rebuilds a [`RunReport`] from a registry snapshot JSON file.
fn report_from_snapshot(path: &Path) -> Result<RunReport, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    let value: Value = serde_json::from_str(&text)?;
    let mut report = RunReport::default();

    if let Ok(Value::Obj(counters)) = value.field("counters") {
        for (name, v) in counters {
            report.counters.push((name.clone(), v.as_f64()? as u64));
        }
    }
    if let Ok(Value::Obj(histograms)) = value.field("histograms") {
        for (name, h) in histograms {
            let Some(span_name) = name
                .strip_prefix("span.")
                .and_then(|n| n.strip_suffix(".seconds"))
            else {
                continue;
            };
            let count = h.field("count")?.as_f64()? as u64;
            let mean = h.field("mean")?.as_f64()?;
            report.spans.push(SpanStat {
                name: span_name.to_string(),
                count,
                total_seconds: mean * count as f64,
            });
        }
    }
    Ok(report)
}

/// Summarizes every `*.csv` series file in a directory.
fn series_from_dir(dir: &Path) -> Result<Vec<SeriesSummary>, Box<dyn std::error::Error>> {
    let mut summaries = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "csv"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let body = std::fs::read_to_string(&path)?;
        let mut points = Vec::new();
        for line in body.lines().skip(1) {
            let Some((step, value)) = line.split_once(',') else {
                continue;
            };
            points.push((step.trim().parse::<u64>()?, value.trim().parse::<f64>()?));
        }
        if let Some(summary) = SeriesSummary::from_points(&name, &points) {
            summaries.push(summary);
        }
    }
    Ok(summaries)
}

/// One wide event pulled out of the access log, reduced to the fields the
/// forensics table prints.
struct LoggedRequest {
    trace_id: String,
    endpoint: String,
    disposition: String,
    status: u64,
    total_ms: f64,
    queue_ms: f64,
    factorize_ms: f64,
    solve_ms: f64,
}

/// Digests a `MAPS_ACCESS_LOG` JSONL file of wide events: disposition
/// counters and per-endpoint latency aggregates rendered through the
/// standard [`RunReport`] renderer, then a slowest-N table with the
/// timing breakdown and trace ids to chase in `/trace` exports.
fn access_log_mode(path: &Path) -> Result<(), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    let mut requests = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = serde_json::from_str::<Value>(line) else {
            skipped += 1;
            continue;
        };
        let str_of = |key: &str| {
            v.field(key)
                .ok()
                .and_then(|x| x.as_str().ok())
                .unwrap_or("?")
                .to_string()
        };
        let num_of = |key: &str| {
            v.field(key)
                .ok()
                .and_then(|x| x.as_f64().ok())
                .unwrap_or(0.0)
        };
        requests.push(LoggedRequest {
            trace_id: str_of("trace_id"),
            endpoint: str_of("endpoint"),
            disposition: str_of("disposition"),
            status: num_of("status") as u64,
            total_ms: num_of("total_us") / 1e3,
            queue_ms: num_of("queue_us") / 1e3,
            factorize_ms: num_of("factorize_us") / 1e3,
            solve_ms: num_of("solve_us") / 1e3,
        });
    }
    if requests.is_empty() {
        return Err(format!("no wide events in {}", path.display()).into());
    }

    // Reuse the run-report renderer: dispositions as counters, endpoints
    // as span aggregates (count + total time).
    let mut report = RunReport::default();
    let mut dispositions: Vec<(String, u64)> = Vec::new();
    let mut endpoints: Vec<SpanStat> = Vec::new();
    for r in &requests {
        let key = format!("requests.{}", r.disposition);
        match dispositions.iter_mut().find(|(k, _)| *k == key) {
            Some(entry) => entry.1 += 1,
            None => dispositions.push((key, 1)),
        }
        match endpoints.iter_mut().find(|s| s.name == r.endpoint) {
            Some(stat) => {
                stat.count += 1;
                stat.total_seconds += r.total_ms / 1e3;
            }
            None => endpoints.push(SpanStat {
                name: r.endpoint.clone(),
                count: 1,
                total_seconds: r.total_ms / 1e3,
            }),
        }
    }
    dispositions.sort();
    report.counters = dispositions;
    report.spans = endpoints;
    println!(
        "access log: {} requests ({skipped} unparsable lines skipped)",
        requests.len()
    );
    println!("\n{}", report.render());

    let shed = requests
        .iter()
        .filter(|r| r.disposition == "shed" || r.status == 429 || r.status == 503)
        .count();
    let degraded = requests
        .iter()
        .filter(|r| r.disposition == "degraded")
        .count();
    let deadline = requests
        .iter()
        .filter(|r| r.disposition == "deadline")
        .count();
    println!("sheds {shed}  degraded {degraded}  deadline-rejected {deadline}");

    requests.sort_by(|a, b| b.total_ms.partial_cmp(&a.total_ms).expect("finite"));
    println!("\nslowest requests:");
    println!(
        "  {:<20} {:<8} {:<10} {:>4} {:>10} {:>9} {:>9} {:>9}",
        "trace_id", "endpoint", "disp", "st", "total_ms", "queue", "factor", "solve"
    );
    for r in requests.iter().take(10) {
        println!(
            "  {:<20} {:<8} {:<10} {:>4} {:>10.2} {:>9.2} {:>9.2} {:>9.2}",
            r.trace_id,
            r.endpoint,
            r.disposition,
            r.status,
            r.total_ms,
            r.queue_ms,
            r.factorize_ms,
            r.solve_ms
        );
    }
    Ok(())
}

/// Runs a small instrumented inverse design so the demo has something to
/// report on, and exports its artifacts to `dir`.
fn demo_run(dir: &Path) -> Result<(), Box<dyn std::error::Error>> {
    use maps::fdfd::{FdfdSolver, PmlConfig};
    use maps::invdes::{ExactAdjoint, InitStrategy, InverseDesigner, OptimConfig};

    maps::obs::recorder::enable();
    let mut device = maps::data::DeviceKind::Bending.build(maps::data::DeviceResolution::low());
    let solver = ExactAdjoint::new(FdfdSolver::with_pml(PmlConfig::auto(device.grid().dl)));
    device.problem.calibrate(solver.solver())?;
    let designer = InverseDesigner::new(OptimConfig {
        iterations: 8,
        learning_rate: 0.12,
        beta_start: 1.5,
        beta_growth: 1.15,
        filter_radius: 1.5,
        init: InitStrategy::Uniform(0.5),
        ..OptimConfig::default()
    });
    let result = designer.run(&device.problem, &solver)?;
    println!(
        "demo design: transmission {:.4} after {} iterations",
        result.best_objective().unwrap_or(f64::NAN),
        result.history.len()
    );

    std::fs::create_dir_all(dir)?;
    std::fs::write(
        dir.join("snapshot.json"),
        maps::obs::global().to_json_pretty(),
    )?;
    maps::obs::write_series_csv(dir.join("series"))?;
    let spans = maps::obs::recorder::snapshot();
    std::fs::write(dir.join("trace.json"), maps::obs::chrome_trace(&spans))?;
    std::fs::write(
        dir.join("profile.txt"),
        maps::obs::profile_table(&maps::obs::profile(&spans)),
    )?;
    maps::obs::recorder::disable();
    println!("demo artifacts in {}", dir.display());
    Ok(())
}

/// Live mode: serve the telemetry endpoints over a continuously refreshed
/// workload. `ticks == 0` loops until the process is killed (the smoke
/// test in `scripts/check.sh` runs with a bounded tick count instead).
fn serve_mode(ticks: u64) -> Result<(), Box<dyn std::error::Error>> {
    use maps::core::{ComplexField2d, FieldSolver, Grid2d, RealField2d, SolveRequest};
    use maps::fdfd::{FdfdSolver, PmlConfig};

    // Honor MAPS_OBS_ADDR when set; default to an ephemeral localhost port
    // so `--serve` works with zero configuration.
    let server = match maps::obs::serve_from_env() {
        Some(server) => server,
        None => maps::obs::serve("127.0.0.1:0")?,
    };
    // The smoke test greps this exact line for the bound address.
    println!("telemetry: listening on http://{}", server.addr());
    maps::obs::recorder::enable();
    let _watchdog = maps::obs::watchdog::start_from_env();

    let grid = Grid2d::new(48, 48, 0.05);
    let eps = RealField2d::constant(grid, 2.25);
    let mut j = ComplexField2d::zeros(grid);
    j.set(24, 24, maps::linalg::Complex64::ONE);
    let solver = FdfdSolver::with_pml(PmlConfig::auto(grid.dl));
    let mut k = 0u64;
    while ticks == 0 || k < ticks {
        // A multi-ω batch per tick: exercises the factor cache, the
        // parallel ω-bucket fan-out, and therefore the stitched flows that
        // /trace serves.
        let _span = maps::obs::span("serve.tick").field("k", k);
        let requests = [
            SolveRequest::forward(&j, 4.0),
            SolveRequest::forward(&j, 4.3),
        ];
        for (i, result) in solver.solve_ez_batch(&eps, &requests).iter().enumerate() {
            if let Err(e) = result {
                maps::obs::error!("serve tick {k} request {i} failed: {e}");
            }
        }
        maps::obs::series("serve.tick").push(k, k as f64);
        k += 1;
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("telemetry: served {k} ticks, shutting down");
    server.stop();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--serve") {
        let ticks = match args.get(1) {
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid tick count {raw:?}"))?,
            None => 0,
        };
        return serve_mode(ticks);
    }
    if args.first().map(String::as_str) == Some("--access-log") {
        let path = args.get(1).ok_or("--access-log needs a path")?;
        return access_log_mode(Path::new(path));
    }
    let (snapshot_path, series_dir) = match args.as_slice() {
        [] => {
            // Demo mode: produce a run, then report on its own artifacts —
            // exercising the same parse path a real post-mortem uses.
            let dir = std::path::PathBuf::from("target/run_report_demo");
            demo_run(&dir)?;
            (dir.join("snapshot.json"), Some(dir.join("series")))
        }
        [snapshot] => (snapshot.into(), None),
        [snapshot, series] => (snapshot.into(), Some(series.into())),
        _ => {
            eprintln!(
                "usage: run_report [snapshot.json] [series_dir] | --access-log FILE | --serve [N]"
            );
            std::process::exit(2);
        }
    };

    let mut report = report_from_snapshot(&snapshot_path)?;
    if let Some(dir) = series_dir {
        if dir.is_dir() {
            report.series = series_from_dir(&dir)?;
        }
    }
    println!("\n{}", report.render());
    Ok(())
}
