//! A load generator for `mapsd`: concurrent clients, cold or warm cache,
//! latency percentiles and shed accounting.
//!
//! Against an already-running daemon:
//!
//! ```text
//! MAPS_D_ADDR=127.0.0.1:0 cargo run --bin mapsd &
//! cargo run --example mapsd_loadgen -- --addr 127.0.0.1:9103 \
//!     --clients 8 --requests 20 --warm
//! ```
//!
//! Without `--addr` the example starts its own daemon on an ephemeral
//! port, drives it, and stops it — a self-contained demo of the full
//! serve/shed/degrade lifecycle.

use maps::mapsd::{http_get, http_post, serve, DaemonConfig, QueueConfig, TailConfig};
use std::time::Instant;

struct Opts {
    addr: Option<String>,
    clients: usize,
    requests: usize,
    warm: bool,
    nx: usize,
    ny: usize,
    deadline_ms: u64,
    queue: Option<usize>,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        addr: None,
        clients: 4,
        requests: 10,
        warm: false,
        nx: 64,
        ny: 48,
        deadline_ms: 60_000,
        queue: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let next_usize = |name: &str, args: &mut dyn Iterator<Item = String>| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a number"))
        };
        match a.as_str() {
            "--addr" => opts.addr = Some(args.next().expect("--addr needs host:port")),
            "--clients" => opts.clients = next_usize("--clients", &mut args),
            "--requests" => opts.requests = next_usize("--requests", &mut args),
            "--nx" => opts.nx = next_usize("--nx", &mut args),
            "--ny" => opts.ny = next_usize("--ny", &mut args),
            "--deadline-ms" => opts.deadline_ms = next_usize("--deadline-ms", &mut args) as u64,
            "--queue" => opts.queue = Some(next_usize("--queue", &mut args)),
            "--warm" => opts.warm = true,
            "--cold" => opts.warm = false,
            other => panic!("unknown flag {other}"),
        }
    }
    opts
}

fn main() {
    let opts = parse_opts();

    // No --addr: run a private daemon for a self-contained demo. The
    // tail-sampling knobs (MAPS_TAIL_SLOW_MS, MAPS_TRACE_SAMPLE) and a
    // --queue depth override apply so overload and tracing are drivable.
    let own_daemon = if opts.addr.is_none() {
        let mut queue = QueueConfig::default();
        if let Some(depth) = opts.queue {
            queue.depth = depth;
        }
        let daemon = serve(DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_body: 4 << 20,
            queue,
            tail: TailConfig::from_env(),
        })
        .expect("start daemon");
        println!("loadgen: started private mapsd on {}", daemon.local_addr());
        Some(daemon)
    } else {
        None
    };
    let addr = opts
        .addr
        .clone()
        .unwrap_or_else(|| own_daemon.as_ref().unwrap().local_addr().to_string());

    println!(
        "loadgen: {} clients x {} requests, {} cache, grid {}x{}",
        opts.clients,
        opts.requests,
        if opts.warm { "warm" } else { "cold" },
        opts.nx,
        opts.ny
    );
    let wall = Instant::now();
    let handles: Vec<_> = (0..opts.clients)
        .map(|c| {
            let addr = addr.clone();
            let (warm, requests, nx, ny, deadline_ms) =
                (opts.warm, opts.requests, opts.nx, opts.ny, opts.deadline_ms);
            std::thread::spawn(move || {
                let mut latencies_ms = Vec::with_capacity(requests);
                let (mut ok, mut degraded, mut shed, mut deadline, mut other) = (0, 0, 0, 0, 0);
                for i in 0..requests {
                    let eps = if warm {
                        2.25
                    } else {
                        2.25 + 0.001 * (c * requests + i + 1) as f64
                    };
                    let body = format!(
                        r#"{{"nx":{nx},"ny":{ny},"dx":0.05,"eps":{eps},"omega":4.05,"deadline_ms":{deadline_ms},"trace_id":"lg-{c}-{i}"}}"#
                    );
                    let started = Instant::now();
                    match http_post(&addr, "/solve", &body) {
                        Ok((200, resp)) => {
                            latencies_ms.push(started.elapsed().as_secs_f64() * 1e3);
                            if resp.contains("\"fidelity\":\"direct\"") {
                                ok += 1;
                            } else {
                                degraded += 1;
                            }
                        }
                        Ok((429 | 503, _)) => shed += 1,
                        Ok((408, _)) => deadline += 1,
                        Ok(_) | Err(_) => other += 1,
                    }
                }
                (latencies_ms, ok, degraded, shed, deadline, other)
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let (mut ok, mut degraded, mut shed, mut deadline, mut other) = (0, 0, 0, 0, 0);
    for h in handles {
        let (l, o, dg, s, dl, ot) = h.join().expect("client thread");
        latencies.extend(l);
        ok += o;
        degraded += dg;
        shed += s;
        deadline += dl;
        other += ot;
    }
    let elapsed = wall.elapsed().as_secs_f64();

    let total = opts.clients * opts.requests;
    println!(
        "loadgen: {total} requests in {elapsed:.2} s ({:.1} rps): {ok} ok, {degraded} degraded, {shed} shed, {deadline} deadline-rejected, {other} other",
        total as f64 / elapsed
    );
    if !latencies.is_empty() {
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p).round() as usize];
        println!(
            "loadgen: latency p50 {:.2} ms  p90 {:.2} ms  p99 {:.2} ms",
            pct(0.50),
            pct(0.90),
            pct(0.99)
        );
    }

    if let Ok((200, metrics)) = http_get(&addr, "/metrics") {
        for line in metrics.lines() {
            // Exemplars on the latency histogram link a spike straight to a
            // retained trace id — print them so the walkthrough has a
            // starting point for /trace.
            if line.starts_with("mapsd_coalesce")
                || line.starts_with("mapsd_shed")
                || line.contains("# {trace_id=")
            {
                println!("loadgen: {line}");
            }
        }
    }

    // Reconciliation: every admission — ok, degraded, shed, or rejected —
    // must have produced exactly one wide event. Against a private daemon
    // the counts match exactly; against a shared one this still shows the
    // request log is live.
    if let Ok((200, events)) = http_get(&addr, &format!("/requests?last={}", 2 * total)) {
        let seen = events.matches("\"endpoint\":").count();
        println!(
            "loadgen: wide events {seen} / {total} requests{}",
            if seen == total { " (reconciled)" } else { "" }
        );
    }

    if let Some(daemon) = own_daemon {
        daemon.stop();
        println!("loadgen: private daemon drained and stopped");
    }
    // Drain the access-log writer (MAPS_ACCESS_LOG) so the JSONL on disk
    // reconciles with the requests just issued; a no-op when unconfigured.
    if !maps::obs::flush_access_log(std::time::Duration::from_secs(5)) {
        eprintln!("loadgen: access log flush timed out");
    }
}
