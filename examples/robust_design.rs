//! Variation-aware (fabrication-robust) inverse design (§III-C3): optimize
//! the expected transmission over lithography/etch process corners and
//! compare the corner spread of a nominal-only design against the robust
//! one.
//!
//! ```text
//! cargo run --release --example robust_design
//! ```

use maps::data::{DeviceKind, DeviceResolution};
use maps::invdes::{
    ExactAdjoint, InitStrategy, InverseDesigner, LithoCorner, LithoModel, OptimConfig, Patch,
    RobustDesigner,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut device = DeviceKind::Bending.build(DeviceResolution::low());
    let solver = ExactAdjoint::new(maps::fdfd::FdfdSolver::with_pml(
        maps::fdfd::PmlConfig::auto(device.grid().dl),
    ));
    device.problem.calibrate(solver.solver())?;

    let litho = LithoModel::new(device.grid().dl);
    let corners = LithoCorner::triple(0.05, 0.2, 0.01);
    let config = OptimConfig {
        iterations: 16,
        learning_rate: 0.12,
        beta_start: 2.0,
        beta_growth: 1.1,
        filter_radius: 1.2,
        symmetry: None,
        litho: None,
        init: InitStrategy::Uniform(0.5),
        ..OptimConfig::default()
    };

    // 1. Nominal-only optimization (litho applied at the nominal corner).
    let nominal_designer = InverseDesigner::new(OptimConfig {
        litho: Some(litho),
        ..config.clone()
    });
    let nominal = nominal_designer.run(&device.problem, &solver)?;

    // 2. Robust corner-averaged optimization.
    let robust_designer = RobustDesigner::new(config, litho, corners.to_vec());
    let robust = robust_designer.run(&device.problem, &solver)?;

    // 3. Evaluate both θ across all corners.
    let spread = |theta: &Patch, label: &str| -> Result<f64, Box<dyn std::error::Error>> {
        let (_, _, per_corner) = robust_designer.evaluate(&device.problem, &solver, theta, 12.0)?;
        let min = per_corner.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_corner.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{label:8} corners: nominal {:.4}, over {:.4}, under {:.4}  (worst {:.4})",
            per_corner[0], per_corner[1], per_corner[2], min
        );
        let _ = max;
        Ok(min)
    };
    let nominal_worst = spread(&nominal.theta, "nominal")?;
    let robust_worst = spread(&robust.theta, "robust")?;
    println!(
        "\nworst-corner transmission: nominal-only {nominal_worst:.4} vs robust {robust_worst:.4}"
    );
    Ok(())
}
