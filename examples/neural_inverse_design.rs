//! The paper's capstone case study (§IV-D, Fig. 6): replace the numerical
//! solver inside MAPS-InvDes with a neural operator trained by MAPS-Train,
//! drive the whole adjoint optimization from NN-predicted fields, and
//! verify every iterate with the exact FDFD solver.
//!
//! ```text
//! cargo run --release --example neural_inverse_design
//! ```

use maps::data::{
    label_batch, sample_densities, DeviceKind, DeviceResolution, GenerateConfig, SamplerConfig,
    SamplingStrategy,
};
use maps::fdfd::{FdfdSolver, PmlConfig};
use maps::invdes::{FieldGradient, InitStrategy, InverseDesigner, OptimConfig};
use maps::nn::{Fno, FnoConfig};
use maps::tensor::Params;
use maps::train::{train_field_model, LoaderConfig, NeuralFieldSolver, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train a field surrogate on perturbed-trajectory data.
    let mut device = DeviceKind::Bending.build(DeviceResolution::low());
    let fdfd = FdfdSolver::with_pml(PmlConfig::auto(device.grid().dl));
    device.problem.calibrate(&fdfd)?;
    let densities = sample_densities(
        SamplingStrategy::PerturbedOptTraj,
        &device,
        &SamplerConfig {
            count: 20,
            seed: 4,
            trajectory_iterations: 10,
            perturbation: 0.25,
        },
    )?;
    // Include adjoint-excitation samples: the NN must answer adjoint
    // queries during inverse design, so they must be in-distribution.
    let samples = label_batch(
        &device,
        &densities,
        &GenerateConfig {
            with_adjoint_source_samples: true,
            ..Default::default()
        },
    )?;
    let mut params = Params::new();
    let mut rng = StdRng::seed_from_u64(1);
    let model = Fno::new(
        &mut params,
        &mut rng,
        FnoConfig {
            in_channels: 4,
            out_channels: 2,
            width: 12,
            modes: 6,
            depth: 3,
        },
    );
    let report = train_field_model(
        &model,
        &mut params,
        &samples,
        &TrainConfig {
            epochs: 15,
            learning_rate: 3e-3,
            loader: LoaderConfig {
                batch_size: 4,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    println!("surrogate trained, final loss {:.4}", report.final_loss());

    // 2. Drive inverse design purely from the neural solver.
    let neural = NeuralFieldSolver::new(model, params, report.normalizer);
    let neural_gradient = FieldGradient::new(&neural);
    let designer = InverseDesigner::new(OptimConfig {
        iterations: 15,
        learning_rate: 0.12,
        beta_start: 1.5,
        beta_growth: 1.12,
        filter_radius: 1.5,
        symmetry: None,
        litho: None,
        init: InitStrategy::Uniform(0.5),
        ..OptimConfig::default()
    });

    // 3. FDFD-verify each iterate (Fig. 6a: NN-predicted vs FDFD-true).
    let objective = device.problem.objective()?;
    let source = device.problem.source()?;
    let omega = device.problem.omega();
    println!("iter | NN-predicted T | FDFD-verified T");
    let problem = device.problem.clone();
    let fdfd_ref = &fdfd;
    let result = designer.run_with_callback(&problem, &neural_gradient, |rec, density, _| {
        use maps::core::FieldSolver;
        let eps = problem.eps_for(density);
        let true_field = fdfd_ref.solve_ez(&eps, &source, omega).expect("fdfd");
        let true_t = objective.eval(&true_field);
        println!(
            "{:4} |         {:.4} |          {:.4}",
            rec.iteration, rec.objective, true_t
        );
    })?;

    // 4. Final verification (Fig. 6b): NN field vs FDFD field.
    use maps::core::FieldSolver;
    let eps = device.problem.eps_for(&result.density);
    let nn_field = neural.solve_ez(&eps, &source, omega)?;
    let fdfd_field = fdfd.solve_ez(&eps, &source, omega)?;
    let true_final = objective.eval(&fdfd_field);
    println!(
        "\nfinal design: FDFD-verified transmission {:.4}, field N-L2(NN vs FDFD) {:.4}",
        true_final,
        nn_field.normalized_l2_distance(&fdfd_field)
    );
    Ok(())
}
