//! Dense real and complex matrices.
//!
//! These are small, row-major matrices used for mode solving, metric
//! computation, and tests. Heavy lifting in the FDFD solver uses the banded
//! storage in [`crate::banded`] instead.

use crate::Complex64;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "dense matrix data length mismatch");
        DMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            y[i] = acc;
        }
        y
    }

    /// Matrix product `A B`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &DMatrix) -> DMatrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = DMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DMatrix {
        let mut out = DMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }
}

impl std::ops::Index<(usize, usize)> for DMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// A dense row-major matrix of [`Complex64`].
#[derive(Debug, Clone, PartialEq)]
pub struct ZMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl ZMatrix {
    /// Creates a `rows × cols` matrix of complex zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        ZMatrix {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the underlying row-major data.
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![Complex64::ZERO; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = Complex64::ZERO;
            for (a, b) in row.iter().zip(x) {
                acc += *a * *b;
            }
            y[i] = acc;
        }
        y
    }
}

impl std::ops::Index<(usize, usize)> for ZMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for ZMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Dot product of two real vectors.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Unconjugated dot product `Σ aᵢ bᵢ` of two complex vectors.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn zdotu(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    assert_eq!(a.len(), b.len(), "zdotu length mismatch");
    a.iter().zip(b).map(|(x, y)| *x * *y).sum()
}

/// Conjugated dot product `Σ conj(aᵢ) bᵢ` of two complex vectors.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn zdotc(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    assert_eq!(a.len(), b.len(), "zdotc length mismatch");
    a.iter().zip(b).map(|(x, y)| x.conj() * *y).sum()
}

/// Euclidean norm of a complex vector.
pub fn znorm(a: &[Complex64]) -> f64 {
    a.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
}

/// Euclidean norm of a real vector.
pub fn norm(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_identity() {
        let eye = DMatrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(eye.matvec(&x), x);
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = DMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DMatrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = DMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn complex_dot_products() {
        let a = vec![Complex64::new(1.0, 1.0), Complex64::new(0.0, 2.0)];
        let b = vec![Complex64::new(2.0, 0.0), Complex64::new(1.0, -1.0)];
        assert_eq!(zdotu(&a, &b), Complex64::new(2.0 + 2.0, 2.0 + 2.0));
        // conj(1+i)(2) + conj(2i)(1-i) = (2-2i) + (-2i)(1-i) = 2-2i -2i+2i² = -4i
        assert_eq!(zdotc(&a, &b), Complex64::new(0.0, -4.0));
    }

    #[test]
    fn znorm_matches_abs() {
        let a = vec![Complex64::new(3.0, 4.0)];
        assert!((znorm(&a) - 5.0).abs() < 1e-15);
    }
}
