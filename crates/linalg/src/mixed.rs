//! Mixed-precision direct solves: `f32` factorization + `f64` refinement.
//!
//! The banded LU factorization is memory-bound — `O(n·b²)` complex values
//! stream through the rank-1 update — so factoring in single precision
//! moves half the bytes and roughly halves the dominant cost. A bare `f32`
//! factor only carries ~7 decimal digits, far short of what the adjoint
//! gradient checks need, so [`MixedBandedLu`] wraps the cheap factor in
//! **iterative refinement**: every solve iterates
//!
//! ```text
//! r = b − A·x      (f64 residual against the exact operator)
//! d = LU₃₂⁻¹ r     (f32 substitution sweeps)
//! x ← x + d        (f64 accumulation)
//! ```
//!
//! until the relative residual reaches [`MixedBandedLu::tolerance`]
//! (`1e-10` by default — matched to the full-`f64` path's accuracy on the
//! FDFD systems this crate serves). Refinement converges when the operator
//! is well-enough conditioned that the `f32` factor contracts the error
//! each pass; when it stagnates instead, the solve transparently falls back
//! to a full `f64` factorization (computed once, then cached), so a
//! mixed-precision solve is never *less* accurate than the plain path —
//! only cheaper when single precision suffices.
//!
//! [`Factor`] packages the two factorization strategies behind one solve
//! surface so the factorization cache in `maps-fdfd` can hold either.

use crate::{BandedLu, BandedMatrix, Complex64, LinalgError};
use std::ops::{Add, AddAssign, Mul, Neg, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Relative-residual target of the refinement loop (matched to the
/// accuracy the full-`f64` direct solve delivers on FDFD systems).
///
/// This is deliberately tighter than the `1e-10` the acceptance gates
/// check: the adjoint gradient tests difference objectives at the
/// `1e-13` level, so the refined solve must sit well below the gate for
/// those differences to survive. Refinement passes are `O(n·b)` against
/// an `O(n·b²)` factorization — the extra pass or two costs ~nothing.
pub const DEFAULT_REFINE_TOL: f64 = 1e-12;

/// Refinement passes before the solve declares stagnation and falls back
/// to the full-`f64` factor. Converging systems finish in a handful of
/// passes (each contracts the error by ~`κ·2⁻²⁴`); a loop still above
/// tolerance after this many is not going to make it.
pub const MAX_REFINE_ITERS: usize = 16;

/// A complex number with `f32` parts — the storage type of the
/// single-precision factor. Deliberately minimal: just the arithmetic the
/// banded LU kernels need.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex32 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex32 = Complex32 { re: 0.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        Complex32 { re, im }
    }

    /// Rounds a double-precision value to single precision.
    #[inline]
    pub fn from_c64(z: Complex64) -> Self {
        Complex32 {
            re: z.re as f32,
            im: z.im as f32,
        }
    }

    /// Widens back to double precision (exact).
    #[inline]
    pub fn to_c64(self) -> Complex64 {
        Complex64::new(self.re as f64, self.im as f64)
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f32 {
        self.re.hypot(self.im)
    }

    /// Multiplicative inverse `1/z` (NaNs when `z == 0`, matching IEEE).
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex32::new(self.re / d, -self.im / d)
    }
}

impl Add for Complex32 {
    type Output = Complex32;
    #[inline]
    fn add(self, rhs: Complex32) -> Complex32 {
        Complex32::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex32 {
    type Output = Complex32;
    #[inline]
    fn sub(self, rhs: Complex32) -> Complex32 {
        Complex32::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: Complex32) -> Complex32 {
        Complex32::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex32 {
    type Output = Complex32;
    #[inline]
    fn neg(self) -> Complex32 {
        Complex32::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex32 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex32) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

/// The single-precision banded LU: the same LAPACK-band algorithm as
/// [`BandedMatrix::factorize`], ported to `f32` storage. Only the scalar
/// substitution sweeps are provided — refinement solves one corrector
/// per pass, so the blocked multi-RHS kernels stay `f64`-only.
///
/// The band is stored as **split real/imaginary planes** (structure of
/// arrays) rather than interleaved complex values: the rank-1 update that
/// dominates the factorization then compiles to four independent
/// stride-1 `f32` FMA streams, which LLVM auto-vectorizes 8 lanes wide.
/// Interleaved complex storage defeats that (the shuffles cost more than
/// the math), which is why the plain `f64` factor — same op count, same
/// scalar code — runs at the same speed despite moving twice the bytes.
#[derive(Debug, Clone)]
struct BandedLuF32 {
    n: usize,
    kl: usize,
    ldab: usize,
    re: Vec<f32>,
    im: Vec<f32>,
    ipiv: Vec<usize>,
    kv: usize,
}

impl BandedLuF32 {
    /// Factors the single-precision image of `a` with partial pivoting.
    fn factorize(a: &BandedMatrix) -> Result<Self, LinalgError> {
        let n = a.dim();
        let (kl, ku) = (a.lower_bandwidth(), a.upper_bandwidth());
        let ldab = 2 * kl + ku + 1;
        let kv = kl + ku;
        let mut re = vec![0.0f32; ldab * n];
        let mut im = vec![0.0f32; ldab * n];
        // Round the band image down to f32. Only the stored band is copied;
        // the kl fill-in rows start at zero exactly like the f64 path.
        for j in 0..n {
            let ilo = j.saturating_sub(ku);
            let ihi = (j + kl).min(n.saturating_sub(1));
            for i in ilo..=ihi {
                let z = a.get(i, j);
                re[j * ldab + kv + i - j] = z.re as f32;
                im[j * ldab + kv + i - j] = z.im as f32;
            }
        }
        let mut ipiv = vec![0usize; n];
        let mut ju = 0usize;
        for j in 0..n {
            if j + kv < n {
                let col = (j + kv) * ldab;
                re[col..col + kl].fill(0.0);
                im[col..col + kl].fill(0.0);
            }
            let km = kl.min(n - 1 - j);
            let colj = j * ldab + kv;
            // Pivot on LAPACK's cabs1 (|re| + |im|): the same cheap
            // magnitude proxy zgbtrf uses, so the pivot sequence matches.
            let mut jp = 0usize;
            let mut best = re[colj].abs() + im[colj].abs();
            for i in 1..=km {
                let v = re[colj + i].abs() + im[colj + i].abs();
                if v > best {
                    best = v;
                    jp = i;
                }
            }
            ipiv[j] = j + jp;
            if re[colj + jp] == 0.0 && im[colj + jp] == 0.0 {
                return Err(LinalgError::Singular { index: j });
            }
            ju = ju.max((j + ku + jp).min(n - 1));
            if jp != 0 {
                for k in j..=ju {
                    let a = k * ldab + kv + j - k;
                    let b = a + jp;
                    re.swap(a, b);
                    im.swap(a, b);
                }
            }
            if km > 0 {
                let (pr, pi) = (re[colj], im[colj]);
                let d = pr * pr + pi * pi;
                let (ir, ii) = (pr / d, -pi / d);
                for i in 1..=km {
                    let (vr, vi) = (re[colj + i], im[colj + i]);
                    re[colj + i] = vr * ir - vi * ii;
                    im[colj + i] = vr * ii + vi * ir;
                }
                // Rank-1 update of the trailing submatrix. Splitting each
                // plane at column k's start proves the multiplier column
                // (left) and destination column (right) disjoint, so the
                // inner loop borrows cleanly and vectorizes.
                for k in (j + 1)..=ju {
                    let row_j = k * ldab + kv + j - k;
                    let (f_r, f_i) = (re[row_j], im[row_j]);
                    if f_r == 0.0 && f_i == 0.0 {
                        continue;
                    }
                    let (m_re, d_re) = re.split_at_mut(k * ldab);
                    let (m_im, d_im) = im.split_at_mut(k * ldab);
                    let m_re = &m_re[colj + 1..colj + 1 + km];
                    let m_im = &m_im[colj + 1..colj + 1 + km];
                    let off = kv + j + 1 - k;
                    let d_re = &mut d_re[off..off + km];
                    let d_im = &mut d_im[off..off + km];
                    for i in 0..km {
                        let (mr, mi) = (m_re[i], m_im[i]);
                        d_re[i] -= f_r * mr - f_i * mi;
                        d_im[i] -= f_r * mi + f_i * mr;
                    }
                }
            }
        }
        Ok(BandedLuF32 {
            n,
            kl,
            ldab,
            re,
            im,
            ipiv,
            kv,
        })
    }

    #[inline]
    fn entry(&self, idx: usize) -> Complex32 {
        Complex32::new(self.re[idx], self.im[idx])
    }

    /// `P·L·U x = b` in place, single precision.
    fn solve_in_place(&self, x: &mut [Complex32]) {
        let (n, kl, ldab, kv) = (self.n, self.kl, self.ldab, self.kv);
        if kl > 0 {
            for j in 0..n.saturating_sub(1) {
                let p = self.ipiv[j];
                if p != j {
                    x.swap(j, p);
                }
                let km = kl.min(n - 1 - j);
                let xj = x[j];
                if xj == Complex32::ZERO {
                    continue;
                }
                let colj = j * ldab;
                for i in 1..=km {
                    let m = self.entry(colj + kv + i);
                    x[j + i] = x[j + i] - m * xj;
                }
            }
        }
        for j in (0..n).rev() {
            let inv = self.entry(j * ldab + kv).recip();
            let xj = x[j] * inv;
            x[j] = xj;
            if xj == Complex32::ZERO {
                continue;
            }
            let ilo = j.saturating_sub(kv);
            for i in ilo..j {
                let u = self.entry(j * ldab + kv + i - j);
                x[i] = x[i] - u * xj;
            }
        }
    }

    /// `Aᵀ x = b` in place (unconjugated transpose), single precision.
    fn solve_transposed_in_place(&self, x: &mut [Complex32]) {
        let (n, kl, ldab, kv) = (self.n, self.kl, self.ldab, self.kv);
        for j in 0..n {
            let ilo = j.saturating_sub(kv);
            let mut acc = x[j];
            for i in ilo..j {
                let u = self.entry(j * ldab + kv + i - j);
                acc = acc - u * x[i];
            }
            x[j] = acc * self.entry(j * ldab + kv).recip();
        }
        if kl > 0 {
            for j in (0..n.saturating_sub(1)).rev() {
                let km = kl.min(n - 1 - j);
                let colj = j * ldab;
                let mut acc = x[j];
                for i in 1..=km {
                    let m = self.entry(colj + kv + i);
                    acc = acc - m * x[j + i];
                }
                x[j] = acc;
                let p = self.ipiv[j];
                if p != j {
                    x.swap(j, p);
                }
            }
        }
    }
}

/// What one refined solve did: how many corrector passes it took, where
/// the relative residual landed, and whether it had to abandon the `f32`
/// factor for the full-`f64` fallback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineReport {
    /// Corrector passes applied (0 when the first `f32` solve was already
    /// inside tolerance, or when the solve went straight to the fallback).
    pub iterations: usize,
    /// Final relative residual `‖b − A·x‖ / ‖b‖`.
    pub rel_residual: f64,
    /// `true` when refinement stagnated (or the `f32` factorization was
    /// singular) and the solution came from the full-`f64` factor instead.
    pub fell_back: bool,
}

/// A mixed-precision banded factorization: an `f32` LU plus the exact
/// `f64` operator for residuals, refined to `f64`-grade accuracy per solve
/// (see the module docs for the loop and the fallback contract).
#[derive(Debug)]
pub struct MixedBandedLu {
    /// The exact operator, kept for residual matvecs and the fallback.
    a: BandedMatrix,
    /// The cheap factor; `None` when the matrix was singular in `f32`
    /// (every solve then uses the fallback directly).
    lu32: Option<BandedLuF32>,
    /// Full-`f64` factor, materialized at most once on first stagnation.
    fallback: OnceLock<BandedLu>,
    tol: f64,
    /// Solves that abandoned refinement for the `f64` factor (diagnostic).
    fallbacks: AtomicU64,
}

impl MixedBandedLu {
    /// Factors `a` in single precision, keeping the exact operator for
    /// residual refinement.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] only when the matrix is singular
    /// in *double* precision too — a zero pivot that appears only in `f32`
    /// just routes every solve through the `f64` fallback.
    pub fn new(a: BandedMatrix) -> Result<Self, LinalgError> {
        let (lu32, fallback) = match BandedLuF32::factorize(&a) {
            Ok(lu) => (Some(lu), OnceLock::new()),
            Err(_) => {
                // Singular at f32 resolution: prove the operator is usable
                // at all by factoring in f64 now, and serve solves from it.
                let full = a.clone().factorize()?;
                let cell = OnceLock::new();
                let _ = cell.set(full);
                (None, cell)
            }
        };
        Ok(MixedBandedLu {
            a,
            lu32,
            fallback,
            tol: DEFAULT_REFINE_TOL,
            fallbacks: AtomicU64::new(0),
        })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.a.dim()
    }

    /// The relative-residual target of the refinement loop.
    pub fn tolerance(&self) -> f64 {
        self.tol
    }

    /// Sets the refinement target (builder form).
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// How many solves so far abandoned refinement for the `f64` factor.
    pub fn fallback_solves(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// The full-`f64` factor, computing it on first use.
    fn full(&self) -> &BandedLu {
        self.fallback.get_or_init(|| {
            self.a
                .clone()
                .factorize()
                .expect("f64 fallback factorization failed for a matrix that factorized in f32")
        })
    }

    /// Solves `A x = b` to the refinement tolerance (see [`RefineReport`]
    /// via [`MixedBandedLu::solve_reported`] for the diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[Complex64]) -> Vec<Complex64> {
        self.solve_reported(b).0
    }

    /// Solves `Aᵀ x = b` (unconjugated transpose) to the refinement
    /// tolerance, reusing both factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_transposed(&self, b: &[Complex64]) -> Vec<Complex64> {
        self.solve_transposed_reported(b).0
    }

    /// [`MixedBandedLu::solve`] plus the refinement diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_reported(&self, b: &[Complex64]) -> (Vec<Complex64>, RefineReport) {
        self.refine(b, false)
    }

    /// [`MixedBandedLu::solve_transposed`] plus the refinement diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_transposed_reported(&self, b: &[Complex64]) -> (Vec<Complex64>, RefineReport) {
        self.refine(b, true)
    }

    /// The shared refinement loop; `transposed` selects which system both
    /// the `f32` sweeps and the residual matvec solve.
    fn refine(&self, b: &[Complex64], transposed: bool) -> (Vec<Complex64>, RefineReport) {
        assert_eq!(b.len(), self.a.dim(), "solve dimension mismatch");
        let bnorm = norm(b);
        if bnorm == 0.0 {
            return (
                vec![Complex64::ZERO; b.len()],
                RefineReport {
                    iterations: 0,
                    rel_residual: 0.0,
                    fell_back: false,
                },
            );
        }
        let Some(lu32) = &self.lu32 else {
            return self.fall_back(b, transposed, 0);
        };
        let sweep = |r: &[Complex64]| -> Vec<Complex64> {
            let mut d: Vec<Complex32> = r.iter().map(|&z| Complex32::from_c64(z)).collect();
            if transposed {
                lu32.solve_transposed_in_place(&mut d);
            } else {
                lu32.solve_in_place(&mut d);
            }
            d.into_iter().map(Complex32::to_c64).collect()
        };
        let residual = |x: &[Complex64]| -> Vec<Complex64> {
            let ax = if transposed {
                self.a.matvec_transposed(x)
            } else {
                self.a.matvec(x)
            };
            b.iter().zip(&ax).map(|(&bi, &ai)| bi - ai).collect()
        };
        let mut x = sweep(b);
        let mut prev_rel = f64::INFINITY;
        for iter in 0..=MAX_REFINE_ITERS {
            let r = residual(&x);
            let rel = norm(&r) / bnorm;
            if rel <= self.tol {
                return (
                    x,
                    RefineReport {
                        iterations: iter,
                        rel_residual: rel,
                        fell_back: false,
                    },
                );
            }
            // Stagnation: a healthy refinement contracts the residual by
            // orders of magnitude per pass; less than 2× (or a non-finite
            // iterate) means the f32 factor cannot carry this system.
            if iter == MAX_REFINE_ITERS || !rel.is_finite() || rel > 0.5 * prev_rel {
                return self.fall_back(b, transposed, iter);
            }
            prev_rel = rel;
            let d = sweep(&r);
            for (xi, di) in x.iter_mut().zip(&d) {
                *xi += *di;
            }
        }
        unreachable!("refinement loop exits via tolerance, stagnation, or iteration cap");
    }

    fn fall_back(
        &self,
        b: &[Complex64],
        transposed: bool,
        iterations: usize,
    ) -> (Vec<Complex64>, RefineReport) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
        let full = self.full();
        let x = if transposed {
            full.solve_transposed(b)
        } else {
            full.solve(b)
        };
        let ax = if transposed {
            self.a.matvec_transposed(&x)
        } else {
            self.a.matvec(&x)
        };
        let r: Vec<Complex64> = b.iter().zip(&ax).map(|(&bi, &ai)| bi - ai).collect();
        (
            x,
            RefineReport {
                iterations,
                rel_residual: norm(&r) / norm(b).max(f64::MIN_POSITIVE),
                fell_back: true,
            },
        )
    }
}

fn norm(v: &[Complex64]) -> f64 {
    v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
}

/// A banded factorization of either precision strategy behind one solve
/// surface — what the factorization cache in `maps-fdfd` stores, so every
/// downstream solve path (forward, adjoint, blocked multi-RHS) is agnostic
/// to how the factor was computed.
#[derive(Debug)]
pub enum Factor {
    /// The plain full-`f64` banded LU.
    Full(BandedLu),
    /// The `f32`-factor + `f64`-refinement pair.
    Mixed(MixedBandedLu),
}

impl Factor {
    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        match self {
            Factor::Full(lu) => lu.dim(),
            Factor::Mixed(m) => m.dim(),
        }
    }

    /// `true` for the mixed-precision strategy.
    pub fn is_mixed(&self) -> bool {
        matches!(self, Factor::Mixed(_))
    }

    /// Label for spans and logs: `"f64"` or `"mixed-f32"`.
    pub fn precision(&self) -> &'static str {
        match self {
            Factor::Full(_) => "f64",
            Factor::Mixed(_) => "mixed-f32",
        }
    }

    /// Solves `A x = b` (see [`BandedLu::solve`] / [`MixedBandedLu::solve`]).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[Complex64]) -> Vec<Complex64> {
        match self {
            Factor::Full(lu) => lu.solve(b),
            Factor::Mixed(m) => m.solve(b),
        }
    }

    /// Solves `Aᵀ x = b` (unconjugated transpose).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_transposed(&self, b: &[Complex64]) -> Vec<Complex64> {
        match self {
            Factor::Full(lu) => lu.solve_transposed(b),
            Factor::Mixed(m) => m.solve_transposed(b),
        }
    }

    /// Batched `A X = B` with an explicit RHS block width. The full factor
    /// sweeps blocks of right-hand sides through one pass over the band
    /// data; the mixed factor refines each system independently (the
    /// refinement loop is inherently per-RHS), so `block` only shapes the
    /// full path.
    ///
    /// # Panics
    ///
    /// Panics if any `rhs.len() != self.dim()`.
    pub fn solve_many_blocked(
        &self,
        rhs: &[impl AsRef<[Complex64]>],
        block: usize,
    ) -> Vec<Vec<Complex64>> {
        match self {
            Factor::Full(lu) => lu.solve_many_blocked(rhs, block),
            Factor::Mixed(m) => rhs.iter().map(|b| m.solve(b.as_ref())).collect(),
        }
    }

    /// Batched `Aᵀ X = B` (see [`Factor::solve_many_blocked`]).
    ///
    /// # Panics
    ///
    /// Panics if any `rhs.len() != self.dim()`.
    pub fn solve_transposed_many_blocked(
        &self,
        rhs: &[impl AsRef<[Complex64]>],
        block: usize,
    ) -> Vec<Vec<Complex64>> {
        match self {
            Factor::Full(lu) => lu.solve_transposed_many_blocked(rhs, block),
            Factor::Mixed(m) => rhs.iter().map(|b| m.solve_transposed(b.as_ref())).collect(),
        }
    }
}

impl From<BandedLu> for Factor {
    fn from(lu: BandedLu) -> Self {
        Factor::Full(lu)
    }
}

impl From<MixedBandedLu> for Factor {
    fn from(m: MixedBandedLu) -> Self {
        Factor::Mixed(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Helmholtz-shaped banded test system (same profile as the FDFD
    /// operator: diagonal dominance from the mass term, ±1 and ±bw
    /// couplings from the 5-point stencil, complex shift from the PML).
    fn helmholtz_like(n: usize, bw: usize) -> BandedMatrix {
        let mut a = BandedMatrix::zeros(n, bw, bw);
        for i in 0..n {
            a.set(i, i, Complex64::new(4.0 + 0.1 * ((i % 7) as f64), 0.4));
            if i >= 1 {
                a.set(i, i - 1, Complex64::from_re(-1.0));
            }
            if i >= bw {
                a.set(i, i - bw, Complex64::from_re(-1.0));
            }
            if i + 1 < n {
                a.set(i, i + 1, Complex64::from_re(-1.0));
            }
            if i + bw < n {
                a.set(i, i + bw, Complex64::from_re(-1.0));
            }
        }
        a
    }

    fn rhs(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|k| Complex64::new((k as f64 * 0.37).sin(), (k as f64 * 0.11).cos()))
            .collect()
    }

    fn rel_residual(a: &BandedMatrix, x: &[Complex64], b: &[Complex64]) -> f64 {
        let ax = a.matvec(x);
        let r: Vec<Complex64> = b.iter().zip(&ax).map(|(&bi, &ai)| bi - ai).collect();
        norm(&r) / norm(b)
    }

    #[test]
    fn refined_solve_reaches_f64_accuracy() {
        let a = helmholtz_like(400, 20);
        let b = rhs(400);
        let mixed = MixedBandedLu::new(a.clone()).unwrap();
        let (x, report) = mixed.solve_reported(&b);
        assert!(!report.fell_back, "well-conditioned system must refine");
        assert!(
            report.rel_residual <= DEFAULT_REFINE_TOL,
            "residual {} above tolerance",
            report.rel_residual
        );
        assert!(report.iterations <= 6, "took {} passes", report.iterations);
        assert!(rel_residual(&a, &x, &b) <= 1e-9);
        // And it matches the plain f64 solve to refinement accuracy.
        let full = a.clone().factorize().unwrap();
        let y = full.solve(&b);
        let diff: f64 = x
            .iter()
            .zip(&y)
            .map(|(p, q)| (*p - *q).norm_sqr())
            .sum::<f64>()
            .sqrt();
        assert!(diff / norm(&y) < 1e-8, "mixed vs full drift {diff}");
    }

    #[test]
    fn transposed_refined_solve_reaches_tolerance() {
        let a = helmholtz_like(300, 15);
        let b = rhs(300);
        let mixed = MixedBandedLu::new(a.clone()).unwrap();
        let (x, report) = mixed.solve_transposed_reported(&b);
        assert!(!report.fell_back);
        assert!(report.rel_residual <= DEFAULT_REFINE_TOL);
        let ax = a.matvec_transposed(&x);
        let r: Vec<Complex64> = b.iter().zip(&ax).map(|(&bi, &ai)| bi - ai).collect();
        assert!(norm(&r) / norm(&b) <= 1e-9);
    }

    #[test]
    fn f32_singular_matrix_routes_through_f64_fallback() {
        // Diagonal entries below the f32 subnormal range round to zero in
        // single precision but are perfectly regular in f64.
        let n = 8;
        let mut a = BandedMatrix::zeros(n, 1, 1);
        for i in 0..n {
            a.set(i, i, Complex64::from_re(1e-50));
        }
        let b = rhs(n);
        let mixed = MixedBandedLu::new(a.clone()).unwrap();
        let (x, report) = mixed.solve_reported(&b);
        assert!(report.fell_back, "f32-singular must use the f64 factor");
        assert!(report.rel_residual <= 1e-10);
        assert!(rel_residual(&a, &x, &b) <= 1e-10);
        assert_eq!(mixed.fallback_solves(), 1);
    }

    #[test]
    fn singular_in_both_precisions_errors() {
        let a = BandedMatrix::zeros(4, 1, 1);
        assert!(matches!(
            MixedBandedLu::new(a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = helmholtz_like(50, 5);
        let mixed = MixedBandedLu::new(a).unwrap();
        let (x, report) = mixed.solve_reported(&[Complex64::ZERO; 50]);
        assert!(x.iter().all(|z| *z == Complex64::ZERO));
        assert_eq!(report.iterations, 0);
        assert!(!report.fell_back);
    }

    #[test]
    fn factor_enum_delegates_both_strategies() {
        let a = helmholtz_like(200, 10);
        let b = rhs(200);
        let full = Factor::Full(a.clone().factorize().unwrap());
        let mixed = Factor::Mixed(MixedBandedLu::new(a.clone()).unwrap());
        assert_eq!(full.precision(), "f64");
        assert_eq!(mixed.precision(), "mixed-f32");
        assert!(!full.is_mixed());
        assert!(mixed.is_mixed());
        assert_eq!(full.dim(), 200);
        assert_eq!(mixed.dim(), 200);
        for f in [&full, &mixed] {
            assert!(rel_residual(&a, &f.solve(&b), &b) <= 1e-9);
        }
        // Blocked batch entry points agree with their single-RHS twins.
        let batch: Vec<Vec<Complex64>> = vec![rhs(200), b.clone()];
        for f in [&full, &mixed] {
            let many = f.solve_many_blocked(&batch, 8);
            assert_eq!(many.len(), 2);
            for (bi, xi) in batch.iter().zip(&many) {
                assert!(rel_residual(&a, xi, bi) <= 1e-9);
            }
            let many_t = f.solve_transposed_many_blocked(&batch, 8);
            for (bi, xi) in batch.iter().zip(&many_t) {
                let ax = a.matvec_transposed(xi);
                let r: Vec<Complex64> = bi.iter().zip(&ax).map(|(&p, &q)| p - q).collect();
                assert!(norm(&r) / norm(bi) <= 1e-9);
            }
        }
    }

    #[test]
    fn complex32_arithmetic_round_trips() {
        let z = Complex32::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        let w = z * z.recip();
        assert!((w.re - 1.0).abs() < 1e-6 && w.im.abs() < 1e-6);
        let c = Complex64::new(0.123456789, -9.87654321);
        let back = Complex32::from_c64(c).to_c64();
        assert!((back.re - c.re).abs() < 1e-7 && (back.im - c.im).abs() < 1e-6);
    }
}
