//! Complex banded matrices with LU factorization.
//!
//! The 2-D FDFD operator is a banded matrix whose bandwidth equals the grid
//! width, so an LAPACK-style banded LU (`zgbtrf`/`zgbtrs`) gives an exact
//! direct solve in `O(n·b²)` time. The factorization is reused for the
//! adjoint system via [`BandedLu::solve_transposed`].

use crate::{Complex64, LinalgError};

/// A complex banded matrix in LAPACK band storage (column-major).
///
/// `kl` sub-diagonals and `ku` super-diagonals are stored; factorization with
/// partial pivoting needs `kl` additional rows of fill-in, so the leading
/// dimension is `2·kl + ku + 1`. Element `A[i][j]` lives at row offset
/// `kl + ku + i − j` of column `j`.
#[derive(Debug, Clone)]
pub struct BandedMatrix {
    n: usize,
    kl: usize,
    ku: usize,
    ldab: usize,
    data: Vec<Complex64>,
}

impl BandedMatrix {
    /// Creates an `n × n` banded matrix of zeros with the given bandwidths.
    pub fn zeros(n: usize, kl: usize, ku: usize) -> Self {
        let ldab = 2 * kl + ku + 1;
        BandedMatrix {
            n,
            kl,
            ku,
            ldab,
            data: vec![Complex64::ZERO; ldab * n],
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of sub-diagonals.
    pub fn lower_bandwidth(&self) -> usize {
        self.kl
    }

    /// Number of super-diagonals.
    pub fn upper_bandwidth(&self) -> usize {
        self.ku
    }

    #[inline]
    fn offset(&self, i: usize, j: usize) -> usize {
        j * self.ldab + (self.kl + self.ku + i - j)
    }

    /// Returns `A[i][j]`, or zero outside the band.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        assert!(i < self.n && j < self.n, "banded index out of range");
        if i + self.ku < j || j + self.kl < i {
            Complex64::ZERO
        } else {
            self.data[self.offset(i, j)]
        }
    }

    /// Sets `A[i][j] = v`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` lies outside the band or out of range.
    pub fn set(&mut self, i: usize, j: usize, v: Complex64) {
        assert!(i < self.n && j < self.n, "banded index out of range");
        assert!(
            i + self.ku >= j && j + self.kl >= i,
            "entry ({i},{j}) outside band (kl={}, ku={})",
            self.kl,
            self.ku
        );
        let o = self.offset(i, j);
        self.data[o] = v;
    }

    /// Adds `v` to `A[i][j]`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` lies outside the band or out of range.
    pub fn add(&mut self, i: usize, j: usize, v: Complex64) {
        assert!(i < self.n && j < self.n, "banded index out of range");
        assert!(
            i + self.ku >= j && j + self.kl >= i,
            "entry ({i},{j}) outside band"
        );
        let o = self.offset(i, j);
        self.data[o] += v;
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn matvec(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.n, "banded matvec dimension mismatch");
        let mut y = vec![Complex64::ZERO; self.n];
        for j in 0..self.n {
            let xj = x[j];
            if xj == Complex64::ZERO {
                continue;
            }
            let ilo = j.saturating_sub(self.ku);
            let ihi = (j + self.kl).min(self.n - 1);
            for i in ilo..=ihi {
                y[i] += self.data[self.offset(i, j)] * xj;
            }
        }
        y
    }

    /// Transposed matrix–vector product `Aᵀ x` (unconjugated).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn matvec_transposed(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.n, "banded matvec dimension mismatch");
        let mut y = vec![Complex64::ZERO; self.n];
        for j in 0..self.n {
            let ilo = j.saturating_sub(self.ku);
            let ihi = (j + self.kl).min(self.n - 1);
            let mut acc = Complex64::ZERO;
            for i in ilo..=ihi {
                acc += self.data[self.offset(i, j)] * x[i];
            }
            y[j] = acc;
        }
        y
    }

    /// Factors the matrix as `P·L·U` with partial pivoting, consuming it.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when a zero pivot is encountered.
    pub fn factorize(mut self) -> Result<BandedLu, LinalgError> {
        let n = self.n;
        let (kl, ku, ldab) = (self.kl, self.ku, self.ldab);
        let kv = kl + ku; // row offset of the diagonal in band storage
        let mut ipiv = vec![0usize; n];
        // `ju` tracks the rightmost column touched by row interchanges so far.
        let mut ju = 0usize;
        for j in 0..n {
            // Zero the fill-in area of the column that enters the band window.
            if j + kv < n {
                let col = (j + kv) * ldab;
                for r in 0..kl {
                    self.data[col + r] = Complex64::ZERO;
                }
            }
            let km = kl.min(n - 1 - j); // sub-diagonal count in column j
                                        // Partial pivot: the largest entry on or below the diagonal.
            let colj = j * ldab;
            let mut jp = 0usize;
            let mut best = self.data[colj + kv].abs();
            for i in 1..=km {
                let a = self.data[colj + kv + i].abs();
                if a > best {
                    best = a;
                    jp = i;
                }
            }
            ipiv[j] = j + jp;
            let pivot = self.data[colj + kv + jp];
            if pivot == Complex64::ZERO {
                return Err(LinalgError::Singular { index: j });
            }
            ju = ju.max((j + ku + jp).min(n - 1));
            if jp != 0 {
                // Swap rows j and j+jp across columns j..=ju.
                for k in j..=ju {
                    let a = k * ldab + kv + j - k;
                    let b = k * ldab + kv + j + jp - k;
                    self.data.swap(a, b);
                }
            }
            if km > 0 {
                let inv = self.data[colj + kv].recip();
                for i in 1..=km {
                    let m = self.data[colj + kv + i] * inv;
                    self.data[colj + kv + i] = m;
                }
                // Rank-1 update of the trailing submatrix.
                for k in (j + 1)..=ju {
                    let colk = k * ldab;
                    let f = self.data[colk + kv + j - k];
                    if f == Complex64::ZERO {
                        continue;
                    }
                    for i in 1..=km {
                        let m = self.data[colj + kv + i];
                        self.data[colk + kv + j + i - k] -= f * m;
                    }
                }
            }
        }
        Ok(BandedLu {
            n,
            kl,
            ku,
            ldab,
            data: self.data,
            ipiv,
        })
    }
}

/// The LU factorization of a [`BandedMatrix`] with partial pivoting.
#[derive(Debug, Clone)]
pub struct BandedLu {
    n: usize,
    kl: usize,
    ku: usize,
    ldab: usize,
    data: Vec<Complex64>,
    ipiv: Vec<usize>,
}

impl BandedLu {
    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b`, returning `x`.
    ///
    /// Takes `&self`: one factorization serves any number of right-hand
    /// sides (forward + adjoint + multi-source sweeps), which is the
    /// amortization the factorization cache in `maps-fdfd` is built on.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(b.len(), self.n, "solve dimension mismatch");
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Solves `A X = B` for a batch of right-hand sides, returning one
    /// solution per input. The factorization is traversed once per RHS but
    /// paid for only once — the batched entry point for multi-source
    /// problems (S-parameter columns, multi-excitation objectives).
    ///
    /// # Panics
    ///
    /// Panics if any `rhs.len() != self.dim()`.
    pub fn solve_many(&self, rhs: &[impl AsRef<[Complex64]>]) -> Vec<Vec<Complex64>> {
        rhs.iter().map(|b| self.solve(b.as_ref())).collect()
    }

    /// Solves `Aᵀ X = B` for a batch of right-hand sides (see
    /// [`BandedLu::solve_transposed`]).
    ///
    /// # Panics
    ///
    /// Panics if any `rhs.len() != self.dim()`.
    pub fn solve_transposed_many(&self, rhs: &[impl AsRef<[Complex64]>]) -> Vec<Vec<Complex64>> {
        rhs.iter()
            .map(|b| self.solve_transposed(b.as_ref()))
            .collect()
    }

    /// Solves `A X = B` for a batch of right-hand sides into a caller-provided
    /// flat buffer, avoiding the `Vec<Vec<_>>` round trip on hot paths. The
    /// solution to `rhs[i]` is written to `out[i·n .. (i+1)·n]`.
    ///
    /// # Panics
    ///
    /// Panics if any `rhs.len() != self.dim()` or
    /// `out.len() != rhs.len() * self.dim()`.
    pub fn solve_many_into(&self, rhs: &[impl AsRef<[Complex64]>], out: &mut [Complex64]) {
        assert_eq!(
            out.len(),
            rhs.len() * self.n,
            "solve_many_into output buffer length mismatch"
        );
        for (b, chunk) in rhs.iter().zip(out.chunks_exact_mut(self.n)) {
            let b = b.as_ref();
            assert_eq!(b.len(), self.n, "solve dimension mismatch");
            chunk.copy_from_slice(b);
            self.solve_in_place(chunk);
        }
    }

    /// Solves `Aᵀ X = B` for a batch of right-hand sides into a
    /// caller-provided flat buffer (see [`BandedLu::solve_many_into`]).
    ///
    /// # Panics
    ///
    /// Panics if any `rhs.len() != self.dim()` or
    /// `out.len() != rhs.len() * self.dim()`.
    pub fn solve_transposed_many_into(
        &self,
        rhs: &[impl AsRef<[Complex64]>],
        out: &mut [Complex64],
    ) {
        assert_eq!(
            out.len(),
            rhs.len() * self.n,
            "solve_transposed_many_into output buffer length mismatch"
        );
        for (b, chunk) in rhs.iter().zip(out.chunks_exact_mut(self.n)) {
            let b = b.as_ref();
            assert_eq!(b.len(), self.n, "solve dimension mismatch");
            chunk.copy_from_slice(b);
            self.solve_transposed_in_place(chunk);
        }
    }

    /// Solves `A x = b` in place: `x` holds the right-hand side on entry
    /// and the solution on exit. This is the zero-copy primitive behind
    /// [`BandedLu::solve`] and [`BandedLu::solve_many_into`] — batch loops
    /// that already own their right-hand-side buffers sweep them in place
    /// rather than paying a copy per system.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn solve_in_place(&self, x: &mut [Complex64]) {
        assert_eq!(x.len(), self.n, "solve dimension mismatch");
        let (n, kl, ldab) = (self.n, self.kl, self.ldab);
        let kv = self.kl + self.ku;
        // Forward: apply L⁻¹ with the recorded pivots.
        if kl > 0 {
            for j in 0..n.saturating_sub(1) {
                let p = self.ipiv[j];
                if p != j {
                    x.swap(j, p);
                }
                let km = kl.min(n - 1 - j);
                let xj = x[j];
                if xj == Complex64::ZERO {
                    continue;
                }
                let colj = j * ldab;
                for i in 1..=km {
                    let m = self.data[colj + kv + i];
                    x[j + i] -= m * xj;
                }
            }
        }
        // Backward: apply U⁻¹. U has bandwidth kv.
        for j in (0..n).rev() {
            let diag = self.data[j * ldab + kv];
            let xj = x[j] / diag;
            x[j] = xj;
            if xj == Complex64::ZERO {
                continue;
            }
            let ilo = j.saturating_sub(kv);
            for i in ilo..j {
                let u = self.data[j * ldab + kv + i - j];
                x[i] -= u * xj;
            }
        }
    }

    /// Solves `Aᵀ x = b` (unconjugated transpose), returning `x`.
    ///
    /// This is the adjoint system of the FDFD operator; the same
    /// factorization is reused, so an adjoint solve costs only the
    /// substitution sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_transposed(&self, b: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(b.len(), self.n, "solve dimension mismatch");
        let mut x = b.to_vec();
        self.solve_transposed_in_place(&mut x);
        x
    }

    /// Solves `Aᵀ x = b` in place (unconjugated transpose; see
    /// [`BandedLu::solve_transposed`]). The zero-copy primitive behind the
    /// transposed batch entry points.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn solve_transposed_in_place(&self, x: &mut [Complex64]) {
        assert_eq!(x.len(), self.n, "solve dimension mismatch");
        let (n, kl, ldab) = (self.n, self.kl, self.ldab);
        let kv = self.kl + self.ku;
        // Solve Uᵀ y = b by forward substitution.
        for j in 0..n {
            let ilo = j.saturating_sub(kv);
            let mut acc = x[j];
            for i in ilo..j {
                let u = self.data[j * ldab + kv + i - j];
                acc -= u * x[i];
            }
            x[j] = acc / self.data[j * ldab + kv];
        }
        // Solve Lᵀ x = y, applying pivots in reverse.
        if kl > 0 {
            for j in (0..n.saturating_sub(1)).rev() {
                let km = kl.min(n - 1 - j);
                let colj = j * ldab;
                let mut acc = x[j];
                for i in 1..=km {
                    let m = self.data[colj + kv + i];
                    acc -= m * x[j + i];
                }
                x[j] = acc;
                let p = self.ipiv[j];
                if p != j {
                    x.swap(j, p);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::znorm;

    fn dense_solve(a: &[Vec<Complex64>], b: &[Complex64]) -> Vec<Complex64> {
        let n = b.len();
        let mut m: Vec<Vec<Complex64>> = a.to_vec();
        let mut x = b.to_vec();
        for j in 0..n {
            let p = (j..n)
                .max_by(|&r, &s| m[r][j].abs().partial_cmp(&m[s][j].abs()).unwrap())
                .unwrap();
            m.swap(j, p);
            x.swap(j, p);
            let piv = m[j][j];
            for i in (j + 1)..n {
                let f = m[i][j] / piv;
                for k in j..n {
                    let v = m[j][k];
                    m[i][k] -= f * v;
                }
                let xj = x[j];
                x[i] -= f * xj;
            }
        }
        for j in (0..n).rev() {
            let mut acc = x[j];
            for k in (j + 1)..n {
                acc -= m[j][k] * x[k];
            }
            x[j] = acc / m[j][j];
        }
        x
    }

    fn random_banded(
        n: usize,
        kl: usize,
        ku: usize,
        seed: u64,
    ) -> (BandedMatrix, Vec<Vec<Complex64>>) {
        // Tiny deterministic LCG so the test needs no external RNG.
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let mut next = move || {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut band = BandedMatrix::zeros(n, kl, ku);
        let mut dense = vec![vec![Complex64::ZERO; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i + ku >= j && j + kl >= i {
                    let mut v = Complex64::new(next(), next());
                    if i == j {
                        v += Complex64::from_re(4.0); // keep well conditioned
                    }
                    band.set(i, j, v);
                    dense[i][j] = v;
                }
            }
        }
        (band, dense)
    }

    #[test]
    fn solve_matches_dense_elimination() {
        let n = 24;
        let (band, dense) = random_banded(n, 3, 2, 7);
        let b: Vec<Complex64> = (0..n)
            .map(|k| Complex64::new(k as f64, -(k as f64) / 3.0))
            .collect();
        let lu = band.clone().factorize().unwrap();
        let x = lu.solve(&b);
        let x_ref = dense_solve(&dense, &b);
        let diff: Vec<Complex64> = x.iter().zip(&x_ref).map(|(a, b)| *a - *b).collect();
        assert!(
            znorm(&diff) < 1e-10,
            "direct solve mismatch: {}",
            znorm(&diff)
        );
        // Residual check against the original matrix.
        let r: Vec<Complex64> = band
            .matvec(&x)
            .iter()
            .zip(&b)
            .map(|(a, b)| *a - *b)
            .collect();
        assert!(znorm(&r) < 1e-10);
    }

    #[test]
    fn transpose_solve_residual() {
        let n = 30;
        let (band, _) = random_banded(n, 4, 4, 99);
        let b: Vec<Complex64> = (0..n)
            .map(|k| Complex64::new((k as f64).sin(), (k as f64).cos()))
            .collect();
        let lu = band.clone().factorize().unwrap();
        let x = lu.solve_transposed(&b);
        let r: Vec<Complex64> = band
            .matvec_transposed(&x)
            .iter()
            .zip(&b)
            .map(|(a, b)| *a - *b)
            .collect();
        assert!(znorm(&r) < 1e-10, "transpose residual {}", znorm(&r));
    }

    #[test]
    fn batched_solves_match_individual_solves_bitwise() {
        let n = 20;
        let (band, _) = random_banded(n, 3, 3, 42);
        let lu = band.factorize().unwrap();
        let rhs: Vec<Vec<Complex64>> = (0..3)
            .map(|r| {
                (0..n)
                    .map(|k| Complex64::new((k + r) as f64, (k * r) as f64 * 0.1))
                    .collect()
            })
            .collect();
        for (batched, b) in lu.solve_many(&rhs).iter().zip(&rhs) {
            assert_eq!(batched, &lu.solve(b), "batched solve must be bit-identical");
        }
        for (batched, b) in lu.solve_transposed_many(&rhs).iter().zip(&rhs) {
            assert_eq!(batched, &lu.solve_transposed(b));
        }
    }

    /// Pins the transposed batch against one-by-one `solve_transposed`:
    /// every component must match bit-for-bit, so a batched adjoint sweep
    /// can never drift from the scalar path.
    #[test]
    fn transposed_batch_matches_one_by_one_bitwise() {
        let n = 26;
        let (band, _) = random_banded(n, 4, 2, 1234);
        let lu = band.factorize().unwrap();
        let rhs: Vec<Vec<Complex64>> = (0..4)
            .map(|r| {
                (0..n)
                    .map(|k| {
                        Complex64::new(
                            (k as f64 + 0.3 * r as f64).sin(),
                            (k * (r + 1)) as f64 * 0.07,
                        )
                    })
                    .collect()
            })
            .collect();
        let batched = lu.solve_transposed_many(&rhs);
        assert_eq!(batched.len(), rhs.len());
        for (x, b) in batched.iter().zip(&rhs) {
            let one = lu.solve_transposed(b);
            for (a, e) in x.iter().zip(&one) {
                assert_eq!(a.re.to_bits(), e.re.to_bits());
                assert_eq!(a.im.to_bits(), e.im.to_bits());
            }
        }
    }

    #[test]
    fn into_variants_match_allocating_batches() {
        let n = 18;
        let (band, _) = random_banded(n, 2, 3, 5150);
        let lu = band.factorize().unwrap();
        let rhs: Vec<Vec<Complex64>> = (0..3)
            .map(|r| {
                (0..n)
                    .map(|k| Complex64::new((k + 2 * r) as f64, -(k as f64) * 0.2))
                    .collect()
            })
            .collect();
        let mut flat = vec![Complex64::ZERO; rhs.len() * n];
        lu.solve_many_into(&rhs, &mut flat);
        for (chunk, x) in flat.chunks_exact(n).zip(lu.solve_many(&rhs)) {
            assert_eq!(chunk, &x[..], "solve_many_into must match solve_many");
        }
        lu.solve_transposed_many_into(&rhs, &mut flat);
        for (chunk, x) in flat.chunks_exact(n).zip(lu.solve_transposed_many(&rhs)) {
            assert_eq!(chunk, &x[..]);
        }
    }

    #[test]
    #[should_panic(expected = "output buffer length mismatch")]
    fn solve_many_into_rejects_wrong_buffer_length() {
        let (band, _) = random_banded(8, 1, 1, 3);
        let lu = band.factorize().unwrap();
        let rhs = vec![vec![Complex64::ONE; 8]; 2];
        let mut out = vec![Complex64::ZERO; 8]; // should be 16
        lu.solve_many_into(&rhs, &mut out);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let mut band = BandedMatrix::zeros(2, 1, 1);
        band.set(0, 0, Complex64::ZERO);
        band.set(0, 1, Complex64::ONE);
        band.set(1, 0, Complex64::ONE);
        band.set(1, 1, Complex64::ZERO);
        let lu = band.factorize().expect("permutation matrix is nonsingular");
        let x = lu.solve(&[Complex64::from_re(3.0), Complex64::from_re(5.0)]);
        assert!((x[0] - Complex64::from_re(5.0)).abs() < 1e-14);
        assert!((x[1] - Complex64::from_re(3.0)).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_reports_error() {
        let band = BandedMatrix::zeros(3, 1, 1);
        match band.factorize() {
            Err(LinalgError::Singular { .. }) => {}
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn out_of_band_get_is_zero() {
        let band = BandedMatrix::zeros(5, 1, 1);
        assert_eq!(band.get(0, 4), Complex64::ZERO);
        assert_eq!(band.get(4, 0), Complex64::ZERO);
    }

    #[test]
    fn diagonal_matrix_roundtrip() {
        let n = 6;
        let mut band = BandedMatrix::zeros(n, 0, 0);
        for i in 0..n {
            band.set(i, i, Complex64::new(i as f64 + 1.0, 0.5));
        }
        let b: Vec<Complex64> = (0..n).map(|k| Complex64::from_re(k as f64 + 1.0)).collect();
        let lu = band.factorize().unwrap();
        let x = lu.solve(&b);
        for (i, xi) in x.iter().enumerate() {
            let expect = b[i] / Complex64::new(i as f64 + 1.0, 0.5);
            assert!((*xi - expect).abs() < 1e-14);
        }
    }
}
