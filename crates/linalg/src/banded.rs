//! Complex banded matrices with LU factorization.
//!
//! The 2-D FDFD operator is a banded matrix whose bandwidth equals the grid
//! width, so an LAPACK-style banded LU (`zgbtrf`/`zgbtrs`) gives an exact
//! direct solve in `O(n·b²)` time. The factorization is reused for the
//! adjoint system via [`BandedLu::solve_transposed`].

use crate::{Complex64, LinalgError};

/// Default number of right-hand sides swept per pass over the L/U factors.
///
/// The blocked substitution kernels traverse the band data once per *block*
/// of right-hand sides instead of once per RHS. Eight lanes of `f64` fill one
/// AVX-512 vector (two AVX2 vectors) per split plane, and the per-row lane
/// strips stay within a cache line, so this width captures most of the
/// bandwidth win without bloating the interleaved scratch planes.
pub const DEFAULT_RHS_BLOCK: usize = 8;

/// A complex banded matrix in LAPACK band storage (column-major).
///
/// `kl` sub-diagonals and `ku` super-diagonals are stored; factorization with
/// partial pivoting needs `kl` additional rows of fill-in, so the leading
/// dimension is `2·kl + ku + 1`. Element `A[i][j]` lives at row offset
/// `kl + ku + i − j` of column `j`.
#[derive(Debug, Clone)]
pub struct BandedMatrix {
    n: usize,
    kl: usize,
    ku: usize,
    ldab: usize,
    data: Vec<Complex64>,
}

impl BandedMatrix {
    /// Creates an `n × n` banded matrix of zeros with the given bandwidths.
    pub fn zeros(n: usize, kl: usize, ku: usize) -> Self {
        let ldab = 2 * kl + ku + 1;
        BandedMatrix {
            n,
            kl,
            ku,
            ldab,
            data: vec![Complex64::ZERO; ldab * n],
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of sub-diagonals.
    pub fn lower_bandwidth(&self) -> usize {
        self.kl
    }

    /// Number of super-diagonals.
    pub fn upper_bandwidth(&self) -> usize {
        self.ku
    }

    #[inline]
    fn offset(&self, i: usize, j: usize) -> usize {
        j * self.ldab + (self.kl + self.ku + i - j)
    }

    /// Returns `A[i][j]`, or zero outside the band.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        assert!(i < self.n && j < self.n, "banded index out of range");
        if i + self.ku < j || j + self.kl < i {
            Complex64::ZERO
        } else {
            self.data[self.offset(i, j)]
        }
    }

    /// Sets `A[i][j] = v`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` lies outside the band or out of range.
    pub fn set(&mut self, i: usize, j: usize, v: Complex64) {
        assert!(i < self.n && j < self.n, "banded index out of range");
        assert!(
            i + self.ku >= j && j + self.kl >= i,
            "entry ({i},{j}) outside band (kl={}, ku={})",
            self.kl,
            self.ku
        );
        let o = self.offset(i, j);
        self.data[o] = v;
    }

    /// Adds `v` to `A[i][j]`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` lies outside the band or out of range.
    pub fn add(&mut self, i: usize, j: usize, v: Complex64) {
        assert!(i < self.n && j < self.n, "banded index out of range");
        assert!(
            i + self.ku >= j && j + self.kl >= i,
            "entry ({i},{j}) outside band"
        );
        let o = self.offset(i, j);
        self.data[o] += v;
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn matvec(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.n, "banded matvec dimension mismatch");
        let mut y = vec![Complex64::ZERO; self.n];
        for j in 0..self.n {
            let xj = x[j];
            if xj == Complex64::ZERO {
                continue;
            }
            let ilo = j.saturating_sub(self.ku);
            let ihi = (j + self.kl).min(self.n - 1);
            for i in ilo..=ihi {
                y[i] += self.data[self.offset(i, j)] * xj;
            }
        }
        y
    }

    /// Transposed matrix–vector product `Aᵀ x` (unconjugated).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn matvec_transposed(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.n, "banded matvec dimension mismatch");
        let mut y = vec![Complex64::ZERO; self.n];
        for j in 0..self.n {
            let ilo = j.saturating_sub(self.ku);
            let ihi = (j + self.kl).min(self.n - 1);
            let mut acc = Complex64::ZERO;
            for i in ilo..=ihi {
                acc += self.data[self.offset(i, j)] * x[i];
            }
            y[j] = acc;
        }
        y
    }

    /// Factors the matrix as `P·L·U` with partial pivoting, consuming it.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when a zero pivot is encountered.
    pub fn factorize(mut self) -> Result<BandedLu, LinalgError> {
        let n = self.n;
        let (kl, ku, ldab) = (self.kl, self.ku, self.ldab);
        let kv = kl + ku; // row offset of the diagonal in band storage
        let mut ipiv = vec![0usize; n];
        // `ju` tracks the rightmost column touched by row interchanges so far.
        let mut ju = 0usize;
        for j in 0..n {
            // Zero the fill-in area of the column that enters the band window.
            if j + kv < n {
                let col = (j + kv) * ldab;
                for r in 0..kl {
                    self.data[col + r] = Complex64::ZERO;
                }
            }
            let km = kl.min(n - 1 - j); // sub-diagonal count in column j
                                        // Partial pivot: the largest entry on or below the diagonal.
            let colj = j * ldab;
            let mut jp = 0usize;
            let mut best = self.data[colj + kv].abs();
            for i in 1..=km {
                let a = self.data[colj + kv + i].abs();
                if a > best {
                    best = a;
                    jp = i;
                }
            }
            ipiv[j] = j + jp;
            let pivot = self.data[colj + kv + jp];
            if pivot == Complex64::ZERO {
                return Err(LinalgError::Singular { index: j });
            }
            ju = ju.max((j + ku + jp).min(n - 1));
            if jp != 0 {
                // Swap rows j and j+jp across columns j..=ju.
                for k in j..=ju {
                    let a = k * ldab + kv + j - k;
                    let b = k * ldab + kv + j + jp - k;
                    self.data.swap(a, b);
                }
            }
            if km > 0 {
                let inv = self.data[colj + kv].recip();
                for i in 1..=km {
                    let m = self.data[colj + kv + i] * inv;
                    self.data[colj + kv + i] = m;
                }
                // Rank-1 update of the trailing submatrix.
                for k in (j + 1)..=ju {
                    let colk = k * ldab;
                    let f = self.data[colk + kv + j - k];
                    if f == Complex64::ZERO {
                        continue;
                    }
                    for i in 1..=km {
                        let m = self.data[colj + kv + i];
                        self.data[colk + kv + j + i - k] -= f * m;
                    }
                }
            }
        }
        Ok(BandedLu {
            n,
            kl,
            ku,
            ldab,
            data: self.data,
            ipiv,
        })
    }
}

/// Columns fused per deferred-update flush in the blocked forward sweeps.
///
/// The forward substitutions defer each column's updates to rows below the
/// current panel and flush them as one multi-column gather pass: every row
/// in the flush range is loaded into registers once, receives up to `PANEL`
/// column contributions, and is stored once — instead of one read-modify-
/// write round trip per column. L panels are additionally bounded by pivot
/// swaps (a swap needs its rows current, which only holds at panel edges).
const PANEL: usize = 8;

/// Columns fused per flush in the pivot-free U sweep. Narrower panels than
/// `PANEL` win here: each U column eagerly scatters into every in-panel row
/// above it (an O(`PANEL_U`²) read-modify-write triangle per panel), and on
/// this band profile the triangle cost overtakes the flush amortization
/// before the L-side panel width does.
const PANEL_U: usize = 8;

/// Capacity of the per-panel scratch arrays shared by both sweeps: wide
/// enough for whichever panel width is larger.
const PANEL_MAX: usize = if PANEL > PANEL_U { PANEL } else { PANEL_U };

/// `x − a·b` with a single rounding: the fused-negate-multiply-add primitive
/// every substitution kernel (scalar and blocked) is built from. Sharing one
/// op sequence between the scalar and blocked paths is what keeps the
/// blocked sweeps bit-identical; on targets with hardware FMA
/// (`-C target-cpu=native`, see `.cargo/config.toml`) it also halves the
/// arithmetic per complex update.
#[inline(always)]
fn fnma(a: f64, b: f64, x: f64) -> f64 {
    (-a).mul_add(b, x)
}

/// `x − m·z` for complex operands, as two fused ops per component.
#[inline(always)]
fn cmul_sub(x: Complex64, m: Complex64, z: Complex64) -> Complex64 {
    Complex64::new(
        m.im.mul_add(z.im, fnma(m.re, z.re, x.re)),
        fnma(m.im, z.re, fnma(m.re, z.im, x.im)),
    )
}

/// `x · inv` where `inv` is a precomputed reciprocal — the division step of
/// the substitution sweeps, in the same fused form on both paths.
#[inline(always)]
fn cmul_recip(x: Complex64, inv: Complex64) -> Complex64 {
    Complex64::new(
        fnma(x.im, inv.im, x.re * inv.re),
        x.im.mul_add(inv.re, x.re * inv.im),
    )
}

/// Which substitution pair a blocked sweep runs.
#[derive(Clone, Copy)]
enum Sweep {
    /// `P·L·U x = b` (forward + backward substitution).
    Forward,
    /// `Aᵀ x = b` (transposed substitution, shared factors).
    Transposed,
}

/// The LU factorization of a [`BandedMatrix`] with partial pivoting.
#[derive(Debug, Clone)]
pub struct BandedLu {
    n: usize,
    kl: usize,
    ku: usize,
    ldab: usize,
    data: Vec<Complex64>,
    ipiv: Vec<usize>,
}

impl BandedLu {
    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of columns whose partial-pivot step interchanged rows.
    ///
    /// A diagnostic for the blocked sweeps: the forward substitution fuses
    /// columns into panels that end at swap columns, so a high swap density
    /// bounds how much fusion (and therefore how much band-data reuse) the
    /// L sweep can achieve on this factorization.
    pub fn pivot_swaps(&self) -> usize {
        self.ipiv
            .iter()
            .enumerate()
            .filter(|&(j, &p)| p != j)
            .count()
    }

    /// Solves `A x = b`, returning `x`.
    ///
    /// Takes `&self`: one factorization serves any number of right-hand
    /// sides (forward + adjoint + multi-source sweeps), which is the
    /// amortization the factorization cache in `maps-fdfd` is built on.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(b.len(), self.n, "solve dimension mismatch");
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Solves `A X = B` for a batch of right-hand sides, returning one
    /// solution per input. One pass over the L/U factors serves a whole
    /// block of right-hand sides (see [`BandedLu::solve_many_into_blocked`])
    /// — the batched entry point for multi-source problems (S-parameter
    /// columns, multi-excitation objectives, spectrum sweeps).
    ///
    /// # Panics
    ///
    /// Panics if any `rhs.len() != self.dim()`.
    pub fn solve_many(&self, rhs: &[impl AsRef<[Complex64]>]) -> Vec<Vec<Complex64>> {
        self.solve_many_blocked(rhs, DEFAULT_RHS_BLOCK)
    }

    /// Solves `Aᵀ X = B` for a batch of right-hand sides (see
    /// [`BandedLu::solve_transposed`]).
    ///
    /// # Panics
    ///
    /// Panics if any `rhs.len() != self.dim()`.
    pub fn solve_transposed_many(&self, rhs: &[impl AsRef<[Complex64]>]) -> Vec<Vec<Complex64>> {
        self.solve_transposed_many_blocked(rhs, DEFAULT_RHS_BLOCK)
    }

    /// Solves `A X = B` with an explicit RHS block width, returning one
    /// solution `Vec` per input. Identical sweeps (and therefore identical
    /// bits) to [`BandedLu::solve_many_into_blocked`], but each solution is
    /// scattered straight into its own freshly-allocated vector — no flat
    /// staging buffer to zero and re-chop — which is the cheapest shape for
    /// callers that hand each solution on as an owned field.
    ///
    /// # Panics
    ///
    /// Panics if any `rhs.len() != self.dim()`.
    pub fn solve_many_blocked(
        &self,
        rhs: &[impl AsRef<[Complex64]>],
        block: usize,
    ) -> Vec<Vec<Complex64>> {
        self.sweep_blocked_rows(rhs, block, Sweep::Forward)
    }

    /// Solves `Aᵀ X = B` with an explicit RHS block width, one owned
    /// solution `Vec` per input (see [`BandedLu::solve_many_blocked`]).
    ///
    /// # Panics
    ///
    /// Panics if any `rhs.len() != self.dim()`.
    pub fn solve_transposed_many_blocked(
        &self,
        rhs: &[impl AsRef<[Complex64]>],
        block: usize,
    ) -> Vec<Vec<Complex64>> {
        self.sweep_blocked_rows(rhs, block, Sweep::Transposed)
    }

    /// Solves `A X = B` for a batch of right-hand sides into a caller-provided
    /// flat buffer, avoiding the `Vec<Vec<_>>` round trip on hot paths. The
    /// solution to `rhs[i]` is written to `out[i·n .. (i+1)·n]`. Sweeps
    /// [`DEFAULT_RHS_BLOCK`] right-hand sides per pass over the factors.
    ///
    /// # Panics
    ///
    /// Panics if any `rhs.len() != self.dim()` or
    /// `out.len() != rhs.len() * self.dim()`.
    pub fn solve_many_into(&self, rhs: &[impl AsRef<[Complex64]>], out: &mut [Complex64]) {
        self.solve_many_into_blocked(rhs, out, DEFAULT_RHS_BLOCK);
    }

    /// Solves `Aᵀ X = B` for a batch of right-hand sides into a
    /// caller-provided flat buffer (see [`BandedLu::solve_many_into`]).
    ///
    /// # Panics
    ///
    /// Panics if any `rhs.len() != self.dim()` or
    /// `out.len() != rhs.len() * self.dim()`.
    pub fn solve_transposed_many_into(
        &self,
        rhs: &[impl AsRef<[Complex64]>],
        out: &mut [Complex64],
    ) {
        self.solve_transposed_many_into_blocked(rhs, out, DEFAULT_RHS_BLOCK);
    }

    /// Solves `A X = B` with an explicit RHS block width: each pass over the
    /// L/U factors sweeps up to `block` right-hand sides stored interleaved
    /// (RHS-major inner dimension), so the inner substitution loops run
    /// contiguously over the RHS axis and autovectorize while the ~`n·ldab`
    /// band data is read once per block instead of once per RHS.
    ///
    /// Per-RHS arithmetic order is unchanged from [`BandedLu::solve_in_place`]
    /// — each right-hand side is an independent system, so interleaving
    /// reorders nothing within a system and results are **bit-identical** to
    /// the scalar path.
    ///
    /// # Panics
    ///
    /// Panics if any `rhs.len() != self.dim()` or
    /// `out.len() != rhs.len() * self.dim()`.
    pub fn solve_many_into_blocked(
        &self,
        rhs: &[impl AsRef<[Complex64]>],
        out: &mut [Complex64],
        block: usize,
    ) {
        assert_eq!(
            out.len(),
            rhs.len() * self.n,
            "solve_many_into output buffer length mismatch"
        );
        self.sweep_blocked(rhs, out, block, Sweep::Forward);
    }

    /// Solves `Aᵀ X = B` with an explicit RHS block width (see
    /// [`BandedLu::solve_many_into_blocked`]).
    ///
    /// # Panics
    ///
    /// Panics if any `rhs.len() != self.dim()` or
    /// `out.len() != rhs.len() * self.dim()`.
    pub fn solve_transposed_many_into_blocked(
        &self,
        rhs: &[impl AsRef<[Complex64]>],
        out: &mut [Complex64],
        block: usize,
    ) {
        assert_eq!(
            out.len(),
            rhs.len() * self.n,
            "solve_transposed_many_into output buffer length mismatch"
        );
        self.sweep_blocked(rhs, out, block, Sweep::Transposed);
    }

    /// The one gather → blocked-substitution → scatter core behind every
    /// batch entry point. Right-hand sides are split into split-plane
    /// (re/im) scratch with lane-major rows: lane `r` of row `i` lives at
    /// `plane[i·W + r]`, so the per-row inner loops touch `W` contiguous
    /// `f64` per plane.
    ///
    /// The lane width is monomorphized (`W` const) so the strip kernels
    /// compile with compile-time trip counts — fully unrolled SIMD with no
    /// per-row slice bookkeeping. Each chunk picks the narrowest supported
    /// physical width (2, 4, 8, 16, or 32; wider blocks are split at 32)
    /// that covers it, so a tail block — or a whole small batch — never
    /// pays for lanes it does not fill. Remaining padding lanes start at
    /// zero and are computed and discarded; lanes never mix, so padding
    /// cannot perturb real lanes. A single-RHS chunk skips the plane
    /// machinery entirely and runs the scalar path, which the blocked
    /// kernels are bit-identical to by construction.
    fn sweep_blocked(
        &self,
        rhs: &[impl AsRef<[Complex64]>],
        out: &mut [Complex64],
        block: usize,
        sweep: Sweep,
    ) {
        if self.n == 0 || rhs.is_empty() {
            return;
        }
        let n = self.n;
        let block = block.max(1).min(rhs.len()).min(32);
        // One scratch pair serves every chunk (sliced to each chunk's
        // physical width): full chunks overwrite every lane on gather, so
        // only chunks with padding lanes pay a re-zero.
        let wmax = phys_width(block);
        let mut xr = vec![0.0f64; n * wmax];
        let mut xi = vec![0.0f64; n * wmax];
        for (chunk, out_chunk) in rhs.chunks(block).zip(out.chunks_mut(block * n)) {
            let wp = phys_width(chunk.len());
            let (xr, xi) = (&mut xr[..n * wp], &mut xi[..n * wp]);
            match chunk.len() {
                1 => {
                    let b = chunk[0].as_ref();
                    assert_eq!(b.len(), n, "solve dimension mismatch");
                    let x = &mut out_chunk[..n];
                    x.copy_from_slice(b);
                    match sweep {
                        Sweep::Forward => self.solve_in_place(x),
                        Sweep::Transposed => self.solve_transposed_in_place(x),
                    }
                }
                2 => self.solve_chunk::<2>(chunk, out_chunk, xr, xi, sweep),
                3..=4 => self.solve_chunk::<4>(chunk, out_chunk, xr, xi, sweep),
                5..=8 => self.solve_chunk::<8>(chunk, out_chunk, xr, xi, sweep),
                9..=16 => self.solve_chunk::<16>(chunk, out_chunk, xr, xi, sweep),
                _ => self.solve_chunk::<32>(chunk, out_chunk, xr, xi, sweep),
            }
        }
    }

    /// [`BandedLu::sweep_blocked`]'s twin for owned per-RHS outputs: same
    /// chunking, same physical-width dispatch, same sweeps — the scatter
    /// builds one `Vec` per right-hand side instead of filling a flat
    /// buffer.
    fn sweep_blocked_rows(
        &self,
        rhs: &[impl AsRef<[Complex64]>],
        block: usize,
        sweep: Sweep,
    ) -> Vec<Vec<Complex64>> {
        let n = self.n;
        if n == 0 || rhs.is_empty() {
            for b in rhs {
                assert_eq!(b.as_ref().len(), n, "solve dimension mismatch");
            }
            return vec![Vec::new(); rhs.len()];
        }
        let block = block.max(1).min(rhs.len()).min(32);
        let wmax = phys_width(block);
        let mut xr = vec![0.0f64; n * wmax];
        let mut xi = vec![0.0f64; n * wmax];
        let mut outs: Vec<Vec<Complex64>> = Vec::with_capacity(rhs.len());
        for chunk in rhs.chunks(block) {
            let wp = phys_width(chunk.len());
            let (xr, xi) = (&mut xr[..n * wp], &mut xi[..n * wp]);
            match chunk.len() {
                1 => {
                    let b = chunk[0].as_ref();
                    assert_eq!(b.len(), n, "solve dimension mismatch");
                    let mut x = b.to_vec();
                    match sweep {
                        Sweep::Forward => self.solve_in_place(&mut x),
                        Sweep::Transposed => self.solve_transposed_in_place(&mut x),
                    }
                    outs.push(x);
                }
                2 => self.solve_chunk_rows::<2>(chunk, &mut outs, xr, xi, sweep),
                3..=4 => self.solve_chunk_rows::<4>(chunk, &mut outs, xr, xi, sweep),
                5..=8 => self.solve_chunk_rows::<8>(chunk, &mut outs, xr, xi, sweep),
                9..=16 => self.solve_chunk_rows::<16>(chunk, &mut outs, xr, xi, sweep),
                _ => self.solve_chunk_rows::<32>(chunk, &mut outs, xr, xi, sweep),
            }
        }
        outs
    }

    /// One chunk of [`BandedLu::sweep_blocked`] at a fixed physical lane
    /// width `W ≥ chunk.len()`: gather into split planes, sweep, scatter.
    /// `xr`/`xi` are caller-owned scratch of length `n·W`.
    fn solve_chunk<const W: usize>(
        &self,
        chunk: &[impl AsRef<[Complex64]>],
        out_chunk: &mut [Complex64],
        xr: &mut [f64],
        xi: &mut [f64],
        sweep: Sweep,
    ) {
        let n = self.n;
        let w = chunk.len();
        // Re-slice to the exact `n·W` length so the optimizer sees the
        // same compile-time size relation it had when the planes were
        // allocated here, keeping the sweep loops free of bounds checks.
        let xr = &mut xr[..n * W];
        let xi = &mut xi[..n * W];
        self.sweep_chunk_planes::<W>(chunk, xr, xi, sweep);
        // Scatter back to RHS-major output rows, row-outer for the same
        // streaming reason as the gather: plane reads stay contiguous and
        // the `w` output streams each advance one element per row.
        let mut outs: Vec<&mut [Complex64]> = out_chunk[..w * n].chunks_exact_mut(n).collect();
        for i in 0..n {
            let (row_r, row_i) = (&xr[i * W..(i + 1) * W], &xi[i * W..(i + 1) * W]);
            for (r, out_row) in outs.iter_mut().enumerate() {
                out_row[i] = Complex64::new(row_r[r], row_i[r]);
            }
        }
    }

    /// The gather + blocked-substitution front half shared by the flat and
    /// per-`Vec` scatter paths: interleaves `chunk` into the `n·W` split
    /// planes and runs the requested sweep, leaving the solutions in the
    /// planes.
    fn sweep_chunk_planes<const W: usize>(
        &self,
        chunk: &[impl AsRef<[Complex64]>],
        xr: &mut [f64],
        xi: &mut [f64],
        sweep: Sweep,
    ) {
        let n = self.n;
        let w = chunk.len();
        debug_assert!(w >= 2 && w <= W);
        if w < W {
            // Padding lanes must start at zero; a full chunk overwrites
            // every lane below, so only padded chunks pay this clear.
            xr.fill(0.0);
            xi.fill(0.0);
        }
        // Gather: interleave this block's right-hand sides. Row-outer
        // order keeps the plane writes contiguous (one cache line per
        // row per plane, written once) while the per-lane reads advance
        // as `w` independent sequential streams the prefetcher tracks.
        let bs: [&[Complex64]; W] = core::array::from_fn(|r| {
            let b = chunk[r.min(w - 1)].as_ref();
            assert_eq!(b.len(), n, "solve dimension mismatch");
            b
        });
        for i in 0..n {
            let (row_r, row_i) = (&mut xr[i * W..(i + 1) * W], &mut xi[i * W..(i + 1) * W]);
            for r in 0..w {
                let z = bs[r][i];
                row_r[r] = z.re;
                row_i[r] = z.im;
            }
        }
        match sweep {
            Sweep::Forward => self.blocked_solve_planes::<W>(xr, xi, w),
            Sweep::Transposed => self.blocked_solve_transposed_planes::<W>(xr, xi),
        }
    }

    /// One chunk solved straight into freshly-allocated per-RHS `Vec`s
    /// appended to `outs`: the scatter fills each solution vector by
    /// extension (no zero-fill of the destination and no flat-buffer round
    /// trip), tiled so the strided plane reads stay inside a cache-resident
    /// window while each output vector grows sequentially.
    fn solve_chunk_rows<const W: usize>(
        &self,
        chunk: &[impl AsRef<[Complex64]>],
        outs: &mut Vec<Vec<Complex64>>,
        xr: &mut [f64],
        xi: &mut [f64],
        sweep: Sweep,
    ) {
        const SCATTER_TILE: usize = 512;
        let n = self.n;
        let w = chunk.len();
        let xr = &mut xr[..n * W];
        let xi = &mut xi[..n * W];
        self.sweep_chunk_planes::<W>(chunk, xr, xi, sweep);
        let base = outs.len();
        outs.extend((0..w).map(|_| Vec::with_capacity(n)));
        let mut t0 = 0;
        while t0 < n {
            let t1 = (t0 + SCATTER_TILE).min(n);
            for (r, out) in outs[base..].iter_mut().enumerate() {
                out.extend((t0..t1).map(|i| Complex64::new(xr[i * W + r], xi[i * W + r])));
            }
            t0 = t1;
        }
    }

    /// Blocked `P·L·U x = b`: the split-plane counterpart of
    /// [`BandedLu::solve_in_place`], sweeping `w` live lanes (padded to `W`)
    /// per pass.
    ///
    /// Both substitutions run in column panels (≤ [`PANEL`] wide). Updates
    /// to rows *inside* a panel stay eager — later panel columns read them —
    /// while updates to rows beyond it are deferred and flushed as one
    /// [`fused_update_rows`] gather pass, so each flushed row makes one
    /// register round trip per panel instead of one per column. Per-element
    /// update order is unchanged: the fused pass applies panel columns in
    /// exactly the order the scalar path visits them, with the shared
    /// [`cmul_sub`]/[`cmul_recip`] op sequences, so results stay
    /// bit-identical. L panels end early at pivot-swap columns (a swap needs
    /// both its rows current, which only the inter-panel flush guarantees).
    ///
    /// Zero-skip replication: the scalar path skips a column's update loop
    /// when its `x[j]` is zero, and computing the update anyway could flip
    /// IEEE zero signs (e.g. `−0.0 − 0·m = +0.0`). The fused flush therefore
    /// requires every lane of every panel column to be live; otherwise the
    /// flush falls back to per-column strips — vectorized when a column's
    /// live lanes fill the block, per-lane scalar when mixed, skipped when
    /// none (element updates are independent, so lane order is irrelevant).
    fn blocked_solve_planes<const W: usize>(&self, xr: &mut [f64], xi: &mut [f64], w: usize) {
        let (n, kl, ldab) = (self.n, self.kl, self.ldab);
        let kv = self.kl + self.ku;
        // Per-panel state: interleaved b values, liveness, the column's
        // multiplier base offset (`data[offs + i]` is its factor for row
        // `i`), and the far end of its update range.
        let mut b_r = [[0.0f64; W]; PANEL_MAX];
        let mut b_i = [[0.0f64; W]; PANEL_MAX];
        let mut lives = [0usize; PANEL_MAX];
        let mut offs = [0usize; PANEL_MAX];
        let mut ends = [0usize; PANEL_MAX];
        // Forward: apply L⁻¹ with the recorded pivots, in swap-bounded
        // panels of ascending columns.
        if kl > 0 && n > 1 {
            let nm1 = n - 1;
            let mut p0 = 0usize;
            while p0 < nm1 {
                // Extend the panel while columns carry no swap; a swap
                // column starts the next panel so its rows are current.
                let mut p1 = p0 + 1;
                while p1 < nm1 && p1 - p0 < PANEL && self.ipiv[p1] == p1 {
                    p1 += 1;
                }
                let pw = p1 - p0;
                for idx in 0..pw {
                    let c = p0 + idx;
                    let p = self.ipiv[c];
                    if p != c {
                        let (co, po) = (c * W, p * W);
                        for r in 0..W {
                            xr.swap(co + r, po + r);
                            xi.swap(co + r, po + r);
                        }
                    }
                    let co = c * W;
                    b_r[idx].copy_from_slice(&xr[co..co + W]);
                    b_i[idx].copy_from_slice(&xi[co..co + W]);
                    lives[idx] = live_lanes(&b_r[idx], &b_i[idx], w);
                    offs[idx] = c * ldab + kv - c;
                    ends[idx] = c + kl.min(n - 1 - c);
                    // Eager narrow update of the rows still inside the panel.
                    let t_end = ends[idx].min(p1 - 1);
                    if lives[idx] > 0 && t_end > c {
                        let cnt = t_end - c;
                        let col = &self.data[offs[idx] + c + 1..offs[idx] + c + 1 + cnt];
                        let ds = (c + 1) * W;
                        let de = ds + cnt * W;
                        if lives[idx] == w {
                            update_strip::<W>(
                                col,
                                &mut xr[ds..de],
                                &mut xi[ds..de],
                                &b_r[idx],
                                &b_i[idx],
                            );
                        } else {
                            update_strip_lanes::<W>(
                                col,
                                &mut xr[ds..de],
                                &mut xi[ds..de],
                                &b_r[idx],
                                &b_i[idx],
                                w,
                            );
                        }
                    }
                }
                // Flush rows ≥ p1. `ends` is nondecreasing over the panel,
                // so rows [p1, ends[0]] receive every column.
                let e0 = ends[0];
                if lives[..pw].iter().all(|&l| l == w) && e0 >= p1 {
                    fused_update_rows::<W>(
                        &self.data,
                        &offs[..pw],
                        &b_r[..pw],
                        &b_i[..pw],
                        xr,
                        xi,
                        p1,
                        e0,
                    );
                    // Tail rows past the common range, per column ascending
                    // (each row still sees its columns in ascending order).
                    for idx in 1..pw {
                        if ends[idx] > e0 {
                            let cnt = ends[idx] - e0;
                            let col = &self.data[offs[idx] + e0 + 1..offs[idx] + e0 + 1 + cnt];
                            let ds = (e0 + 1) * W;
                            let de = ds + cnt * W;
                            update_strip::<W>(
                                col,
                                &mut xr[ds..de],
                                &mut xi[ds..de],
                                &b_r[idx],
                                &b_i[idx],
                            );
                        }
                    }
                } else {
                    for idx in 0..pw {
                        if lives[idx] == 0 || ends[idx] < p1 {
                            continue;
                        }
                        let cnt = ends[idx] + 1 - p1;
                        let col = &self.data[offs[idx] + p1..offs[idx] + p1 + cnt];
                        let ds = p1 * W;
                        let de = ds + cnt * W;
                        if lives[idx] == w {
                            update_strip::<W>(
                                col,
                                &mut xr[ds..de],
                                &mut xi[ds..de],
                                &b_r[idx],
                                &b_i[idx],
                            );
                        } else {
                            update_strip_lanes::<W>(
                                col,
                                &mut xr[ds..de],
                                &mut xi[ds..de],
                                &b_r[idx],
                                &b_i[idx],
                                w,
                            );
                        }
                    }
                }
                p0 = p1;
            }
        }
        // Backward: apply U⁻¹ (bandwidth kv, no pivots) in panels of
        // descending columns. The scalar path divides via `diag.recip()`;
        // the reciprocal is a pure function of the diagonal, so computing it
        // once per column and sharing it across lanes is bit-identical.
        let mut p0 = n;
        while p0 > 0 {
            let top = p0 - 1;
            let pend = p0.saturating_sub(PANEL_U);
            let pw = p0 - pend;
            for idx in 0..pw {
                let c = top - idx;
                let inv = self.data[c * ldab + kv].recip();
                let co = c * W;
                for r in 0..W {
                    let (bre, bim) = (xr[co + r], xi[co + r]);
                    xr[co + r] = fnma(bim, inv.im, bre * inv.re);
                    xi[co + r] = bim.mul_add(inv.re, bre * inv.im);
                }
                b_r[idx].copy_from_slice(&xr[co..co + W]);
                b_i[idx].copy_from_slice(&xi[co..co + W]);
                lives[idx] = live_lanes(&b_r[idx], &b_i[idx], w);
                offs[idx] = c * ldab + kv - c;
                ends[idx] = c.saturating_sub(kv);
                // Eager narrow update of the panel rows below the diagonal.
                let t_lo = pend.max(ends[idx]);
                if lives[idx] > 0 && c > t_lo {
                    let cnt = c - t_lo;
                    let col = &self.data[offs[idx] + t_lo..offs[idx] + t_lo + cnt];
                    let ds = t_lo * W;
                    let de = ds + cnt * W;
                    if lives[idx] == w {
                        update_strip::<W>(
                            col,
                            &mut xr[ds..de],
                            &mut xi[ds..de],
                            &b_r[idx],
                            &b_i[idx],
                        );
                    } else {
                        update_strip_lanes::<W>(
                            col,
                            &mut xr[ds..de],
                            &mut xi[ds..de],
                            &b_r[idx],
                            &b_i[idx],
                            w,
                        );
                    }
                }
            }
            // Flush rows < pend. `ends` is nonincreasing over the panel
            // (descending columns), so rows [ends[0], pend−1] receive every
            // column; `offs` is already in descending-column order, which is
            // the scalar application order for the backward sweep.
            if pend > 0 {
                let e0 = ends[0];
                if lives[..pw].iter().all(|&l| l == w) && e0 < pend {
                    fused_update_rows::<W>(
                        &self.data,
                        &offs[..pw],
                        &b_r[..pw],
                        &b_i[..pw],
                        xr,
                        xi,
                        e0,
                        pend - 1,
                    );
                    for idx in 1..pw {
                        if ends[idx] < e0 {
                            let cnt = e0 - ends[idx];
                            let col =
                                &self.data[offs[idx] + ends[idx]..offs[idx] + ends[idx] + cnt];
                            let ds = ends[idx] * W;
                            let de = ds + cnt * W;
                            update_strip::<W>(
                                col,
                                &mut xr[ds..de],
                                &mut xi[ds..de],
                                &b_r[idx],
                                &b_i[idx],
                            );
                        }
                    }
                } else {
                    for idx in 0..pw {
                        if lives[idx] == 0 || ends[idx] >= pend {
                            continue;
                        }
                        let cnt = pend - ends[idx];
                        let col = &self.data[offs[idx] + ends[idx]..offs[idx] + ends[idx] + cnt];
                        let ds = ends[idx] * W;
                        let de = ds + cnt * W;
                        if lives[idx] == w {
                            update_strip::<W>(
                                col,
                                &mut xr[ds..de],
                                &mut xi[ds..de],
                                &b_r[idx],
                                &b_i[idx],
                            );
                        } else {
                            update_strip_lanes::<W>(
                                col,
                                &mut xr[ds..de],
                                &mut xi[ds..de],
                                &b_r[idx],
                                &b_i[idx],
                                w,
                            );
                        }
                    }
                }
            }
            p0 = pend;
        }
    }

    /// Blocked `Aᵀ x = b`: the split-plane counterpart of
    /// [`BandedLu::solve_transposed_in_place`]. The transposed sweeps are
    /// pure per-lane accumulations with no zero-skips, so the blocked form
    /// only needs to preserve the ascending accumulation order within each
    /// lane to stay bit-identical.
    fn blocked_solve_transposed_planes<const W: usize>(&self, xr: &mut [f64], xi: &mut [f64]) {
        let (n, kl, ldab) = (self.n, self.kl, self.ldab);
        let kv = self.kl + self.ku;
        let mut accr = [0.0f64; W];
        let mut acci = [0.0f64; W];
        // Solve Uᵀ y = b by forward substitution. Row j accumulates from
        // rows ilo..j into a register block: the same f64 op sequence as
        // the scalar register accumulator, lane by lane.
        for j in 0..n {
            let ilo = j.saturating_sub(kv);
            let jo = j * W;
            accr.copy_from_slice(&xr[jo..jo + W]);
            acci.copy_from_slice(&xi[jo..jo + W]);
            let len = j - ilo;
            if len > 0 {
                let col = &self.data[j * ldab + kv - len..j * ldab + kv];
                let ss = ilo * W;
                accumulate_strip::<W>(
                    col,
                    &xr[ss..ss + len * W],
                    &xi[ss..ss + len * W],
                    &mut accr,
                    &mut acci,
                );
            }
            let inv = self.data[j * ldab + kv].recip();
            for r in 0..W {
                let (are, aim) = (accr[r], acci[r]);
                xr[jo + r] = fnma(aim, inv.im, are * inv.re);
                xi[jo + r] = aim.mul_add(inv.re, are * inv.im);
            }
        }
        // Solve Lᵀ x = y, applying pivots in reverse.
        if kl > 0 {
            for j in (0..n.saturating_sub(1)).rev() {
                let km = kl.min(n - 1 - j);
                let jo = j * W;
                if km > 0 {
                    let colj = j * ldab;
                    accr.copy_from_slice(&xr[jo..jo + W]);
                    acci.copy_from_slice(&xi[jo..jo + W]);
                    let col = &self.data[colj + kv + 1..colj + kv + 1 + km];
                    let ss = (j + 1) * W;
                    accumulate_strip::<W>(
                        col,
                        &xr[ss..ss + km * W],
                        &xi[ss..ss + km * W],
                        &mut accr,
                        &mut acci,
                    );
                    xr[jo..jo + W].copy_from_slice(&accr);
                    xi[jo..jo + W].copy_from_slice(&acci);
                }
                let p = self.ipiv[j];
                if p != j {
                    let po = p * W;
                    for r in 0..W {
                        xr.swap(jo + r, po + r);
                        xi.swap(jo + r, po + r);
                    }
                }
            }
        }
    }

    /// Solves `A x = b` in place: `x` holds the right-hand side on entry
    /// and the solution on exit. This is the zero-copy primitive behind
    /// [`BandedLu::solve`] and [`BandedLu::solve_many_into`] — batch loops
    /// that already own their right-hand-side buffers sweep them in place
    /// rather than paying a copy per system.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn solve_in_place(&self, x: &mut [Complex64]) {
        assert_eq!(x.len(), self.n, "solve dimension mismatch");
        let (n, kl, ldab) = (self.n, self.kl, self.ldab);
        let kv = self.kl + self.ku;
        // Forward: apply L⁻¹ with the recorded pivots.
        if kl > 0 {
            for j in 0..n.saturating_sub(1) {
                let p = self.ipiv[j];
                if p != j {
                    x.swap(j, p);
                }
                let km = kl.min(n - 1 - j);
                let xj = x[j];
                if xj == Complex64::ZERO {
                    continue;
                }
                let colj = j * ldab;
                for i in 1..=km {
                    let m = self.data[colj + kv + i];
                    x[j + i] = cmul_sub(x[j + i], m, xj);
                }
            }
        }
        // Backward: apply U⁻¹. U has bandwidth kv.
        for j in (0..n).rev() {
            let inv = self.data[j * ldab + kv].recip();
            let xj = cmul_recip(x[j], inv);
            x[j] = xj;
            if xj == Complex64::ZERO {
                continue;
            }
            let ilo = j.saturating_sub(kv);
            for i in ilo..j {
                let u = self.data[j * ldab + kv + i - j];
                x[i] = cmul_sub(x[i], u, xj);
            }
        }
    }

    /// Solves `Aᵀ x = b` (unconjugated transpose), returning `x`.
    ///
    /// This is the adjoint system of the FDFD operator; the same
    /// factorization is reused, so an adjoint solve costs only the
    /// substitution sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_transposed(&self, b: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(b.len(), self.n, "solve dimension mismatch");
        let mut x = b.to_vec();
        self.solve_transposed_in_place(&mut x);
        x
    }

    /// Solves `Aᵀ x = b` in place (unconjugated transpose; see
    /// [`BandedLu::solve_transposed`]). The zero-copy primitive behind the
    /// transposed batch entry points.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn solve_transposed_in_place(&self, x: &mut [Complex64]) {
        assert_eq!(x.len(), self.n, "solve dimension mismatch");
        let (n, kl, ldab) = (self.n, self.kl, self.ldab);
        let kv = self.kl + self.ku;
        // Solve Uᵀ y = b by forward substitution.
        for j in 0..n {
            let ilo = j.saturating_sub(kv);
            let mut acc = x[j];
            for i in ilo..j {
                let u = self.data[j * ldab + kv + i - j];
                acc = cmul_sub(acc, u, x[i]);
            }
            x[j] = cmul_recip(acc, self.data[j * ldab + kv].recip());
        }
        // Solve Lᵀ x = y, applying pivots in reverse.
        if kl > 0 {
            for j in (0..n.saturating_sub(1)).rev() {
                let km = kl.min(n - 1 - j);
                let colj = j * ldab;
                let mut acc = x[j];
                for i in 1..=km {
                    let m = self.data[colj + kv + i];
                    acc = cmul_sub(acc, m, x[j + i]);
                }
                x[j] = acc;
                let p = self.ipiv[j];
                if p != j {
                    x.swap(j, p);
                }
            }
        }
    }
}

/// The physical lane width a chunk of `len` right-hand sides is
/// monomorphized at: the narrowest of the supported widths (2, 4, 8, 16,
/// 32) that covers it. A single RHS takes the scalar path (width 0: no
/// plane scratch needed).
#[inline(always)]
fn phys_width(len: usize) -> usize {
    match len {
        0 | 1 => 0,
        2 => 2,
        3..=4 => 4,
        5..=8 => 8,
        9..=16 => 16,
        _ => 32,
    }
}

/// Counts lanes among the first `w` whose complex value is nonzero
/// (`-0.0` counts as zero, matching `Complex64::ZERO` equality).
#[inline(always)]
fn live_lanes(br: &[f64], bi: &[f64], w: usize) -> usize {
    br[..w]
        .iter()
        .zip(&bi[..w])
        .filter(|(re, im)| **re != 0.0 || **im != 0.0)
        .count()
}

/// Rank-1 band-strip update `dst[k][r] -= col[k] · b[r]` in split planes:
/// row `k` of the strip is `dst_?[k·W .. (k+1)·W]`. Each lane runs the exact
/// [`cmul_sub`] op sequence of the scalar path.
#[inline(always)]
fn update_strip<const W: usize>(
    col: &[Complex64],
    dst_r: &mut [f64],
    dst_i: &mut [f64],
    b_r: &[f64; W],
    b_i: &[f64; W],
) {
    assert_eq!(dst_r.len(), col.len() * W, "strip length mismatch");
    assert_eq!(dst_i.len(), col.len() * W, "strip length mismatch");
    for (k, m) in col.iter().enumerate() {
        let o = k * W;
        for r in 0..W {
            dst_r[o + r] = m.im.mul_add(b_i[r], fnma(m.re, b_r[r], dst_r[o + r]));
            dst_i[o + r] = fnma(m.im, b_r[r], fnma(m.re, b_i[r], dst_i[o + r]));
        }
    }
}

/// The fused flush of a deferred panel: every row in `lo..=hi` is loaded
/// into registers once, receives the contributions of all panel columns in
/// `offs` order (the caller passes them in scalar application order —
/// ascending for the L sweep, descending for U), and is stored once. This
/// is the gather form that replaces `panel-width` read-modify-write passes
/// over the same rows with one.
///
/// Column `idx` must cover the whole range (`data[offs[idx] + i]` is its
/// multiplier for row `i`) and every lane of every panel column must be
/// live: the caller checks both, falling back to per-column strips
/// otherwise so the scalar zero-skips stay replicated.
#[inline(always)]
fn fused_update_rows<const W: usize>(
    data: &[Complex64],
    offs: &[usize],
    b_r: &[[f64; W]],
    b_i: &[[f64; W]],
    xr: &mut [f64],
    xi: &mut [f64],
    lo: usize,
    hi: usize,
) {
    // Rows are independent, but within one row the column applications
    // form a serial FMA chain (each depends on the previous accumulator).
    // Processing four rows side by side interleaves four independent
    // chains per plane, hiding the FMA latency a lone chain stalls on.
    // The per-row column order — and therefore bit-identity — is
    // untouched; only *which rows* run concurrently changes, and rows
    // never read each other.
    let mut i = lo;
    while i < hi {
        let mut a0r = [0.0f64; W];
        let mut a0i = [0.0f64; W];
        let mut a1r = [0.0f64; W];
        let mut a1i = [0.0f64; W];
        let ro = i * W;
        a0r.copy_from_slice(&xr[ro..ro + W]);
        a0i.copy_from_slice(&xi[ro..ro + W]);
        a1r.copy_from_slice(&xr[ro + W..ro + 2 * W]);
        a1i.copy_from_slice(&xi[ro + W..ro + 2 * W]);
        for (idx, &off) in offs.iter().enumerate() {
            let m0 = data[off + i];
            let m1 = data[off + i + 1];
            let br = &b_r[idx];
            let bi = &b_i[idx];
            for r in 0..W {
                a0r[r] = m0.im.mul_add(bi[r], fnma(m0.re, br[r], a0r[r]));
                a0i[r] = fnma(m0.im, br[r], fnma(m0.re, bi[r], a0i[r]));
                a1r[r] = m1.im.mul_add(bi[r], fnma(m1.re, br[r], a1r[r]));
                a1i[r] = fnma(m1.im, br[r], fnma(m1.re, bi[r], a1i[r]));
            }
        }
        xr[ro..ro + W].copy_from_slice(&a0r);
        xi[ro..ro + W].copy_from_slice(&a0i);
        xr[ro + W..ro + 2 * W].copy_from_slice(&a1r);
        xi[ro + W..ro + 2 * W].copy_from_slice(&a1i);
        i += 2;
    }
    let mut ar = [0.0f64; W];
    let mut ai = [0.0f64; W];
    while i <= hi {
        let ro = i * W;
        ar.copy_from_slice(&xr[ro..ro + W]);
        ai.copy_from_slice(&xi[ro..ro + W]);
        for (idx, &off) in offs.iter().enumerate() {
            let m = data[off + i];
            let br = &b_r[idx];
            let bi = &b_i[idx];
            for r in 0..W {
                ar[r] = m.im.mul_add(bi[r], fnma(m.re, br[r], ar[r]));
                ai[r] = fnma(m.im, br[r], fnma(m.re, bi[r], ai[r]));
            }
        }
        xr[ro..ro + W].copy_from_slice(&ar);
        xi[ro..ro + W].copy_from_slice(&ai);
        i += 1;
    }
}

/// Per-lane variant of [`update_strip`] for columns where only some lanes
/// are live: each zero lane is skipped exactly like the scalar path, and
/// live lanes run the identical op sequence (elementwise updates are
/// independent, so lane order is irrelevant).
#[inline(always)]
fn update_strip_lanes<const W: usize>(
    col: &[Complex64],
    dst_r: &mut [f64],
    dst_i: &mut [f64],
    b_r: &[f64; W],
    b_i: &[f64; W],
    w: usize,
) {
    assert_eq!(dst_r.len(), col.len() * W, "strip length mismatch");
    assert_eq!(dst_i.len(), col.len() * W, "strip length mismatch");
    for r in 0..w {
        let (bre, bim) = (b_r[r], b_i[r]);
        if bre == 0.0 && bim == 0.0 {
            continue;
        }
        for (k, m) in col.iter().enumerate() {
            let o = k * W + r;
            dst_r[o] = m.im.mul_add(bim, fnma(m.re, bre, dst_r[o]));
            dst_i[o] = fnma(m.im, bre, fnma(m.re, bim, dst_i[o]));
        }
    }
}

/// Band-strip accumulation `acc[r] -= col[k] · src[k][r]` over ascending `k`
/// — the blocked form of the transposed sweeps' register accumulators. The
/// loop-carried dependency is per lane, so the `W` lanes still vectorize.
#[inline(always)]
fn accumulate_strip<const W: usize>(
    col: &[Complex64],
    src_r: &[f64],
    src_i: &[f64],
    acc_r: &mut [f64; W],
    acc_i: &mut [f64; W],
) {
    assert_eq!(src_r.len(), col.len() * W, "strip length mismatch");
    assert_eq!(src_i.len(), col.len() * W, "strip length mismatch");
    for (k, m) in col.iter().enumerate() {
        let o = k * W;
        for r in 0..W {
            acc_r[r] =
                m.im.mul_add(src_i[o + r], fnma(m.re, src_r[o + r], acc_r[r]));
            acc_i[r] = fnma(m.im, src_r[o + r], fnma(m.re, src_i[o + r], acc_i[r]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::znorm;

    fn dense_solve(a: &[Vec<Complex64>], b: &[Complex64]) -> Vec<Complex64> {
        let n = b.len();
        let mut m: Vec<Vec<Complex64>> = a.to_vec();
        let mut x = b.to_vec();
        for j in 0..n {
            let p = (j..n)
                .max_by(|&r, &s| m[r][j].abs().partial_cmp(&m[s][j].abs()).unwrap())
                .unwrap();
            m.swap(j, p);
            x.swap(j, p);
            let piv = m[j][j];
            for i in (j + 1)..n {
                let f = m[i][j] / piv;
                for k in j..n {
                    let v = m[j][k];
                    m[i][k] -= f * v;
                }
                let xj = x[j];
                x[i] -= f * xj;
            }
        }
        for j in (0..n).rev() {
            let mut acc = x[j];
            for k in (j + 1)..n {
                acc -= m[j][k] * x[k];
            }
            x[j] = acc / m[j][j];
        }
        x
    }

    fn random_banded(
        n: usize,
        kl: usize,
        ku: usize,
        seed: u64,
    ) -> (BandedMatrix, Vec<Vec<Complex64>>) {
        // Tiny deterministic LCG so the test needs no external RNG.
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let mut next = move || {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut band = BandedMatrix::zeros(n, kl, ku);
        let mut dense = vec![vec![Complex64::ZERO; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i + ku >= j && j + kl >= i {
                    let mut v = Complex64::new(next(), next());
                    if i == j {
                        v += Complex64::from_re(4.0); // keep well conditioned
                    }
                    band.set(i, j, v);
                    dense[i][j] = v;
                }
            }
        }
        (band, dense)
    }

    #[test]
    fn solve_matches_dense_elimination() {
        let n = 24;
        let (band, dense) = random_banded(n, 3, 2, 7);
        let b: Vec<Complex64> = (0..n)
            .map(|k| Complex64::new(k as f64, -(k as f64) / 3.0))
            .collect();
        let lu = band.clone().factorize().unwrap();
        let x = lu.solve(&b);
        let x_ref = dense_solve(&dense, &b);
        let diff: Vec<Complex64> = x.iter().zip(&x_ref).map(|(a, b)| *a - *b).collect();
        assert!(
            znorm(&diff) < 1e-10,
            "direct solve mismatch: {}",
            znorm(&diff)
        );
        // Residual check against the original matrix.
        let r: Vec<Complex64> = band
            .matvec(&x)
            .iter()
            .zip(&b)
            .map(|(a, b)| *a - *b)
            .collect();
        assert!(znorm(&r) < 1e-10);
    }

    #[test]
    fn transpose_solve_residual() {
        let n = 30;
        let (band, _) = random_banded(n, 4, 4, 99);
        let b: Vec<Complex64> = (0..n)
            .map(|k| Complex64::new((k as f64).sin(), (k as f64).cos()))
            .collect();
        let lu = band.clone().factorize().unwrap();
        let x = lu.solve_transposed(&b);
        let r: Vec<Complex64> = band
            .matvec_transposed(&x)
            .iter()
            .zip(&b)
            .map(|(a, b)| *a - *b)
            .collect();
        assert!(znorm(&r) < 1e-10, "transpose residual {}", znorm(&r));
    }

    #[test]
    fn batched_solves_match_individual_solves_bitwise() {
        let n = 20;
        let (band, _) = random_banded(n, 3, 3, 42);
        let lu = band.factorize().unwrap();
        let rhs: Vec<Vec<Complex64>> = (0..3)
            .map(|r| {
                (0..n)
                    .map(|k| Complex64::new((k + r) as f64, (k * r) as f64 * 0.1))
                    .collect()
            })
            .collect();
        for (batched, b) in lu.solve_many(&rhs).iter().zip(&rhs) {
            assert_eq!(batched, &lu.solve(b), "batched solve must be bit-identical");
        }
        for (batched, b) in lu.solve_transposed_many(&rhs).iter().zip(&rhs) {
            assert_eq!(batched, &lu.solve_transposed(b));
        }
    }

    /// Pins the transposed batch against one-by-one `solve_transposed`:
    /// every component must match bit-for-bit, so a batched adjoint sweep
    /// can never drift from the scalar path.
    #[test]
    fn transposed_batch_matches_one_by_one_bitwise() {
        let n = 26;
        let (band, _) = random_banded(n, 4, 2, 1234);
        let lu = band.factorize().unwrap();
        let rhs: Vec<Vec<Complex64>> = (0..4)
            .map(|r| {
                (0..n)
                    .map(|k| {
                        Complex64::new(
                            (k as f64 + 0.3 * r as f64).sin(),
                            (k * (r + 1)) as f64 * 0.07,
                        )
                    })
                    .collect()
            })
            .collect();
        let batched = lu.solve_transposed_many(&rhs);
        assert_eq!(batched.len(), rhs.len());
        for (x, b) in batched.iter().zip(&rhs) {
            let one = lu.solve_transposed(b);
            for (a, e) in x.iter().zip(&one) {
                assert_eq!(a.re.to_bits(), e.re.to_bits());
                assert_eq!(a.im.to_bits(), e.im.to_bits());
            }
        }
    }

    #[test]
    fn into_variants_match_allocating_batches() {
        let n = 18;
        let (band, _) = random_banded(n, 2, 3, 5150);
        let lu = band.factorize().unwrap();
        let rhs: Vec<Vec<Complex64>> = (0..3)
            .map(|r| {
                (0..n)
                    .map(|k| Complex64::new((k + 2 * r) as f64, -(k as f64) * 0.2))
                    .collect()
            })
            .collect();
        let mut flat = vec![Complex64::ZERO; rhs.len() * n];
        lu.solve_many_into(&rhs, &mut flat);
        for (chunk, x) in flat.chunks_exact(n).zip(lu.solve_many(&rhs)) {
            assert_eq!(chunk, &x[..], "solve_many_into must match solve_many");
        }
        lu.solve_transposed_many_into(&rhs, &mut flat);
        for (chunk, x) in flat.chunks_exact(n).zip(lu.solve_transposed_many(&rhs)) {
            assert_eq!(chunk, &x[..]);
        }
    }

    /// Asserts two complex slices are equal down to the sign of zero.
    fn assert_bits_eq(a: &[Complex64], b: &[Complex64], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (k, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: re at {k}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: im at {k}");
        }
    }

    /// A batch of `count` right-hand sides with mixed sparsity: dense lanes,
    /// mostly-zero lanes (mode-source-like), and lanes carrying negative
    /// zeros, so the blocked kernel's zero-skip replication is exercised on
    /// all-live, all-dead, and mixed columns.
    fn mixed_rhs(n: usize, count: usize) -> Vec<Vec<Complex64>> {
        (0..count)
            .map(|r| {
                (0..n)
                    .map(|k| match r % 3 {
                        0 => Complex64::new(
                            ((k + r) as f64 * 0.7).sin(),
                            ((k * 3 + r) as f64 * 0.3).cos(),
                        ),
                        1 if k % 5 == r % 5 => Complex64::new(1.0 + k as f64 * 0.1, -0.25),
                        1 => Complex64::ZERO,
                        _ if k % 4 == 0 => Complex64::new(-0.0, 0.0),
                        _ => Complex64::new(0.5 - k as f64 * 0.05, (r as f64) * 0.125),
                    })
                    .collect()
            })
            .collect()
    }

    /// Bitwise pin: the blocked multi-RHS sweep must reproduce the scalar
    /// path exactly for every batch width K = 1..9 and K = 33 (odd tails
    /// across the default block boundary), for both `solve` and
    /// `solve_transposed`, at several explicit block widths.
    #[test]
    fn blocked_sweep_is_bit_identical_to_scalar_path() {
        let n = 41;
        let (band, _) = random_banded(n, 5, 3, 2024);
        let lu = band.factorize().unwrap();
        for k in (1..=9).chain([33]) {
            let rhs = mixed_rhs(n, k);
            let scalar: Vec<Vec<Complex64>> = rhs.iter().map(|b| lu.solve(b)).collect();
            let scalar_t: Vec<Vec<Complex64>> =
                rhs.iter().map(|b| lu.solve_transposed(b)).collect();
            for block in [1, 2, 3, DEFAULT_RHS_BLOCK, 16, 64] {
                let mut flat = vec![Complex64::ZERO; k * n];
                lu.solve_many_into_blocked(&rhs, &mut flat, block);
                for (chunk, x) in flat.chunks_exact(n).zip(&scalar) {
                    assert_bits_eq(chunk, x, &format!("solve K={k} block={block}"));
                }
                lu.solve_transposed_many_into_blocked(&rhs, &mut flat, block);
                for (chunk, x) in flat.chunks_exact(n).zip(&scalar_t) {
                    assert_bits_eq(chunk, x, &format!("solve_t K={k} block={block}"));
                }
                // The owned-rows scatter rides the same sweep.
                for (x, b) in lu.solve_many_blocked(&rhs, block).iter().zip(&scalar) {
                    assert_bits_eq(x, b, &format!("solve_rows K={k} block={block}"));
                }
                for (x, b) in lu
                    .solve_transposed_many_blocked(&rhs, block)
                    .iter()
                    .zip(&scalar_t)
                {
                    assert_bits_eq(x, b, &format!("solve_rows_t K={k} block={block}"));
                }
            }
            // The allocating wrappers ride the same kernel.
            for (x, b) in lu.solve_many(&rhs).iter().zip(&scalar) {
                assert_bits_eq(x, b, &format!("solve_many K={k}"));
            }
            for (x, b) in lu.solve_transposed_many(&rhs).iter().zip(&scalar_t) {
                assert_bits_eq(x, b, &format!("solve_transposed_many K={k}"));
            }
        }
    }

    /// Sign-of-zero stress: right-hand sides built entirely from ±0.0 must
    /// come out of the blocked sweep with the exact zero signs the scalar
    /// path produces (the zero-skip is what preserves them).
    #[test]
    fn blocked_sweep_preserves_zero_signs() {
        let n = 17;
        let (band, _) = random_banded(n, 3, 2, 77);
        let lu = band.factorize().unwrap();
        let rhs: Vec<Vec<Complex64>> = (0..5)
            .map(|r| {
                (0..n)
                    .map(|k| match (k + r) % 4 {
                        0 => Complex64::new(-0.0, 0.0),
                        1 => Complex64::new(0.0, -0.0),
                        2 => Complex64::new(-0.0, -0.0),
                        _ => Complex64::ZERO,
                    })
                    .collect()
            })
            .collect();
        let batched = lu.solve_many(&rhs);
        let batched_t = lu.solve_transposed_many(&rhs);
        for ((x, xt), b) in batched.iter().zip(&batched_t).zip(&rhs) {
            assert_bits_eq(x, &lu.solve(b), "zero-sign solve");
            assert_bits_eq(xt, &lu.solve_transposed(b), "zero-sign solve_t");
        }
    }

    #[test]
    fn blocked_sweep_handles_empty_batch_and_diagonal_only() {
        let (band, _) = random_banded(9, 0, 0, 6);
        let lu = band.factorize().unwrap();
        let empty: Vec<Vec<Complex64>> = Vec::new();
        assert!(lu.solve_many(&empty).is_empty());
        assert!(lu.solve_transposed_many(&empty).is_empty());
        let rhs = mixed_rhs(9, 3);
        for (x, b) in lu.solve_many(&rhs).iter().zip(&rhs) {
            assert_bits_eq(x, &lu.solve(b), "diagonal-only solve");
        }
    }

    #[test]
    #[should_panic(expected = "output buffer length mismatch")]
    fn solve_many_into_rejects_wrong_buffer_length() {
        let (band, _) = random_banded(8, 1, 1, 3);
        let lu = band.factorize().unwrap();
        let rhs = vec![vec![Complex64::ONE; 8]; 2];
        let mut out = vec![Complex64::ZERO; 8]; // should be 16
        lu.solve_many_into(&rhs, &mut out);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let mut band = BandedMatrix::zeros(2, 1, 1);
        band.set(0, 0, Complex64::ZERO);
        band.set(0, 1, Complex64::ONE);
        band.set(1, 0, Complex64::ONE);
        band.set(1, 1, Complex64::ZERO);
        let lu = band.factorize().expect("permutation matrix is nonsingular");
        let x = lu.solve(&[Complex64::from_re(3.0), Complex64::from_re(5.0)]);
        assert!((x[0] - Complex64::from_re(5.0)).abs() < 1e-14);
        assert!((x[1] - Complex64::from_re(3.0)).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_reports_error() {
        let band = BandedMatrix::zeros(3, 1, 1);
        match band.factorize() {
            Err(LinalgError::Singular { .. }) => {}
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn out_of_band_get_is_zero() {
        let band = BandedMatrix::zeros(5, 1, 1);
        assert_eq!(band.get(0, 4), Complex64::ZERO);
        assert_eq!(band.get(4, 0), Complex64::ZERO);
    }

    #[test]
    fn diagonal_matrix_roundtrip() {
        let n = 6;
        let mut band = BandedMatrix::zeros(n, 0, 0);
        for i in 0..n {
            band.set(i, i, Complex64::new(i as f64 + 1.0, 0.5));
        }
        let b: Vec<Complex64> = (0..n).map(|k| Complex64::from_re(k as f64 + 1.0)).collect();
        let lu = band.factorize().unwrap();
        let x = lu.solve(&b);
        for (i, xi) in x.iter().enumerate() {
            let expect = b[i] / Complex64::new(i as f64 + 1.0, 0.5);
            assert!((*xi - expect).abs() < 1e-14);
        }
    }
}
