//! Symmetric eigensolvers.
//!
//! The slab-waveguide mode solver in `maps-fdfd` reduces to a small real
//! symmetric (tridiagonal) eigenproblem; the cyclic Jacobi method here is
//! exact enough and dependency-free.

use crate::dense::DMatrix;

/// Eigen-decomposition of a real symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, sorted descending.
    pub values: Vec<f64>,
    /// Column `k` of this matrix is the eigenvector of `values[k]`.
    pub vectors: DMatrix,
}

/// Computes all eigenpairs of a real symmetric matrix with cyclic Jacobi
/// rotations.
///
/// Eigenvalues are returned sorted in descending order (the mode solver wants
/// the largest propagation constants first).
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn symmetric_eigen(a: &DMatrix) -> SymmetricEigen {
    assert_eq!(
        a.rows(),
        a.cols(),
        "symmetric_eigen requires a square matrix"
    );
    let n = a.rows();
    let mut m = a.clone();
    let mut v = DMatrix::identity(n);
    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() < 1e-14 * (1.0 + frobenius(&m)) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply rotation to rows/columns p and q.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Extract diagonal, sort descending, permute eigenvector columns.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).expect("finite eigenvalues"));
    let values: Vec<f64> = order.iter().map(|&k| diag[k]).collect();
    let mut vectors = DMatrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    SymmetricEigen { values, vectors }
}

fn frobenius(m: &DMatrix) -> f64 {
    m.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let mut a = DMatrix::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = 5.0;
        a[(2, 2)] = -2.0;
        let e = symmetric_eigen(&a);
        assert!((e.values[0] - 5.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        assert!((e.values[2] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let mut a = DMatrix::zeros(2, 2);
        a[(0, 0)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 2.0;
        let e = symmetric_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        // Eigenvector of λ=3 is (1,1)/√2 up to sign.
        let v0 = (e.vectors[(0, 0)], e.vectors[(1, 0)]);
        assert!((v0.0.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0.0 - v0.1).abs() < 1e-10);
    }

    #[test]
    fn residual_of_tridiagonal_laplacian() {
        let n = 24;
        let mut a = DMatrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 2.0;
            if i > 0 {
                a[(i, i - 1)] = -1.0;
                a[(i - 1, i)] = -1.0;
            }
        }
        let e = symmetric_eigen(&a);
        // Analytic eigenvalues: 2 − 2cos(kπ/(n+1)), k = 1..n, sorted descending.
        let mut analytic: Vec<f64> = (1..=n)
            .map(|k| 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos())
            .collect();
        analytic.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (got, want) in e.values.iter().zip(&analytic) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
        // Check A v = λ v for the dominant pair.
        let v0: Vec<f64> = (0..n).map(|r| e.vectors[(r, 0)]).collect();
        let av = a.matvec(&v0);
        for i in 0..n {
            assert!((av[i] - e.values[0] * v0[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let n = 10;
        let mut a = DMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = ((i * 7 + j * 13) % 11) as f64 / 11.0 - 0.5;
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let e = symmetric_eigen(&a);
        for c1 in 0..n {
            for c2 in 0..n {
                let dot: f64 = (0..n)
                    .map(|r| e.vectors[(r, c1)] * e.vectors[(r, c2)])
                    .sum();
                let expect = if c1 == c2 { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-9, "cols {c1},{c2}: {dot}");
            }
        }
    }
}
