//! Compressed sparse row matrices over [`Complex64`].
//!
//! Used for operator assembly inspection ("Maxwell equation matrices" in the
//! MAPS-Data rich labels) and as the operator format for the iterative
//! BiCGSTAB solver.

use crate::Complex64;

/// A coordinate-format triplet builder for [`CsrMatrix`].
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, Complex64)>,
}

impl CooMatrix {
    /// Creates an empty `rows × cols` COO matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Appends `v` at `(i, j)`; duplicates are summed on conversion.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn push(&mut self, i: usize, j: usize, v: Complex64) {
        assert!(i < self.rows && j < self.cols, "coo index out of range");
        if v != Complex64::ZERO {
            self.entries.push((i, j, v));
        }
    }

    /// Number of stored triplets (before duplicate merging).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Converts to CSR, summing duplicate entries.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut entries = self.entries.clone();
        entries.sort_by_key(|&(i, j, _)| (i, j));
        let mut row_counts = vec![0usize; self.rows];
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values: Vec<Complex64> = Vec::with_capacity(entries.len());
        let mut last: Option<(usize, usize)> = None;
        for &(i, j, v) in &entries {
            if last == Some((i, j)) {
                *values.last_mut().expect("merge follows a push") += v;
            } else {
                col_idx.push(j);
                values.push(v);
                row_counts[i] += 1;
                last = Some((i, j));
            }
        }
        let mut row_ptr = vec![0usize; self.rows + 1];
        for i in 0..self.rows {
            row_ptr[i + 1] = row_ptr[i] + row_counts[i];
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// A compressed sparse row matrix of [`Complex64`].
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<Complex64>,
}

impl CsrMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over `(row, col, value)` triplets in row order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Complex64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            (self.row_ptr[i]..self.row_ptr[i + 1])
                .map(move |k| (i, self.col_idx[k], self.values[k]))
        })
    }

    /// Returns `A[i][j]`, or zero when not stored.
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(k) => self.values[lo + k],
            Err(_) => Complex64::ZERO,
        }
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.cols, "csr matvec dimension mismatch");
        let mut y = vec![Complex64::ZERO; self.rows];
        for i in 0..self.rows {
            let mut acc = Complex64::ZERO;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[i] = acc;
        }
        y
    }

    /// Transposed matrix–vector product `Aᵀ x` (unconjugated).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_transposed(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.rows, "csr matvec dimension mismatch");
        let mut y = vec![Complex64::ZERO; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            if xi == Complex64::ZERO {
                continue;
            }
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                y[self.col_idx[k]] += self.values[k] * xi;
            }
        }
        y
    }

    /// Extracts the diagonal as a vector (missing entries are zero).
    pub fn diagonal(&self) -> Vec<Complex64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, Complex64::from_re(2.0));
        coo.push(0, 2, Complex64::new(0.0, 1.0));
        coo.push(1, 1, Complex64::from_re(3.0));
        coo.push(2, 0, Complex64::from_re(-1.0));
        coo.push(2, 2, Complex64::from_re(4.0));
        coo.to_csr()
    }

    #[test]
    fn matvec_matches_hand_computed() {
        let a = sample();
        let x = vec![Complex64::ONE, Complex64::from_re(2.0), Complex64::I];
        let y = a.matvec(&x);
        assert_eq!(y[0], Complex64::new(2.0 - 1.0, 0.0)); // 2·1 + i·i
        assert_eq!(y[1], Complex64::from_re(6.0));
        assert_eq!(y[2], Complex64::new(-1.0, 4.0));
    }

    #[test]
    fn transpose_matvec_consistent_with_get() {
        let a = sample();
        let x = vec![Complex64::ONE, Complex64::ONE, Complex64::ONE];
        let yt = a.matvec_transposed(&x);
        for j in 0..3 {
            let expect: Complex64 = (0..3).map(|i| a.get(i, j)).sum();
            assert_eq!(yt[j], expect);
        }
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, Complex64::from_re(1.0));
        coo.push(0, 0, Complex64::from_re(2.5));
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 0), Complex64::from_re(3.5));
    }

    #[test]
    fn empty_rows_have_valid_pointers() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(3, 3, Complex64::ONE);
        let csr = coo.to_csr();
        let x = vec![Complex64::ONE; 4];
        let y = csr.matvec(&x);
        assert_eq!(y[0], Complex64::ZERO);
        assert_eq!(y[3], Complex64::ONE);
    }

    #[test]
    fn diagonal_extraction() {
        let a = sample();
        let d = a.diagonal();
        assert_eq!(
            d,
            vec![
                Complex64::from_re(2.0),
                Complex64::from_re(3.0),
                Complex64::from_re(4.0)
            ]
        );
    }
}
