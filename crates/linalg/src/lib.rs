//! # maps-linalg
//!
//! Dependency-free numerical kernels underpinning the MAPS photonic
//! simulation stack: complex arithmetic, dense/banded/sparse matrices, a
//! banded LU direct solver (with transpose solves for adjoint systems),
//! BiCGSTAB, FFTs, and a symmetric eigensolver.
//!
//! ```
//! use maps_linalg::{BandedMatrix, Complex64};
//!
//! # fn main() -> Result<(), maps_linalg::LinalgError> {
//! let mut a = BandedMatrix::zeros(3, 1, 1);
//! for i in 0..3 {
//!     a.set(i, i, Complex64::from_re(2.0));
//! }
//! let lu = a.factorize()?;
//! let x = lu.solve(&[Complex64::ONE; 3]);
//! assert!((x[0].re - 0.5).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod banded;
pub mod complex;
pub mod dense;
pub mod eigen;
pub mod fft;
pub mod iterative;
pub mod mixed;
pub mod sparse;

pub use banded::{BandedLu, BandedMatrix, DEFAULT_RHS_BLOCK};
pub use complex::Complex64;
pub use dense::{DMatrix, ZMatrix};
pub use eigen::{symmetric_eigen, SymmetricEigen};
pub use iterative::{bicgstab, IterativeOptions, IterativeStats};
pub use mixed::{Complex32, Factor, MixedBandedLu, RefineReport};
pub use sparse::{CooMatrix, CsrMatrix};

use std::fmt;

/// Errors produced by the numerical kernels.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// A factorization hit an exactly zero pivot at the given elimination
    /// step; the matrix is singular (or numerically so).
    Singular {
        /// Elimination step at which the zero pivot appeared.
        index: usize,
    },
    /// An iterative method failed to reach the requested tolerance.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Relative residual at the final iterate.
        residual: f64,
    },
    /// A computation was abandoned before producing a result — e.g. a
    /// coalesced factorization whose leader panicked, leaving its followers
    /// with no factor to share.
    Aborted {
        /// What interrupted the computation.
        detail: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular { index } => {
                write!(f, "matrix is singular (zero pivot at step {index})")
            }
            LinalgError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            LinalgError::Aborted { detail } => write!(f, "computation aborted: {detail}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }

    #[test]
    fn error_display_is_lowercase() {
        let e = LinalgError::Singular { index: 3 };
        let s = e.to_string();
        assert!(s.starts_with("matrix"));
    }
}
