//! Fast Fourier transforms.
//!
//! Radix-2 Cooley–Tukey for power-of-two lengths with a Bluestein fallback
//! for arbitrary lengths, plus a row-major 2-D transform used by the spectral
//! convolutions in the FNO family of models.

use crate::Complex64;
use std::f64::consts::PI;

/// In-place forward DFT: `X[k] = Σₙ x[n]·e^{−2πi·kn/N}`.
pub fn fft(data: &mut [Complex64]) {
    transform(data, false);
}

/// In-place inverse DFT, normalized by `1/N`.
pub fn ifft(data: &mut [Complex64]) {
    transform(data, true);
    let n = data.len() as f64;
    for z in data.iter_mut() {
        *z = *z / n;
    }
}

fn transform(data: &mut [Complex64], inverse: bool) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        radix2(data, inverse);
    } else {
        bluestein(data, inverse);
    }
}

fn radix2(data: &mut [Complex64], inverse: bool) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex64::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Bluestein's algorithm: expresses an arbitrary-length DFT as a convolution
/// performed with power-of-two FFTs.
fn bluestein(data: &mut [Complex64], inverse: bool) {
    let n = data.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp: w[k] = e^{sign·πi·k²/n}
    let mut chirp = vec![Complex64::ZERO; n];
    for k in 0..n {
        // k² mod 2n avoids precision loss for large k
        let kk = (k * k) % (2 * n);
        chirp[k] = Complex64::cis(sign * PI * kk as f64 / n as f64);
    }
    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex64::ZERO; m];
    let mut b = vec![Complex64::ZERO; m];
    for k in 0..n {
        a[k] = data[k] * chirp[k];
        b[k] = chirp[k].conj();
    }
    for k in 1..n {
        b[m - k] = chirp[k].conj();
    }
    radix2(&mut a, false);
    radix2(&mut b, false);
    for k in 0..m {
        a[k] = a[k] * b[k];
    }
    radix2(&mut a, true);
    let scale = 1.0 / m as f64;
    for k in 0..n {
        data[k] = a[k] * chirp[k] * scale;
    }
}

/// Forward 2-D DFT of a row-major `rows × cols` buffer, in place.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`.
pub fn fft2(data: &mut [Complex64], rows: usize, cols: usize) {
    transform2(data, rows, cols, false);
}

/// Inverse 2-D DFT of a row-major `rows × cols` buffer, in place
/// (normalized by `1/(rows·cols)`).
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`.
pub fn ifft2(data: &mut [Complex64], rows: usize, cols: usize) {
    transform2(data, rows, cols, true);
}

fn transform2(data: &mut [Complex64], rows: usize, cols: usize, inverse: bool) {
    assert_eq!(data.len(), rows * cols, "fft2 buffer size mismatch");
    // Transform each row.
    for r in 0..rows {
        let row = &mut data[r * cols..(r + 1) * cols];
        if inverse {
            ifft(row);
        } else {
            fft(row);
        }
    }
    // Transform each column through a scratch buffer.
    let mut col = vec![Complex64::ZERO; rows];
    for c in 0..cols {
        for r in 0..rows {
            col[r] = data[r * cols + c];
        }
        if inverse {
            ifft(&mut col);
        } else {
            fft(&mut col);
        }
        for r in 0..rows {
            data[r * cols + c] = col[r];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::znorm;

    fn naive_dft(x: &[Complex64]) -> Vec<Complex64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|t| x[t] * Complex64::cis(-2.0 * PI * (k * t) as f64 / n as f64))
                    .sum()
            })
            .collect()
    }

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|k| Complex64::new((k as f64 * 0.37).sin(), (k as f64 * 0.11).cos()))
            .collect()
    }

    #[test]
    fn radix2_matches_naive_dft() {
        for &n in &[1usize, 2, 4, 8, 16, 64] {
            let x = signal(n);
            let mut y = x.clone();
            fft(&mut y);
            let expect = naive_dft(&x);
            let d: Vec<Complex64> = y.iter().zip(&expect).map(|(a, b)| *a - *b).collect();
            assert!(znorm(&d) < 1e-9 * (n as f64).max(1.0), "n={n}");
        }
    }

    #[test]
    fn bluestein_matches_naive_dft() {
        for &n in &[3usize, 5, 6, 7, 12, 15, 31] {
            let x = signal(n);
            let mut y = x.clone();
            fft(&mut y);
            let expect = naive_dft(&x);
            let d: Vec<Complex64> = y.iter().zip(&expect).map(|(a, b)| *a - *b).collect();
            assert!(znorm(&d) < 1e-8 * n as f64, "n={n}, err={}", znorm(&d));
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        for &n in &[8usize, 9, 16, 21] {
            let x = signal(n);
            let mut y = x.clone();
            fft(&mut y);
            ifft(&mut y);
            let d: Vec<Complex64> = y.iter().zip(&x).map(|(a, b)| *a - *b).collect();
            assert!(znorm(&d) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x = signal(32);
        let mut y = x.clone();
        fft(&mut y);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / 32.0;
        assert!((ex - ey).abs() < 1e-9 * ex);
    }

    #[test]
    fn fft2_roundtrip() {
        let (rows, cols) = (8, 12);
        let x = signal(rows * cols);
        let mut y = x.clone();
        fft2(&mut y, rows, cols);
        ifft2(&mut y, rows, cols);
        let d: Vec<Complex64> = y.iter().zip(&x).map(|(a, b)| *a - *b).collect();
        assert!(znorm(&d) < 1e-10);
    }

    #[test]
    fn fft2_of_constant_concentrates_dc() {
        let (rows, cols) = (4, 4);
        let mut y = vec![Complex64::ONE; rows * cols];
        fft2(&mut y, rows, cols);
        assert!((y[0] - Complex64::from_re(16.0)).abs() < 1e-12);
        assert!(y[1..].iter().all(|z| z.abs() < 1e-12));
    }

    #[test]
    fn single_frequency_bin() {
        let n = 16;
        let x: Vec<Complex64> = (0..n)
            .map(|t| Complex64::cis(2.0 * PI * 3.0 * t as f64 / n as f64))
            .collect();
        let mut y = x.clone();
        fft(&mut y);
        assert!((y[3] - Complex64::from_re(n as f64)).abs() < 1e-9);
        for (k, z) in y.iter().enumerate() {
            if k != 3 {
                assert!(z.abs() < 1e-9, "leakage at bin {k}");
            }
        }
    }
}
