//! Double-precision complex numbers.
//!
//! MAPS avoids external numeric crates, so this module provides the small
//! complex arithmetic kernel used by the FDFD operator assembly, the banded
//! LU solver, and the FFT.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// ```
/// use maps_linalg::Complex64;
/// let i = Complex64::I;
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns NaNs when `z == 0`, matching IEEE division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex64::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Unit phasor `e^{iθ}` for a real angle `θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64::new(theta.cos(), theta.sin())
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let re = ((r + self.re) * 0.5).max(0.0).sqrt();
        let im = ((r - self.re) * 0.5).max(0.0).sqrt();
        Complex64::new(re, if self.im >= 0.0 { im } else { -im })
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// Returns `true` when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_re(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.recip()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re - rhs, self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert!(close(z * z.recip(), Complex64::ONE));
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn conjugate_and_division() {
        let z = Complex64::new(1.0, 2.0);
        let w = Complex64::new(-2.0, 0.5);
        assert!(close((z / w) * w, z));
        assert!(close(z * z.conj(), Complex64::from_re(z.norm_sqr())));
    }

    #[test]
    fn exp_matches_euler() {
        let z = Complex64::new(0.0, std::f64::consts::PI);
        assert!(close(z.exp(), Complex64::new(-1.0, 0.0)));
        let cis = Complex64::cis(0.7);
        assert!(close(cis, Complex64::new(0.7f64.cos(), 0.7f64.sin())));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (-1.0, 0.0), (3.0, -4.0), (0.0, 2.0)] {
            let z = Complex64::new(re, im);
            let s = z.sqrt();
            assert!(close(s * s, z), "sqrt({z}) = {s}");
        }
    }

    #[test]
    fn sum_accumulates() {
        let total: Complex64 = (0..5).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex64::new(10.0, 5.0));
    }
}
