//! Iterative Krylov solvers for large FDFD systems.
//!
//! The direct banded LU in [`crate::banded`] is exact but its cost grows as
//! `O(n·b²)`; for very large grids MAPS falls back to BiCGSTAB with Jacobi
//! preconditioning. The ablation bench compares both.

use crate::dense::{zdotc, znorm};
use crate::sparse::CsrMatrix;
use crate::{Complex64, LinalgError};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide sequence number distinguishing the residual trajectory of
/// one BiCGSTAB call from the next in the series registry.
static SOLVE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Convergence report for an iterative solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterativeStats {
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − A x‖ / ‖b‖`.
    pub residual: f64,
}

/// Options controlling [`bicgstab`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterativeOptions {
    /// Relative residual tolerance.
    pub tolerance: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
}

impl Default for IterativeOptions {
    fn default() -> Self {
        IterativeOptions {
            tolerance: 1e-8,
            max_iterations: 10_000,
        }
    }
}

impl IterativeOptions {
    /// Returns options with the convergence tolerance relaxed by `factor`
    /// (> 1 loosens), capped at a relative residual of `1e-2` so a "rescued"
    /// solve still resembles a solution. Retry policies use this to give a
    /// stalled solve a second chance before falling back to a direct solver.
    #[must_use]
    pub fn relaxed(self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 1.0, "factor must be >= 1");
        IterativeOptions {
            tolerance: (self.tolerance * factor).min(1e-2),
            max_iterations: self.max_iterations,
        }
    }
}

/// Solves `A x = b` with Jacobi-preconditioned BiCGSTAB.
///
/// # Errors
///
/// Returns [`LinalgError::NoConvergence`] when the relative residual does not
/// drop below `options.tolerance` within `options.max_iterations`, or when
/// the recurrence breaks down.
///
/// # Panics
///
/// Panics if `b.len() != a.rows()` or `a` is not square.
pub fn bicgstab(
    a: &CsrMatrix,
    b: &[Complex64],
    options: IterativeOptions,
) -> Result<(Vec<Complex64>, IterativeStats), LinalgError> {
    let _span = maps_obs::span("linalg.bicgstab").field("n", b.len());
    // Per-inner-iteration residual trajectories are hot, so they are only
    // captured while the flight recorder is on (explicitly or via an export
    // knob). Each solve gets its own numbered series.
    let trajectory = if maps_obs::recorder::is_enabled() {
        let id = SOLVE_SEQ.fetch_add(1, Ordering::Relaxed);
        Some(maps_obs::series(&format!("bicgstab.residual.{id:04}")))
    } else {
        None
    };
    let result = bicgstab_inner(a, b, options, trajectory.as_ref());
    match &result {
        Ok((_, stats)) => {
            maps_obs::counter("bicgstab.solves").inc();
            maps_obs::histogram("bicgstab.iterations").record(stats.iterations as f64);
            maps_obs::histogram("bicgstab.residual").record(stats.residual);
        }
        Err(LinalgError::NoConvergence {
            iterations,
            residual,
        }) => {
            maps_obs::counter("bicgstab.failures").inc();
            maps_obs::histogram("bicgstab.iterations").record(*iterations as f64);
            maps_obs::histogram("bicgstab.residual").record(*residual);
        }
        Err(_) => {
            maps_obs::counter("bicgstab.failures").inc();
        }
    }
    result
}

fn bicgstab_inner(
    a: &CsrMatrix,
    b: &[Complex64],
    options: IterativeOptions,
    trajectory: Option<&maps_obs::Series>,
) -> Result<(Vec<Complex64>, IterativeStats), LinalgError> {
    let record = |it: usize, rel: f64| {
        if let Some(series) = trajectory {
            series.push(it as u64, rel);
        }
    };
    assert_eq!(a.rows(), a.cols(), "bicgstab requires a square matrix");
    assert_eq!(b.len(), a.rows(), "bicgstab dimension mismatch");
    let n = b.len();
    let bnorm = znorm(b);
    if bnorm == 0.0 {
        return Ok((
            vec![Complex64::ZERO; n],
            IterativeStats {
                iterations: 0,
                residual: 0.0,
            },
        ));
    }
    // Jacobi preconditioner: M⁻¹ = diag(A)⁻¹ (identity for zero diagonals).
    let minv: Vec<Complex64> = a
        .diagonal()
        .iter()
        .map(|d| {
            if d.abs() > 0.0 {
                d.recip()
            } else {
                Complex64::ONE
            }
        })
        .collect();
    let precond =
        |v: &[Complex64]| -> Vec<Complex64> { v.iter().zip(&minv).map(|(x, m)| *x * *m).collect() };

    let mut x = vec![Complex64::ZERO; n];
    let mut r: Vec<Complex64> = b.to_vec();
    let r0 = r.clone();
    let mut rho = Complex64::ONE;
    let mut alpha = Complex64::ONE;
    let mut omega = Complex64::ONE;
    let mut v = vec![Complex64::ZERO; n];
    let mut p = vec![Complex64::ZERO; n];

    for it in 1..=options.max_iterations {
        let rho_next = zdotc(&r0, &r);
        if rho_next.abs() < 1e-300 {
            let residual = znorm(&r) / bnorm;
            record(it, residual);
            return Err(LinalgError::NoConvergence {
                iterations: it,
                residual,
            });
        }
        let beta = (rho_next / rho) * (alpha / omega);
        rho = rho_next;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        let phat = precond(&p);
        v = a.matvec(&phat);
        alpha = rho / zdotc(&r0, &v);
        let s: Vec<Complex64> = (0..n).map(|i| r[i] - alpha * v[i]).collect();
        let s_rel = znorm(&s) / bnorm;
        if s_rel < options.tolerance {
            for i in 0..n {
                x[i] += alpha * phat[i];
            }
            record(it, s_rel);
            return Ok((
                x,
                IterativeStats {
                    iterations: it,
                    residual: s_rel,
                },
            ));
        }
        let shat = precond(&s);
        let t = a.matvec(&shat);
        let tt = zdotc(&t, &t);
        if tt.abs() < 1e-300 {
            record(it, s_rel);
            return Err(LinalgError::NoConvergence {
                iterations: it,
                residual: s_rel,
            });
        }
        omega = zdotc(&t, &s) / tt;
        for i in 0..n {
            x[i] += alpha * phat[i] + omega * shat[i];
            r[i] = s[i] - omega * t[i];
        }
        let rel = znorm(&r) / bnorm;
        record(it, rel);
        if rel < options.tolerance {
            return Ok((
                x,
                IterativeStats {
                    iterations: it,
                    residual: rel,
                },
            ));
        }
    }
    Err(LinalgError::NoConvergence {
        iterations: options.max_iterations,
        residual: znorm(&r) / bnorm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CooMatrix;

    fn laplacian_plus_shift(n: usize, shift: Complex64) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, Complex64::from_re(2.0) + shift);
            if i > 0 {
                coo.push(i, i - 1, Complex64::from_re(-1.0));
            }
            if i + 1 < n {
                coo.push(i, i + 1, Complex64::from_re(-1.0));
            }
        }
        coo.to_csr()
    }

    #[test]
    fn converges_on_complex_shifted_laplacian() {
        let n = 120;
        let a = laplacian_plus_shift(n, Complex64::new(0.3, 0.4));
        let b: Vec<Complex64> = (0..n)
            .map(|k| Complex64::new((k as f64 * 0.1).sin(), (k as f64 * 0.07).cos()))
            .collect();
        let (x, stats) = bicgstab(&a, &b, IterativeOptions::default()).unwrap();
        let r: Vec<Complex64> = a.matvec(&x).iter().zip(&b).map(|(p, q)| *p - *q).collect();
        assert!(znorm(&r) / znorm(&b) < 1e-7, "residual {}", stats.residual);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = laplacian_plus_shift(8, Complex64::ZERO);
        let b = vec![Complex64::ZERO; 8];
        let (x, stats) = bicgstab(&a, &b, IterativeOptions::default()).unwrap();
        assert!(x.iter().all(|z| *z == Complex64::ZERO));
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn relaxed_options_loosen_and_cap() {
        let opts = IterativeOptions::default();
        let r = opts.relaxed(10.0);
        assert!((r.tolerance - 1e-7).abs() < 1e-20);
        assert_eq!(r.max_iterations, opts.max_iterations);
        // A huge factor is capped so the result still resembles a solution.
        assert_eq!(opts.relaxed(1e12).tolerance, 1e-2);
    }

    #[test]
    fn relaxed_tolerance_rescues_a_capped_solve() {
        // Under a tight iteration budget the tight tolerance fails but the
        // relaxed one converges — the exact scenario retry policies exploit.
        let a = laplacian_plus_shift(64, Complex64::new(0.3, 0.4));
        let b = vec![Complex64::ONE; 64];
        let tight = IterativeOptions {
            tolerance: 1e-12,
            max_iterations: 8,
        };
        assert!(bicgstab(&a, &b, tight).is_err());
        let relaxed = tight.relaxed(1e9);
        let (_, stats) = bicgstab(&a, &b, relaxed).unwrap();
        assert!(stats.residual <= relaxed.tolerance);
    }

    #[test]
    fn iteration_cap_is_enforced() {
        let a = laplacian_plus_shift(64, Complex64::new(0.0, 0.01));
        let b = vec![Complex64::ONE; 64];
        let res = bicgstab(
            &a,
            &b,
            IterativeOptions {
                tolerance: 1e-16,
                max_iterations: 1,
            },
        );
        assert!(matches!(res, Err(LinalgError::NoConvergence { .. })));
    }
}
