//! Property-based tests of the numerical kernels.

use maps_linalg::dense::znorm;
use maps_linalg::fft::{fft, ifft};
use maps_linalg::{BandedMatrix, Complex64, CooMatrix};
use proptest::prelude::*;

fn complex_strategy() -> impl Strategy<Value = Complex64> {
    (-5.0..5.0f64, -5.0..5.0f64).prop_map(|(re, im)| Complex64::new(re, im))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any diagonally dominant banded system is solved to tiny residual.
    #[test]
    fn banded_solve_has_small_residual(
        n in 3usize..24,
        kl in 0usize..3,
        ku in 0usize..3,
        seed in 0u64..1000,
    ) {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = BandedMatrix::zeros(n, kl, ku);
        for i in 0..n {
            for j in i.saturating_sub(kl)..(i + ku + 1).min(n) {
                let v = if i == j {
                    Complex64::new(5.0 + next(), next())
                } else {
                    Complex64::new(next(), next())
                };
                a.set(i, j, v);
            }
        }
        let b: Vec<Complex64> = (0..n).map(|_| Complex64::new(next(), next())).collect();
        let lu = a.clone().factorize().unwrap();
        let x = lu.solve(&b);
        let r: Vec<Complex64> = a.matvec(&x).iter().zip(&b).map(|(p, q)| *p - *q).collect();
        prop_assert!(znorm(&r) <= 1e-9 * (1.0 + znorm(&b)));
        // Transposed solve too.
        let xt = lu.solve_transposed(&b);
        let rt: Vec<Complex64> = a.matvec_transposed(&xt).iter().zip(&b).map(|(p, q)| *p - *q).collect();
        prop_assert!(znorm(&rt) <= 1e-9 * (1.0 + znorm(&b)));
    }

    /// The blocked multi-RHS sweep is bit-identical to per-RHS scalar solves
    /// on random well-conditioned banded systems, for any batch size and
    /// block width (including widths that leave odd tails).
    #[test]
    fn blocked_multi_rhs_matches_per_rhs_bitwise(
        n in 3usize..28,
        kl in 0usize..4,
        ku in 0usize..4,
        k in 1usize..12,
        block in 1usize..10,
        seed in 0u64..1000,
    ) {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(7);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = BandedMatrix::zeros(n, kl, ku);
        for i in 0..n {
            for j in i.saturating_sub(kl)..(i + ku + 1).min(n) {
                let v = if i == j {
                    Complex64::new(5.0 + next(), next())
                } else {
                    Complex64::new(next(), next())
                };
                a.set(i, j, v);
            }
        }
        // Mix dense and sparse right-hand sides so the zero-skip path runs.
        let rhs: Vec<Vec<Complex64>> = (0..k)
            .map(|r| {
                (0..n)
                    .map(|i| {
                        if r % 2 == 1 && (i + r) % 3 != 0 {
                            Complex64::ZERO
                        } else {
                            Complex64::new(next(), next())
                        }
                    })
                    .collect()
            })
            .collect();
        let lu = a.factorize().unwrap();
        let mut flat = vec![Complex64::ZERO; k * n];
        lu.solve_many_into_blocked(&rhs, &mut flat, block);
        for (chunk, b) in flat.chunks_exact(n).zip(&rhs) {
            let x = lu.solve(b);
            for (p, q) in chunk.iter().zip(&x) {
                prop_assert_eq!(p.re.to_bits(), q.re.to_bits());
                prop_assert_eq!(p.im.to_bits(), q.im.to_bits());
            }
        }
        lu.solve_transposed_many_into_blocked(&rhs, &mut flat, block);
        for (chunk, b) in flat.chunks_exact(n).zip(&rhs) {
            let x = lu.solve_transposed(b);
            for (p, q) in chunk.iter().zip(&x) {
                prop_assert_eq!(p.re.to_bits(), q.re.to_bits());
                prop_assert_eq!(p.im.to_bits(), q.im.to_bits());
            }
        }
    }

    /// FFT followed by inverse FFT is the identity for any length.
    #[test]
    fn fft_roundtrip(data in prop::collection::vec(complex_strategy(), 1..64)) {
        let mut buf = data.clone();
        fft(&mut buf);
        ifft(&mut buf);
        let d: Vec<Complex64> = buf.iter().zip(&data).map(|(a, b)| *a - *b).collect();
        prop_assert!(znorm(&d) <= 1e-9 * (1.0 + znorm(&data)));
    }

    /// Parseval: the DFT preserves energy up to the 1/N convention.
    #[test]
    fn fft_parseval(data in prop::collection::vec(complex_strategy(), 1..48)) {
        let n = data.len() as f64;
        let mut buf = data.clone();
        fft(&mut buf);
        let e_time: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let e_freq: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / n;
        prop_assert!((e_time - e_freq).abs() <= 1e-9 * (1.0 + e_time));
    }

    /// CSR matvec is linear: A(αx + βy) = αAx + βAy.
    #[test]
    fn csr_matvec_linearity(
        n in 2usize..16,
        alpha in -3.0..3.0f64,
        beta in -3.0..3.0f64,
        seed in 0u64..500,
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                if (i + j) % 3 == 0 {
                    coo.push(i, j, Complex64::new(next(), next()));
                }
            }
        }
        let a = coo.to_csr();
        let x: Vec<Complex64> = (0..n).map(|_| Complex64::new(next(), next())).collect();
        let y: Vec<Complex64> = (0..n).map(|_| Complex64::new(next(), next())).collect();
        let combo: Vec<Complex64> = x.iter().zip(&y).map(|(a, b)| *a * alpha + *b * beta).collect();
        let lhs = a.matvec(&combo);
        let ax = a.matvec(&x);
        let ay = a.matvec(&y);
        let rhs: Vec<Complex64> = ax.iter().zip(&ay).map(|(p, q)| *p * alpha + *q * beta).collect();
        let d: Vec<Complex64> = lhs.iter().zip(&rhs).map(|(p, q)| *p - *q).collect();
        prop_assert!(znorm(&d) <= 1e-9 * (1.0 + znorm(&rhs)));
    }

    /// Complex field axioms: |z·w| = |z|·|w| and conj distributes.
    #[test]
    fn complex_axioms(z in complex_strategy(), w in complex_strategy()) {
        prop_assert!(((z * w).abs() - z.abs() * w.abs()).abs() < 1e-10 * (1.0 + z.abs() * w.abs()));
        let lhs = (z * w).conj();
        let rhs = z.conj() * w.conj();
        prop_assert!((lhs - rhs).abs() < 1e-12 * (1.0 + lhs.abs()));
        // Triangle inequality.
        prop_assert!((z + w).abs() <= z.abs() + w.abs() + 1e-12);
    }
}
