//! Cross-thread trace stitching: flow ids and parent span ids.
//!
//! A single-threaded trace hangs together through per-thread nesting depth
//! alone, but the moment work fans out over `std::thread::scope` workers
//! (parallel resilient labeling, batched ω-bucket sweeps) the exported
//! trace degenerates into disconnected per-thread lanes. This module gives
//! every *recorded* span two extra coordinates that survive thread hops:
//!
//! - a **flow id**: process-unique id of the logical task tree the span
//!   belongs to. The outermost recorded span on a thread (with no inherited
//!   context) starts a fresh flow; everything nested under it — on any
//!   thread — shares it.
//! - a **parent span id**: the id of the span that was current when this
//!   span opened, whether that parent lives on the same thread or on the
//!   spawning thread.
//!
//! Propagation is explicit and cheap: a spawner captures
//! [`current_context`] (two thread-local reads) and each worker installs it
//! with [`adopt_context`] for the duration of its closure. The vendored
//! rayon stand-in does this automatically around its scoped workers, so
//! `par_iter` call sites inherit stitching for free.
//!
//! All bookkeeping lives on the *recording* span path; when the recorder,
//! debug logging, and watchdog are all off, no ids are allocated and the
//! thread-locals are never touched.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-unique id source for spans and flows. Span and flow ids share a
/// sequence — a flow id is simply never equal to any other span's id, which
/// keeps both unique without coordinating two counters. Id 0 means "none".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Flow id the current thread's spans belong to (0 = none yet).
    static FLOW: Cell<u64> = const { Cell::new(0) };
    /// Id of the innermost open recorded span (0 = none).
    static PARENT: Cell<u64> = const { Cell::new(0) };
}

pub(crate) fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// The coordinates a task carries across a thread hop: which flow it
/// belongs to and which span spawned it.
///
/// Obtained with [`current_context`] on the spawning thread and installed
/// with [`adopt_context`] on the worker. `Copy`, two words, and safe to
/// capture by value in `move` closures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskContext {
    /// Flow id (0 when the spawning thread had no recorded span open).
    pub flow: u64,
    /// Span id of the innermost open span on the spawning thread (0 when
    /// none).
    pub parent: u64,
}

impl TaskContext {
    /// The empty context: adopting it is a no-op beyond masking the
    /// worker's previous context.
    pub const NONE: TaskContext = TaskContext { flow: 0, parent: 0 };

    /// True when this context carries no linkage.
    pub fn is_none(&self) -> bool {
        self.flow == 0 && self.parent == 0
    }
}

/// Captures the calling thread's current flow and parent span id, for
/// handing to a worker thread. Returns [`TaskContext::NONE`] when nothing
/// is being recorded.
pub fn current_context() -> TaskContext {
    TaskContext {
        flow: FLOW.with(Cell::get),
        parent: PARENT.with(Cell::get),
    }
}

/// Installs `ctx` as the calling thread's flow/parent until the returned
/// guard drops (the previous context is restored). Workers call this first
/// thing so every span they open is stitched to the spawning task.
pub fn adopt_context(ctx: TaskContext) -> ContextGuard {
    ContextGuard {
        flow: FLOW.with(|f| f.replace(ctx.flow)),
        parent: PARENT.with(|p| p.replace(ctx.parent)),
    }
}

/// Restores the pre-[`adopt_context`] thread context on drop.
pub struct ContextGuard {
    flow: u64,
    parent: u64,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        FLOW.with(|f| f.set(self.flow));
        PARENT.with(|p| p.set(self.parent));
    }
}

/// Span-open bookkeeping for the recording path: allocates the span's id,
/// reads its inherited flow/parent, starts a new flow if there is none, and
/// installs the span as the thread's current parent. Returns
/// `(id, flow, parent, saved)` where `saved` must be passed back to
/// [`exit_span`] on close.
pub(crate) fn enter_span() -> (u64, u64, u64, (u64, u64)) {
    let id = next_id();
    let parent = PARENT.with(|p| p.replace(id));
    let prev_flow = FLOW.with(Cell::get);
    let flow = if prev_flow != 0 {
        prev_flow
    } else {
        let fresh = next_id();
        FLOW.with(|f| f.set(fresh));
        fresh
    };
    (id, flow, parent, (prev_flow, parent))
}

/// Restores the thread's flow/parent saved by [`enter_span`]. A root span
/// that started a fresh flow ends it here (its saved flow was 0), so
/// sibling roots on the same thread each get their own flow.
pub(crate) fn exit_span(saved: (u64, u64)) {
    let (flow, parent) = saved;
    FLOW.with(|f| f.set(flow));
    PARENT.with(|p| p.set(parent));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = next_id();
        let b = next_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn adopt_restores_previous_context() {
        let before = current_context();
        {
            let _g = adopt_context(TaskContext {
                flow: 77,
                parent: 99,
            });
            assert_eq!(
                current_context(),
                TaskContext {
                    flow: 77,
                    parent: 99
                }
            );
        }
        assert_eq!(current_context(), before);
    }

    #[test]
    fn enter_exit_nest_and_restore() {
        let base = current_context();
        let (id1, flow1, parent1, saved1) = enter_span();
        assert_eq!(parent1, base.parent);
        assert_ne!(flow1, 0);
        let (id2, flow2, parent2, saved2) = enter_span();
        assert_eq!(parent2, id1, "nested span's parent is the outer span");
        assert_eq!(flow2, flow1, "nested span inherits the flow");
        assert_ne!(id2, id1);
        exit_span(saved2);
        assert_eq!(current_context().parent, id1);
        exit_span(saved1);
        assert_eq!(current_context(), base);
    }

    #[test]
    fn workers_inherit_flow_across_threads() {
        let (_id, flow, _parent, saved) = enter_span();
        let ctx = current_context();
        assert_eq!(ctx.flow, flow);
        let seen = std::thread::scope(|s| {
            s.spawn(move || {
                let _g = adopt_context(ctx);
                let (_wid, wflow, wparent, wsaved) = enter_span();
                let out = (wflow, wparent);
                exit_span(wsaved);
                out
            })
            .join()
            .unwrap()
        });
        assert_eq!(seen.0, flow, "worker span joined the spawner's flow");
        assert_eq!(seen.1, ctx.parent, "worker span's parent crosses threads");
        exit_span(saved);
    }
}
