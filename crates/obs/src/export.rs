//! Post-hoc exporters for the flight recorder: Chrome trace-event JSON,
//! aggregated self-time profiles, and collapsed flamegraph stacks.
//!
//! All exporters are pure functions over a slice of captured
//! [`SpanRecord`]s, hand-rolled on `std` like the registry's JSON snapshot.
//! Export is *post-hoc* — the recorder accumulates in memory and the
//! exporters render at the end of the run — rather than streaming, so the
//! hot path never does I/O and a crash loses at most the trace, never the
//! run (see DESIGN.md).
//!
//! [`export_from_env`] is the one-call exit hook binaries use:
//!
//! - `MAPS_TRACE=out.json` — Chrome trace-event JSON (`chrome://tracing`,
//!   Perfetto `ui.perfetto.dev`)
//! - `MAPS_PROFILE=out.txt` — aligned self-time table; a path ending in
//!   `.folded` writes collapsed stacks for `flamegraph.pl` instead
//! - `MAPS_SERIES=dir/` — one CSV per registered series

use crate::metrics::JsonWriter;
use crate::recorder;
use crate::series::write_series_csv;
use crate::span::SpanRecord;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// Renders spans as Chrome trace-event JSON (complete `"X"` events with
/// `ts`/`dur` in microseconds, `tid` from the span's thread, and span
/// fields as `args`). The output opens directly in `chrome://tracing` and
/// Perfetto. Events are emitted in begin-time order.
///
/// Recorded spans carry their stitching coordinates as `args`
/// (`span_id`/`flow`/`parent`), and every parent→child edge that *crosses
/// threads* additionally emits a flow-event pair (`ph:"s"` on the parent's
/// thread, `ph:"f"` with `bp:"e"` on the child's), which Perfetto renders
/// as an arrow from the spawning span to the worker span. Same-thread
/// nesting needs no arrows — lane containment already shows it.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut order: Vec<&SpanRecord> = spans.iter().collect();
    order.sort_by(|a, b| a.begin.cmp(&b.begin).then(a.depth.cmp(&b.depth)));
    let by_id: HashMap<u64, &SpanRecord> = spans
        .iter()
        .filter(|s| s.id != 0)
        .map(|s| (s.id, s))
        .collect();
    let mut w = JsonWriter::new(false);
    w.open_obj();
    w.key("traceEvents");
    w.open_arr();
    for span in &order {
        w.elem();
        w.open_obj();
        w.key("name");
        w.string(&span.name);
        w.key("cat");
        w.string("maps");
        w.key("ph");
        w.string("X");
        w.key("ts");
        w.number(span.begin.as_secs_f64() * 1e6);
        w.key("dur");
        w.number(span.duration.as_secs_f64() * 1e6);
        w.key("pid");
        w.raw("1");
        w.key("tid");
        w.raw(&span.thread_id.to_string());
        if !span.fields.is_empty() || span.id != 0 {
            w.key("args");
            w.open_obj();
            if span.id != 0 {
                w.key("span_id");
                w.raw(&span.id.to_string());
                w.key("flow");
                w.raw(&span.flow.to_string());
                w.key("parent");
                w.raw(&span.parent.to_string());
            }
            for (k, v) in &span.fields {
                w.key(k);
                w.string(v);
            }
            w.close_obj();
        }
        w.close_obj();
    }
    // Cross-thread parent→child arrows. The flow-start timestamp is the
    // child's begin clamped into the parent's interval: Chrome requires the
    // "s" event to lie inside the span it binds to, and the child may have
    // started after the parent closed (recorded completion skew).
    for span in &order {
        let Some(parent) = by_id.get(&span.parent) else {
            continue;
        };
        if parent.thread_id == span.thread_id {
            continue;
        }
        let start = span.begin.clamp(parent.begin, parent.end());
        for (ph, ts, tid, binding) in [
            ("s", start, parent.thread_id, None),
            ("f", span.begin, span.thread_id, Some("e")),
        ] {
            w.elem();
            w.open_obj();
            w.key("name");
            w.string("spawn");
            w.key("cat");
            w.string("maps.flow");
            w.key("ph");
            w.string(ph);
            w.key("id");
            w.raw(&span.id.to_string());
            w.key("ts");
            w.number(ts.as_secs_f64() * 1e6);
            w.key("pid");
            w.raw("1");
            w.key("tid");
            w.raw(&tid.to_string());
            if let Some(bp) = binding {
                w.key("bp");
                w.string(bp);
            }
            w.close_obj();
        }
    }
    w.close_arr();
    w.key("displayTimeUnit");
    w.string("ms");
    w.key("otherData");
    w.open_obj();
    w.key("dropped_spans");
    w.raw(&recorder::dropped().to_string());
    w.close_obj();
    w.close_obj();
    w.finish()
}

/// Per-span-name aggregate of the profile: call count, total (inclusive)
/// time, self (exclusive) time, and exact p50/p99 of per-call durations.
#[derive(Clone, Debug)]
pub struct ProfileEntry {
    /// Span name.
    pub name: String,
    /// Number of completed spans with this name.
    pub count: u64,
    /// Sum of wall-clock durations (children included).
    pub total: Duration,
    /// Sum of durations minus time spent in recorded child spans.
    pub self_time: Duration,
    /// Median per-call duration (exact over captured calls).
    pub p50: Duration,
    /// 99th-percentile per-call duration (exact over captured calls).
    pub p99: Duration,
}

/// Self (exclusive) time of each span, parallel to `spans`.
///
/// Relies on two invariants the recorder guarantees: RAII spans complete
/// children-before-parents, and the capture preserves per-thread completion
/// order. Each span's self time is its duration minus the total duration of
/// its *recorded* direct children; if the ring evicted children, their time
/// re-attributes to the parent's self time (the trace metadata carries the
/// dropped count so this is visible).
fn self_times(spans: &[SpanRecord]) -> Vec<Duration> {
    // Per (thread, depth+1): durations of completed children awaiting
    // their parent.
    let mut pending: HashMap<(u64, usize), Duration> = HashMap::new();
    let mut out = Vec::with_capacity(spans.len());
    for span in spans {
        let children = pending
            .remove(&(span.thread_id, span.depth + 1))
            .unwrap_or(Duration::ZERO);
        out.push(span.duration.saturating_sub(children));
        *pending
            .entry((span.thread_id, span.depth))
            .or_insert(Duration::ZERO) += span.duration;
    }
    out
}

/// Aggregates spans into per-name [`ProfileEntry`]s, sorted by total time
/// descending.
pub fn profile(spans: &[SpanRecord]) -> Vec<ProfileEntry> {
    let selfs = self_times(spans);
    let mut by_name: HashMap<&str, (u64, Duration, Duration, Vec<Duration>)> = HashMap::new();
    for (span, self_time) in spans.iter().zip(&selfs) {
        let entry =
            by_name
                .entry(&span.name)
                .or_insert((0, Duration::ZERO, Duration::ZERO, Vec::new()));
        entry.0 += 1;
        entry.1 += span.duration;
        entry.2 += *self_time;
        entry.3.push(span.duration);
    }
    let mut entries: Vec<ProfileEntry> = by_name
        .into_iter()
        .map(|(name, (count, total, self_time, mut durations))| {
            durations.sort_unstable();
            let pick = |p: usize| durations[(durations.len() * p / 100).min(durations.len() - 1)];
            ProfileEntry {
                name: name.to_string(),
                count,
                total,
                self_time,
                p50: pick(50),
                p99: pick(99),
            }
        })
        .collect();
    entries.sort_by(|a, b| b.total.cmp(&a.total).then(a.name.cmp(&b.name)));
    entries
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Renders profile entries as an aligned text table (times in ms).
pub fn profile_table(entries: &[ProfileEntry]) -> String {
    let name_width = entries
        .iter()
        .map(|e| e.name.len())
        .chain(std::iter::once("span".len()))
        .max()
        .unwrap_or(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_width$}  {:>8}  {:>12}  {:>12}  {:>10}  {:>10}",
        "span", "calls", "total_ms", "self_ms", "p50_ms", "p99_ms"
    );
    for e in entries {
        let _ = writeln!(
            out,
            "{:<name_width$}  {:>8}  {:>12.3}  {:>12.3}  {:>10.3}  {:>10.3}",
            e.name,
            e.count,
            ms(e.total),
            ms(e.self_time),
            ms(e.p50),
            ms(e.p99)
        );
    }
    out
}

/// Renders spans as collapsed flamegraph stacks: one
/// `root;child;leaf <self-time-in-us>` line per distinct stack, ready for
/// `flamegraph.pl` / speedscope. Stacks are reconstructed per thread from
/// begin offsets and depths.
pub fn collapsed_stacks(spans: &[SpanRecord]) -> String {
    let selfs = self_times(spans);
    // Chronological open order per thread, parents before children.
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by(|&a, &b| {
        spans[a]
            .thread_id
            .cmp(&spans[b].thread_id)
            .then(spans[a].begin.cmp(&spans[b].begin))
            .then(spans[a].depth.cmp(&spans[b].depth))
    });
    let mut totals: HashMap<String, u128> = HashMap::new();
    let mut stack: Vec<usize> = Vec::new();
    let mut current_tid = None;
    for &i in &order {
        let span = &spans[i];
        if current_tid != Some(span.thread_id) {
            stack.clear();
            current_tid = Some(span.thread_id);
        }
        while stack
            .last()
            .is_some_and(|&top| spans[top].depth >= span.depth)
        {
            stack.pop();
        }
        let mut path = String::new();
        for &frame in stack.iter() {
            path.push_str(&spans[frame].name);
            path.push(';');
        }
        path.push_str(&span.name);
        *totals.entry(path).or_insert(0) += selfs[i].as_micros();
        stack.push(i);
    }
    let mut lines: Vec<(String, u128)> = totals.into_iter().collect();
    lines.sort();
    let mut out = String::new();
    for (path, us) in lines {
        let _ = writeln!(out, "{path} {us}");
    }
    out
}

/// Exports everything the environment asked for, from the current recorder
/// and series contents: `MAPS_TRACE` (Chrome trace JSON), `MAPS_PROFILE`
/// (self-time table, or collapsed stacks when the path ends in `.folded`),
/// and `MAPS_SERIES` (a directory of per-series CSVs). Returns the written
/// paths. Call at the end of a run — export is post-hoc by design.
///
/// # Errors
///
/// Returns the first I/O error encountered writing an export target.
pub fn export_from_env() -> std::io::Result<Vec<PathBuf>> {
    // Creating parent directories here, not erroring, is deliberate: this
    // runs at the END of a run, and a missing directory must not discard
    // an entire flight's telemetry.
    fn write_creating_dirs(path: &str, contents: String) -> std::io::Result<()> {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, contents)
    }
    let mut written = Vec::new();
    let var = |k: &str| std::env::var(k).ok().filter(|v| !v.is_empty());
    if let Some(path) = var("MAPS_TRACE") {
        let spans = recorder::snapshot();
        write_creating_dirs(&path, chrome_trace(&spans))?;
        written.push(PathBuf::from(path));
    }
    if let Some(path) = var("MAPS_PROFILE") {
        let spans = recorder::snapshot();
        let text = if path.ends_with(".folded") {
            collapsed_stacks(&spans)
        } else {
            profile_table(&profile(&spans))
        };
        write_creating_dirs(&path, text)?;
        written.push(PathBuf::from(path));
    }
    if let Some(dir) = var("MAPS_SERIES") {
        written.extend(write_series_csv(dir)?);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, depth: usize, thread_id: u64, begin_us: u64, dur_us: u64) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            fields: Vec::new(),
            depth,
            id: 0,
            flow: 0,
            parent: 0,
            begin: Duration::from_micros(begin_us),
            thread_id,
            duration: Duration::from_micros(dur_us),
        }
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        // Completion order: grandchild, child, child2, parent.
        let spans = vec![
            record("grandchild", 2, 1, 10, 20),
            record("child", 1, 1, 5, 40),
            record("child2", 1, 1, 50, 30),
            record("parent", 0, 1, 0, 100),
        ];
        let selfs = self_times(&spans);
        assert_eq!(selfs[0], Duration::from_micros(20));
        assert_eq!(selfs[1], Duration::from_micros(20)); // 40 - 20
        assert_eq!(selfs[2], Duration::from_micros(30));
        assert_eq!(selfs[3], Duration::from_micros(30)); // 100 - 40 - 30
    }

    #[test]
    fn profile_totals_and_percentiles() {
        let spans = vec![
            record("solve", 0, 1, 0, 10),
            record("solve", 0, 1, 20, 30),
            record("solve", 0, 1, 60, 20),
        ];
        let entries = profile(&spans);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].count, 3);
        assert_eq!(entries[0].total, Duration::from_micros(60));
        assert_eq!(entries[0].self_time, Duration::from_micros(60));
        assert_eq!(entries[0].p50, Duration::from_micros(20));
        assert_eq!(entries[0].p99, Duration::from_micros(30));
    }

    #[test]
    fn collapsed_stacks_join_with_semicolons() {
        let spans = vec![record("inner", 1, 1, 10, 20), record("outer", 0, 1, 0, 100)];
        let text = collapsed_stacks(&spans);
        assert!(text.contains("outer;inner 20\n"), "{text}");
        assert!(text.contains("outer 80\n"), "{text}");
    }

    #[test]
    fn chrome_trace_shape() {
        let mut span = record("solve", 0, 3, 5, 10);
        span.fields.push(("grid".into(), "64x64".into()));
        let json = chrome_trace(&[span]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":5"));
        assert!(json.contains("\"dur\":10"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"args\":{\"grid\":\"64x64\"}"));
    }

    #[test]
    fn chrome_trace_emits_cross_thread_flow_arrows() {
        let mut parent = record("spawn_batch", 0, 1, 0, 100);
        parent.id = 10;
        parent.flow = 5;
        let mut worker = record("worker_item", 0, 2, 20, 30);
        worker.id = 11;
        worker.flow = 5;
        worker.parent = 10;
        // A same-thread child must NOT produce arrows.
        let mut inline_child = record("inline", 1, 1, 40, 10);
        inline_child.id = 12;
        inline_child.flow = 5;
        inline_child.parent = 10;
        let json = chrome_trace(&[parent, worker, inline_child]);
        // Stitching coordinates ride on the X events.
        assert!(
            json.contains("\"span_id\":11,\"flow\":5,\"parent\":10"),
            "{json}"
        );
        // Exactly one s/f pair, bound to the cross-thread child's id.
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 1, "{json}");
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 1, "{json}");
        assert!(
            json.contains("\"ph\":\"s\",\"id\":11,\"ts\":20,\"pid\":1,\"tid\":1"),
            "{json}"
        );
        assert!(
            json.contains("\"ph\":\"f\",\"id\":11,\"ts\":20,\"pid\":1,\"tid\":2,\"bp\":\"e\""),
            "{json}"
        );
    }

    #[test]
    fn flow_start_clamps_into_parent_interval() {
        let mut parent = record("short_parent", 0, 1, 0, 10);
        parent.id = 20;
        parent.flow = 7;
        // Worker begins after the parent already closed.
        let mut late = record("late_worker", 0, 2, 50, 5);
        late.id = 21;
        late.flow = 7;
        late.parent = 20;
        let json = chrome_trace(&[parent, late]);
        // "s" lands at the parent's end (10µs), "f" at the child's begin.
        assert!(json.contains("\"ph\":\"s\",\"id\":21,\"ts\":10"), "{json}");
        assert!(json.contains("\"ph\":\"f\",\"id\":21,\"ts\":50"), "{json}");
    }
}
