//! Human-readable run reports: slowest spans, cache hit rates, and
//! convergence summaries.
//!
//! A [`RunReport`] is a plain data holder so it can be built two ways: from
//! the live process globals at the end of a run
//! ([`RunReport::from_globals`]), or from a finished run's exported
//! artifacts (the `run_report` example parses a registry snapshot JSON and
//! a series directory back into the same struct). [`RunReport::render`]
//! turns either into the same text report.

use std::fmt::Write as _;

/// Aggregate timing of one span name.
#[derive(Clone, Debug)]
pub struct SpanStat {
    /// Span name (without the `span.` / `.seconds` wrapping).
    pub name: String,
    /// Completed-call count.
    pub count: u64,
    /// Total seconds across calls.
    pub total_seconds: f64,
}

/// Summary of one convergence series.
#[derive(Clone, Debug)]
pub struct SeriesSummary {
    /// Series name.
    pub name: String,
    /// Number of recorded points.
    pub points: usize,
    /// Value at the first recorded step.
    pub first: f64,
    /// Value at the last recorded step.
    pub last: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
}

impl SeriesSummary {
    /// Builds a summary from raw points (`None` when empty).
    pub fn from_points(name: &str, points: &[(u64, f64)]) -> Option<Self> {
        let (first, last) = (points.first()?.1, points.last()?.1);
        Some(SeriesSummary {
            name: name.to_string(),
            points: points.len(),
            first,
            last,
            min: points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min),
            max: points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max),
        })
    }
}

/// Everything the report prints, decoupled from where it came from.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Per-span-name timing aggregates.
    pub spans: Vec<SpanStat>,
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Convergence series summaries.
    pub series: Vec<SeriesSummary>,
}

impl RunReport {
    /// Builds a report from the process-wide registry (the `span.*.seconds`
    /// histograms), counters, and series registry.
    pub fn from_globals() -> Self {
        let mut spans = Vec::new();
        for (name, snap) in crate::global().histograms() {
            if let Some(stripped) = name
                .strip_prefix("span.")
                .and_then(|n| n.strip_suffix(".seconds"))
            {
                spans.push(SpanStat {
                    name: stripped.to_string(),
                    count: snap.count,
                    total_seconds: snap.mean * snap.count as f64,
                });
            }
        }
        let series = crate::all_series()
            .iter()
            .filter_map(|s| SeriesSummary::from_points(s.name(), &s.points()))
            .collect();
        RunReport {
            spans,
            counters: crate::global().counters(),
            series,
        }
    }

    /// `X.hit`/`X.miss` counter pairs with at least one event, as
    /// `(prefix, hits, misses)`. A cache that only ever missed (or only
    /// ever hit) still shows up, with the absent side counted as zero.
    fn cache_pairs(&self) -> Vec<(String, u64, u64)> {
        let value = |name: String| self.counters.iter().find(|(n, _)| *n == name).map(|c| c.1);
        let mut prefixes: Vec<&str> = self
            .counters
            .iter()
            .filter_map(|(name, _)| {
                name.strip_suffix(".hit")
                    .or_else(|| name.strip_suffix(".miss"))
            })
            .collect();
        prefixes.sort_unstable();
        prefixes.dedup();
        prefixes
            .into_iter()
            .filter_map(|prefix| {
                let hits = value(format!("{prefix}.hit")).unwrap_or(0);
                let misses = value(format!("{prefix}.miss")).unwrap_or(0);
                (hits + misses > 0).then(|| (prefix.to_string(), hits, misses))
            })
            .collect()
    }

    /// Renders the report as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::from("== run report ==\n");

        let mut spans = self.spans.clone();
        spans.sort_by(|a, b| {
            b.total_seconds
                .total_cmp(&a.total_seconds)
                .then(a.name.cmp(&b.name))
        });
        out.push_str("\nslowest spans (by total time):\n");
        if spans.is_empty() {
            out.push_str("  (no spans recorded)\n");
        }
        for s in spans.iter().take(10) {
            let mean_ms = if s.count > 0 {
                s.total_seconds / s.count as f64 * 1e3
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<28} {:>8} calls  {:>10.3} s total  {:>10.3} ms/call",
                s.name, s.count, s.total_seconds, mean_ms
            );
        }

        let caches = self.cache_pairs();
        if !caches.is_empty() {
            out.push_str("\ncache hit rates:\n");
            for (name, hits, misses) in caches {
                let rate = hits as f64 / (hits + misses) as f64 * 100.0;
                let _ = writeln!(
                    out,
                    "  {name:<28} {rate:>6.1}%  ({hits} hits / {misses} misses)"
                );
            }
        }

        if !self.series.is_empty() {
            out.push_str("\nconvergence series:\n");
            for s in &self.series {
                let _ = writeln!(
                    out,
                    "  {:<28} {:>6} points  first {:>12.6}  last {:>12.6}  min {:>12.6}  max {:>12.6}",
                    s.name, s.points, s.first, s.last, s.min, s.max
                );
            }
        }

        let interesting = ["quarantined", "failures", "recoveries", "retries"];
        let flagged: Vec<&(String, u64)> = self
            .counters
            .iter()
            .filter(|(n, v)| *v > 0 && interesting.iter().any(|k| n.contains(k)))
            .collect();
        if !flagged.is_empty() {
            out.push_str("\nincidents:\n");
            for (name, v) in flagged {
                let _ = writeln!(out, "  {name:<28} {v}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_orders_spans_and_computes_hit_rate() {
        let report = RunReport {
            spans: vec![
                SpanStat {
                    name: "fast".into(),
                    count: 100,
                    total_seconds: 0.5,
                },
                SpanStat {
                    name: "slow".into(),
                    count: 2,
                    total_seconds: 3.0,
                },
            ],
            counters: vec![
                ("fdfd.factor_cache.hit".into(), 9),
                ("fdfd.factor_cache.miss".into(), 1),
                ("samples.quarantined".into(), 2),
            ],
            series: vec![SeriesSummary::from_points("obj", &[(0, 0.1), (1, 0.4)]).unwrap()],
        };
        let text = report.render();
        let slow_at = text.find("slow").unwrap();
        let fast_at = text.find("fast").unwrap();
        assert!(slow_at < fast_at, "slowest span first:\n{text}");
        assert!(text.contains("90.0%"), "{text}");
        assert!(text.contains("samples.quarantined"), "{text}");
        assert!(text.contains("obj"), "{text}");
    }

    #[test]
    fn series_summary_tracks_extremes() {
        let s = SeriesSummary::from_points("t", &[(0, 3.0), (1, -1.0), (2, 2.0)]).unwrap();
        assert_eq!((s.first, s.last, s.min, s.max), (3.0, 2.0, -1.0, 3.0));
        assert!(SeriesSummary::from_points("empty", &[]).is_none());
    }
}
