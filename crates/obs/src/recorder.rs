//! The flight recorder: a capacity-bounded, in-memory ring of completed
//! spans.
//!
//! Off by default, so production paths pay only one relaxed atomic load per
//! span. Recording turns on in two ways:
//!
//! - explicitly, via [`enable`] (tests do this, then [`take`] the captured
//!   [`SpanRecord`]s for assertions);
//! - implicitly, when any of the export knobs `MAPS_TRACE`, `MAPS_PROFILE`,
//!   `MAPS_SERIES`, or the telemetry-server knob `MAPS_OBS_ADDR` is set in
//!   the environment — a run that asked for an export (or a live `/trace`
//!   endpoint) needs the spans captured to have something to serve.
//!
//! The buffer is a drop-oldest ring bounded by `MAPS_RECORDER_CAP` spans
//! (default [`DEFAULT_CAPACITY`]; `0` means unbounded), so week-long
//! inverse-design runs keep the most recent window of activity at a fixed
//! memory ceiling instead of growing without limit. [`dropped`] reports how
//! many spans the ring has evicted since the last [`enable`]/[`take`] reset,
//! and the exporters surface that count so a truncated trace is never
//! mistaken for a complete one.

use crate::span::SpanRecord;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Ring capacity when `MAPS_RECORDER_CAP` is unset.
pub const DEFAULT_CAPACITY: usize = 65_536;

const STATE_UNSET: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);
static RECORDS: Mutex<VecDeque<SpanRecord>> = Mutex::new(VecDeque::new());
static DROPPED: AtomicU64 = AtomicU64::new(0);
/// Capacity override; `usize::MAX` means "not set, consult the env".
static CAPACITY: AtomicUsize = AtomicUsize::new(usize::MAX);

fn env_capacity() -> usize {
    crate::env::parse_env_or("MAPS_RECORDER_CAP", DEFAULT_CAPACITY)
}

/// The ring's span capacity (0 = unbounded). Reads `MAPS_RECORDER_CAP` on
/// first call unless [`set_capacity`] overrode it.
pub fn capacity() -> usize {
    let cap = CAPACITY.load(Ordering::Relaxed);
    if cap != usize::MAX {
        return cap;
    }
    let parsed = env_capacity();
    CAPACITY.store(parsed, Ordering::Relaxed);
    parsed
}

/// Overrides the ring capacity (wins over `MAPS_RECORDER_CAP`). Existing
/// excess records are evicted oldest-first on the next record, not eagerly.
pub fn set_capacity(cap: usize) {
    CAPACITY.store(cap, Ordering::Relaxed);
}

/// Starts capturing completed spans (clears any previous capture and the
/// dropped-span count).
pub fn enable() {
    RECORDS.lock().expect("span recorder").clear();
    DROPPED.store(0, Ordering::Relaxed);
    STATE.store(STATE_ON, Ordering::Release);
}

/// Stops capturing and discards anything captured so far.
pub fn disable() {
    STATE.store(STATE_OFF, Ordering::Release);
    RECORDS.lock().expect("span recorder").clear();
    DROPPED.store(0, Ordering::Relaxed);
}

/// True while the recorder is capturing. The first call decides the initial
/// state from the environment: recording starts enabled when any of
/// `MAPS_TRACE`, `MAPS_PROFILE`, `MAPS_SERIES`, or `MAPS_OBS_ADDR` is set
/// (a telemetry server whose `/trace` endpoint has nothing to serve would
/// be a confusing default).
pub fn is_enabled() -> bool {
    match STATE.load(Ordering::Acquire) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => {
            let on = ["MAPS_TRACE", "MAPS_PROFILE", "MAPS_SERIES", "MAPS_OBS_ADDR"]
                .iter()
                .any(|k| std::env::var_os(k).is_some());
            STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Release);
            on
        }
    }
}

/// Drains and returns the spans captured since [`enable`] (capture
/// continues; the dropped-span count resets with the drain).
pub fn take() -> Vec<SpanRecord> {
    DROPPED.store(0, Ordering::Relaxed);
    let mut guard = RECORDS.lock().expect("span recorder");
    guard.drain(..).collect()
}

/// Clones the captured spans without draining them (exporters use this so
/// the trace, profile, and report can all read the same capture).
pub fn snapshot() -> Vec<SpanRecord> {
    RECORDS
        .lock()
        .expect("span recorder")
        .iter()
        .cloned()
        .collect()
}

/// Spans evicted oldest-first since the last [`enable`]/[`take`] because
/// the ring was full.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

pub(crate) fn record_span(record: SpanRecord) {
    if !is_enabled() {
        return;
    }
    let cap = capacity();
    let mut guard = RECORDS.lock().expect("span recorder");
    if cap > 0 {
        while guard.len() >= cap {
            guard.pop_front();
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }
    guard.push_back(record);
}
