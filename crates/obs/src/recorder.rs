//! The flight recorder: a capacity-bounded, in-memory ring of completed
//! spans.
//!
//! Off by default, so production paths pay only one relaxed atomic load per
//! span. Recording turns on in two ways:
//!
//! - explicitly, via [`enable`] (tests do this, then [`take`] the captured
//!   [`SpanRecord`]s for assertions);
//! - implicitly, when any of the export knobs `MAPS_TRACE`, `MAPS_PROFILE`,
//!   `MAPS_SERIES`, or the telemetry-server knob `MAPS_OBS_ADDR` is set in
//!   the environment — a run that asked for an export (or a live `/trace`
//!   endpoint) needs the spans captured to have something to serve.
//!
//! The buffer is a drop-oldest ring bounded by `MAPS_RECORDER_CAP` spans
//! (default [`DEFAULT_CAPACITY`]; `0` means unbounded), so week-long
//! inverse-design runs keep the most recent window of activity at a fixed
//! memory ceiling instead of growing without limit. [`dropped`] reports how
//! many spans the ring has evicted since the last [`enable`]/[`take`] reset,
//! and the exporters surface that count so a truncated trace is never
//! mistaken for a complete one.
//!
//! # Tail-based sampling
//!
//! A server that traces every request fills the ring with thousands of
//! healthy, identical span trees and evicts the one slow outlier someone
//! actually wants to read. [`begin_flow`] / [`close_flow`] invert that:
//! while a flow id is *pending*, its spans are buffered on the side instead
//! of entering the ring, and only at request close — when latency and
//! status are known — does the caller decide `retain` (flush the whole tree
//! into the ring) or not (discard and count). Both the number of pending
//! flows ([`MAX_PENDING_FLOWS`]) and the spans buffered per flow
//! ([`MAX_SPANS_PER_FLOW`]) are hard-capped, so a leaked flow or a
//! span-happy request cannot grow recorder memory without bound. Code that
//! never calls [`begin_flow`] sees the pre-existing behavior: every span
//! goes straight to the ring.

use crate::span::SpanRecord;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Ring capacity when `MAPS_RECORDER_CAP` is unset.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Most flows that can be pending a retain/discard decision at once;
/// beyond this the oldest pending flow is evicted (discarded) wholesale.
pub const MAX_PENDING_FLOWS: usize = 1024;

/// Most spans buffered for one pending flow; beyond this the flow's oldest
/// spans are dropped (and counted) so one request cannot hog the recorder.
pub const MAX_SPANS_PER_FLOW: usize = 512;

const STATE_UNSET: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);
static RECORDS: Mutex<VecDeque<SpanRecord>> = Mutex::new(VecDeque::new());
static DROPPED: AtomicU64 = AtomicU64::new(0);
/// Capacity override; `usize::MAX` means "not set, consult the env".
static CAPACITY: AtomicUsize = AtomicUsize::new(usize::MAX);
/// Fast guard for the record path: number of flows currently pending a
/// tail-sampling decision. Zero (the overwhelmingly common case outside
/// a sampling server) keeps `record_span` on the original lock-once path.
static PENDING_FLOWS: AtomicUsize = AtomicUsize::new(0);
/// Pending flows in begin order (oldest first) with their buffered spans.
/// A Vec, not a map: the pending set is small (≤ MAX_PENDING_FLOWS) and
/// eviction wants insertion order anyway.
static PENDING: Mutex<Vec<(u64, Vec<SpanRecord>)>> = Mutex::new(Vec::new());

fn env_capacity() -> usize {
    crate::env::parse_env_or("MAPS_RECORDER_CAP", DEFAULT_CAPACITY)
}

/// The ring's span capacity (0 = unbounded). Reads `MAPS_RECORDER_CAP` on
/// first call unless [`set_capacity`] overrode it.
pub fn capacity() -> usize {
    let cap = CAPACITY.load(Ordering::Relaxed);
    if cap != usize::MAX {
        return cap;
    }
    let parsed = env_capacity();
    CAPACITY.store(parsed, Ordering::Relaxed);
    parsed
}

/// Overrides the ring capacity (wins over `MAPS_RECORDER_CAP`). Existing
/// excess records are evicted oldest-first on the next record, not eagerly.
pub fn set_capacity(cap: usize) {
    CAPACITY.store(cap, Ordering::Relaxed);
}

/// Starts capturing completed spans (clears any previous capture, pending
/// tail-sampling buffers, and the dropped-span count).
pub fn enable() {
    clear_pending();
    RECORDS.lock().expect("span recorder").clear();
    DROPPED.store(0, Ordering::Relaxed);
    STATE.store(STATE_ON, Ordering::Release);
}

/// Stops capturing and discards anything captured so far.
pub fn disable() {
    STATE.store(STATE_OFF, Ordering::Release);
    clear_pending();
    RECORDS.lock().expect("span recorder").clear();
    DROPPED.store(0, Ordering::Relaxed);
}

fn clear_pending() {
    let mut pending = PENDING.lock().expect("pending flows");
    pending.clear();
    PENDING_FLOWS.store(0, Ordering::Release);
}

/// True while the recorder is capturing. The first call decides the initial
/// state from the environment: recording starts enabled when any of
/// `MAPS_TRACE`, `MAPS_PROFILE`, `MAPS_SERIES`, or `MAPS_OBS_ADDR` is set
/// (a telemetry server whose `/trace` endpoint has nothing to serve would
/// be a confusing default).
pub fn is_enabled() -> bool {
    match STATE.load(Ordering::Acquire) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => {
            let on = ["MAPS_TRACE", "MAPS_PROFILE", "MAPS_SERIES", "MAPS_OBS_ADDR"]
                .iter()
                .any(|k| std::env::var_os(k).is_some());
            STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Release);
            on
        }
    }
}

/// Drains and returns the spans captured since [`enable`] (capture
/// continues; the dropped-span count resets with the drain).
pub fn take() -> Vec<SpanRecord> {
    DROPPED.store(0, Ordering::Relaxed);
    let mut guard = RECORDS.lock().expect("span recorder");
    guard.drain(..).collect()
}

/// Clones the captured spans without draining them (exporters use this so
/// the trace, profile, and report can all read the same capture).
pub fn snapshot() -> Vec<SpanRecord> {
    RECORDS
        .lock()
        .expect("span recorder")
        .iter()
        .cloned()
        .collect()
}

/// Spans evicted oldest-first since the last [`enable`]/[`take`] because
/// the ring was full.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

pub(crate) fn record_span(record: SpanRecord) {
    if !is_enabled() {
        return;
    }
    // Tail sampling: spans belonging to a pending flow are parked until
    // close_flow decides their fate. The atomic guard keeps the common
    // no-pending-flows case at one relaxed load.
    if PENDING_FLOWS.load(Ordering::Acquire) > 0 && record.flow != 0 {
        let mut pending = PENDING.lock().expect("pending flows");
        if let Some((_, spans)) = pending.iter_mut().find(|(f, _)| *f == record.flow) {
            if spans.len() >= MAX_SPANS_PER_FLOW {
                spans.remove(0);
                DROPPED.fetch_add(1, Ordering::Relaxed);
            }
            spans.push(record);
            return;
        }
    }
    let mut guard = RECORDS.lock().expect("span recorder");
    push_to_ring(&mut guard, record);
}

fn push_to_ring(ring: &mut VecDeque<SpanRecord>, record: SpanRecord) {
    let cap = capacity();
    if cap > 0 {
        while ring.len() >= cap {
            ring.pop_front();
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }
    ring.push_back(record);
}

/// Marks `flow` pending: until [`close_flow`], spans carrying this flow id
/// are buffered on the side instead of entering the ring. A no-op for flow
/// 0 (the "no flow" sentinel every untracked span carries) and when the
/// recorder is off. At [`MAX_PENDING_FLOWS`] the oldest pending flow is
/// evicted — its buffered spans are discarded and counted as dropped.
pub fn begin_flow(flow: u64) {
    if flow == 0 || !is_enabled() {
        return;
    }
    let mut pending = PENDING.lock().expect("pending flows");
    if pending.iter().any(|(f, _)| *f == flow) {
        return;
    }
    while pending.len() >= MAX_PENDING_FLOWS {
        let (_, spans) = pending.remove(0);
        DROPPED.fetch_add(spans.len() as u64, Ordering::Relaxed);
    }
    pending.push((flow, Vec::new()));
    PENDING_FLOWS.store(pending.len(), Ordering::Release);
}

/// Resolves a pending flow: `retain` flushes its buffered span tree into
/// the ring (oldest-first, subject to ring capacity); otherwise the spans
/// are discarded and counted as dropped. Returns how many spans the flow
/// had buffered. Unknown flows return 0 (e.g. the flow was evicted, or
/// [`begin_flow`] was skipped because the recorder was off).
pub fn close_flow(flow: u64, retain: bool) -> usize {
    if flow == 0 {
        return 0;
    }
    let spans = {
        let mut pending = PENDING.lock().expect("pending flows");
        let Some(pos) = pending.iter().position(|(f, _)| *f == flow) else {
            return 0;
        };
        let (_, spans) = pending.remove(pos);
        PENDING_FLOWS.store(pending.len(), Ordering::Release);
        spans
    };
    let n = spans.len();
    if retain {
        let mut guard = RECORDS.lock().expect("span recorder");
        for record in spans {
            push_to_ring(&mut guard, record);
        }
    } else {
        DROPPED.fetch_add(n as u64, Ordering::Relaxed);
    }
    n
}

/// Spans currently buffered across all pending flows (recorder occupancy
/// introspection; tests use this to assert tail sampling stays bounded).
pub fn pending_spans() -> usize {
    PENDING
        .lock()
        .expect("pending flows")
        .iter()
        .map(|(_, spans)| spans.len())
        .sum()
}

/// Flows currently awaiting a [`close_flow`] decision.
pub fn pending_flows() -> usize {
    PENDING_FLOWS.load(Ordering::Acquire)
}
