//! In-memory span recorder for tests.
//!
//! Disabled by default so production paths pay only a relaxed atomic load
//! per span. Tests call [`enable`], run instrumented code, then [`take`] the
//! captured [`SpanRecord`]s for assertions.

use crate::span::SpanRecord;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

/// Starts capturing completed spans (clears any previous capture).
pub fn enable() {
    RECORDS.lock().expect("span recorder").clear();
    ENABLED.store(true, Ordering::Release);
}

/// Stops capturing and discards anything captured so far.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
    RECORDS.lock().expect("span recorder").clear();
}

/// True while the recorder is capturing.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Drains and returns the spans captured since [`enable`] (capture
/// continues).
pub fn take() -> Vec<SpanRecord> {
    std::mem::take(&mut *RECORDS.lock().expect("span recorder"))
}

pub(crate) fn record_span(record: SpanRecord) {
    if is_enabled() {
        RECORDS.lock().expect("span recorder").push(record);
    }
}
