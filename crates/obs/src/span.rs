//! RAII tracing spans with per-thread nesting, monotonic begin offsets,
//! stable thread ids, and cross-thread flow stitching.
//!
//! Every span is timed against a process-wide epoch (the first instant the
//! tracing machinery is touched), so completed spans carry a `begin` offset
//! and a `duration` that together place them on a global timeline — exactly
//! what the Chrome-trace exporter in [`crate::export`] needs. Thread ids are
//! small integers handed out in first-use order, stable for the life of each
//! thread.
//!
//! On the recording path every span additionally carries a process-unique
//! `id`, the `parent` span id that was current when it opened (possibly on
//! a different thread — see [`crate::context`]), and the `flow` id of the
//! logical task tree it belongs to, so multi-threaded runs export as one
//! stitched flow instead of disconnected per-thread lanes.
//!
//! ## Disabled fast path
//!
//! When neither the flight [`recorder`] nor `MAPS_LOG=debug` nor the stall
//! [`watchdog`](crate::watchdog) is active, a span skips the nesting-depth
//! bookkeeping, id allocation, field storage, and record construction
//! entirely; the only residual work is the two clock reads and one
//! histogram record (`span.<name>.seconds`) that keep the metrics registry
//! authoritative. Names are `Cow<'static, str>`, so the ubiquitous
//! string-literal call sites never allocate for the name itself.

use crate::context;
use crate::level::{emit, enabled, Level};
use crate::recorder;
use crate::watchdog;
use std::borrow::Cow;
use std::cell::Cell;
use std::fmt::Display;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// Stable small-integer id of the calling thread (assigned on first use,
/// constant for the thread's lifetime). Used as the `tid` of exported trace
/// events.
pub fn current_thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

/// The process trace epoch: the instant the tracing machinery was first
/// touched. All [`SpanRecord::begin`] offsets are relative to this.
pub fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Opens a span named `name` on the current thread.
///
/// The returned guard measures wall-clock time until it is dropped. On drop
/// the duration is recorded into the global registry (histogram
/// `span.<name>.seconds`); when the flight [`recorder`] is enabled a
/// [`SpanRecord`] with begin offset, thread id, and flow/parent linkage is
/// appended to it, and — at `MAPS_LOG=debug` — entry/exit lines with
/// timings and fields are printed to stderr, indented by nesting depth.
/// While the stall [`watchdog`](crate::watchdog) is running, the span is
/// also registered in the open-span table it samples.
pub fn span(name: impl Into<Cow<'static, str>>) -> Span {
    let name = name.into();
    // The fast path: with the recorder, debug logging, and watchdog all off
    // the span is only a timer feeding the metrics registry, so skip the
    // per-thread depth/flow bookkeeping and the entry line. `active` is
    // latched at open so a recorder toggled mid-span cannot observe a
    // half-initialized record.
    let tracked = watchdog::is_tracking();
    let active = recorder::is_enabled() || enabled(Level::Debug) || tracked;
    let (depth, id, flow, parent, saved) = if active {
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        if enabled(Level::Debug) {
            emit(
                Level::Debug,
                &format!("{:indent$}-> {name}", "", indent = 2 * depth),
            );
        }
        let (id, flow, parent, saved) = context::enter_span();
        (depth, id, flow, parent, saved)
    } else {
        (0, 0, 0, 0, (0, 0))
    };
    // Touch the epoch before reading the start clock so `start >= epoch`
    // always holds and begin offsets never saturate to zero artificially.
    epoch();
    let start = Instant::now();
    if tracked {
        watchdog::open_span(id, &name, current_thread_id(), start);
    }
    Span {
        name,
        fields: Vec::new(),
        depth,
        id,
        flow,
        parent,
        saved,
        active,
        tracked,
        start,
    }
}

/// Guard created by [`span`]; timing stops when it drops.
pub struct Span {
    name: Cow<'static, str>,
    fields: Vec<(String, String)>,
    depth: usize,
    /// Process-unique span id (0 on the disabled fast path).
    id: u64,
    /// Flow id inherited from (or started for) the enclosing task.
    flow: u64,
    /// Id of the span that was current when this one opened.
    parent: u64,
    /// Thread-context state to restore on close.
    saved: (u64, u64),
    /// Latched at open: whether the recorder, debug logging, or watchdog
    /// wants the full record (fields, depth bookkeeping, exit line).
    active: bool,
    /// Latched at open: whether the watchdog's open-span table holds this
    /// span (paired so a watchdog started mid-span never sees a remove
    /// without an insert).
    tracked: bool,
    start: Instant,
}

impl Span {
    /// Attaches a `key=value` annotation (builder form).
    pub fn field(mut self, key: &str, value: impl Display) -> Self {
        self.add_field(key, value);
        self
    }

    /// Attaches a `key=value` annotation after creation. A no-op on the
    /// disabled fast path (nothing will read the fields), so hot call sites
    /// pay no formatting or allocation when observability is off.
    pub fn add_field(&mut self, key: &str, value: impl Display) {
        if self.active {
            self.fields.push((key.to_string(), value.to_string()));
        }
    }

    /// Time elapsed since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The span's process-unique id (0 on the disabled fast path).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The flow id this span belongs to (0 on the disabled fast path).
    pub fn flow(&self) -> u64 {
        self.flow
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let duration = self.start.elapsed();
        crate::global()
            .histogram(&format!("span.{}.seconds", self.name))
            .record(duration.as_secs_f64());
        if self.tracked {
            watchdog::close_span(self.id);
        }
        if !self.active {
            return;
        }
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        context::exit_span(self.saved);
        let record = SpanRecord {
            name: std::mem::take(&mut self.name).into_owned(),
            fields: std::mem::take(&mut self.fields),
            depth: self.depth,
            id: self.id,
            flow: self.flow,
            parent: self.parent,
            begin: self.start.saturating_duration_since(epoch()),
            thread_id: current_thread_id(),
            duration,
        };
        if enabled(Level::Debug) {
            emit(Level::Debug, &format_exit(&record));
        }
        recorder::record_span(record);
    }
}

/// One completed span, as captured by the flight [`recorder`].
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Span name.
    pub name: String,
    /// `key=value` annotations in attachment order.
    pub fields: Vec<(String, String)>,
    /// Nesting depth at open time (0 = top level on its thread).
    pub depth: usize,
    /// Process-unique span id.
    pub id: u64,
    /// Flow id of the logical task tree the span belongs to. Spans reached
    /// from one entry point — across every worker thread — share a flow.
    pub flow: u64,
    /// Id of the span that was current when this one opened; 0 for flow
    /// roots. The parent may live on a different thread.
    pub parent: u64,
    /// Monotonic offset of the span's open relative to the process
    /// [`epoch`].
    pub begin: Duration,
    /// Stable id of the thread the span ran on (see
    /// [`current_thread_id`]).
    pub thread_id: u64,
    /// Wall-clock duration.
    pub duration: Duration,
}

impl SpanRecord {
    /// Looks up a field value by key.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Monotonic offset of the span's close relative to the process
    /// [`epoch`].
    pub fn end(&self) -> Duration {
        self.begin + self.duration
    }
}

/// Debug-log formatting of the exit line (split out so `Drop` stays small).
pub(crate) fn format_exit(record: &SpanRecord) -> String {
    let mut line = String::new();
    let _ = write!(
        line,
        "{:indent$}<- {} {:.3?}",
        "",
        record.name,
        record.duration,
        indent = 2 * record.depth
    );
    for (k, v) in &record.fields {
        let _ = write!(line, " {k}={v}");
    }
    line
}
