//! RAII tracing spans with per-thread nesting.

use crate::level::{emit, enabled, Level};
use crate::recorder;
use std::cell::Cell;
use std::fmt::Display;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Opens a span named `name` on the current thread.
///
/// The returned guard measures wall-clock time until it is dropped. On drop
/// the duration is recorded into the global registry (histogram
/// `span.<name>.seconds`), appended to the in-memory [`recorder`] when that
/// is enabled, and — at `MAPS_LOG=debug` — an exit line with the timing and
/// any fields is printed to stderr, indented by nesting depth.
pub fn span(name: impl Into<String>) -> Span {
    let name = name.into();
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    if enabled(Level::Debug) {
        emit(
            Level::Debug,
            &format!("{:indent$}-> {name}", "", indent = 2 * depth),
        );
    }
    Span {
        name,
        fields: Vec::new(),
        depth,
        start: Instant::now(),
    }
}

/// Guard created by [`span`]; timing stops when it drops.
pub struct Span {
    name: String,
    fields: Vec<(String, String)>,
    depth: usize,
    start: Instant,
}

impl Span {
    /// Attaches a `key=value` annotation (builder form).
    pub fn field(mut self, key: &str, value: impl Display) -> Self {
        self.add_field(key, value);
        self
    }

    /// Attaches a `key=value` annotation after creation.
    pub fn add_field(&mut self, key: &str, value: impl Display) {
        self.fields.push((key.to_string(), value.to_string()));
    }

    /// Time elapsed since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let duration = self.start.elapsed();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        crate::global()
            .histogram(&format!("span.{}.seconds", self.name))
            .record(duration.as_secs_f64());
        let record = SpanRecord {
            name: std::mem::take(&mut self.name),
            fields: std::mem::take(&mut self.fields),
            depth: self.depth,
            duration,
        };
        if enabled(Level::Debug) {
            emit(Level::Debug, &format_exit(&record));
        }
        recorder::record_span(record);
    }
}

/// One completed span, as captured by the in-memory [`recorder`].
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Span name.
    pub name: String,
    /// `key=value` annotations in attachment order.
    pub fields: Vec<(String, String)>,
    /// Nesting depth at open time (0 = top level on its thread).
    pub depth: usize,
    /// Wall-clock duration.
    pub duration: Duration,
}

impl SpanRecord {
    /// Looks up a field value by key.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Debug-log formatting of the exit line (split out so `Drop` stays small).
pub(crate) fn format_exit(record: &SpanRecord) -> String {
    let mut line = String::new();
    let _ = write!(
        line,
        "{:indent$}<- {} {:.3?}",
        "",
        record.name,
        record.duration,
        indent = 2 * record.depth
    );
    for (k, v) in &record.fields {
        let _ = write!(line, " {k}={v}");
    }
    line
}
