//! Hardened environment-knob parsing.
//!
//! Every `MAPS_*` knob used to be parsed ad hoc with a silent
//! `unwrap_or(default)`, so a typo (`MAPS_RECORDER_CAP=64k`) was
//! indistinguishable from the knob being unset. [`parse_env_or`] centralizes
//! the pattern: unset (or empty) quietly yields the default, while a value
//! that *fails to parse* emits one `MAPS_LOG`-gated error line — once per
//! variable per process, so a knob read on a hot path cannot spam stderr —
//! and then falls back to the default.

use crate::level::{emit, enabled, Level};
use std::collections::BTreeSet;
use std::str::FromStr;
use std::sync::Mutex;

/// Variables that already warned about an invalid value this process.
static WARNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// Emits the invalid-knob warning for `key` at most once per process.
///
/// Public so knobs with bespoke grammars (e.g. `MAPS_FACTOR_CACHE`'s
/// `off`/`false` aliases, `MAPS_OBS_ADDR`'s socket-address syntax) can share
/// the warn-once discipline without routing through [`parse_env_or`].
pub fn warn_invalid_env(key: &'static str, value: &str, expected: &str) {
    let mut warned = WARNED.lock().expect("env warn set");
    if !warned.insert(key) {
        return;
    }
    if enabled(Level::Error) {
        emit(
            Level::Error,
            &format!("ignoring invalid {key}={value:?} (expected {expected}); using default"),
        );
    }
}

/// Resets the warn-once bookkeeping (test isolation).
#[doc(hidden)]
pub fn reset_env_warnings() {
    WARNED.lock().expect("env warn set").clear();
}

/// Parses the environment variable `key` as a `T`, falling back to
/// `default` when the variable is unset, empty, or invalid. Invalid values
/// warn once via the `MAPS_LOG` error sink; unset/empty values are silent
/// (absence is the documented way to ask for the default).
pub fn parse_env_or<T>(key: &'static str, default: T) -> T
where
    T: FromStr,
{
    match std::env::var(key) {
        Ok(raw) => {
            let trimmed = raw.trim();
            if trimmed.is_empty() {
                return default;
            }
            match trimmed.parse::<T>() {
                Ok(v) => v,
                Err(_) => {
                    warn_invalid_env(key, trimmed, std::any::type_name::<T>());
                    default
                }
            }
        }
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test uses a unique variable name: the process environment and the
    // warn-once set are global, and unit tests run in parallel.

    #[test]
    fn unset_yields_default_silently() {
        assert_eq!(parse_env_or("MAPS_TEST_ENV_UNSET", 7usize), 7);
    }

    #[test]
    fn valid_value_parses() {
        std::env::set_var("MAPS_TEST_ENV_VALID", "  42 ");
        assert_eq!(parse_env_or("MAPS_TEST_ENV_VALID", 7usize), 42);
        std::env::remove_var("MAPS_TEST_ENV_VALID");
    }

    #[test]
    fn empty_value_yields_default() {
        std::env::set_var("MAPS_TEST_ENV_EMPTY", "   ");
        assert_eq!(parse_env_or("MAPS_TEST_ENV_EMPTY", 3u64), 3);
        std::env::remove_var("MAPS_TEST_ENV_EMPTY");
    }

    #[test]
    fn invalid_value_falls_back_and_warns_once() {
        std::env::set_var("MAPS_TEST_ENV_BAD", "64k");
        // Parsing twice must not warn twice (the set records the key); the
        // fallback value is returned both times.
        assert_eq!(parse_env_or("MAPS_TEST_ENV_BAD", 11usize), 11);
        assert_eq!(parse_env_or("MAPS_TEST_ENV_BAD", 11usize), 11);
        assert!(WARNED.lock().unwrap().contains("MAPS_TEST_ENV_BAD"));
        std::env::remove_var("MAPS_TEST_ENV_BAD");
    }
}
