//! First-class convergence time-series.
//!
//! Metrics gauges only keep the *last* value of a quantity; a convergence
//! study needs the whole trajectory. A [`Series`] is an append-only list of
//! `(step, value)` points addressable by name through a process-wide
//! registry:
//!
//! ```
//! maps_obs::series("invdes.objective").push(0, 0.12);
//! maps_obs::series("invdes.objective").push(1, 0.19);
//! assert_eq!(maps_obs::series("invdes.objective").len(), 2);
//! # maps_obs::series_reset();
//! ```
//!
//! Hot loops push one point per iteration/epoch/solve, which is cheap
//! enough to leave on unconditionally; per-*inner*-iteration trajectories
//! (e.g. BiCGSTAB residuals) are gated on the flight recorder being
//! enabled. Export is post-hoc: [`Series::to_csv`] / [`Series::to_jsonl`]
//! render one series, and [`write_series_csv`] dumps every registered
//! series into a directory (the `MAPS_SERIES` knob routes through it).
//!
//! Values are formatted with Rust's shortest-roundtrip float formatter, so
//! a CSV parses back to bit-identical `f64`s and two identical seeded runs
//! produce byte-identical files.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

struct SeriesInner {
    name: String,
    points: Mutex<Vec<(u64, f64)>>,
}

/// An append-only `(step, value)` trajectory. Cheap to clone; clones share
/// state.
#[derive(Clone)]
pub struct Series(Arc<SeriesInner>);

impl Series {
    /// The series' registered name.
    pub fn name(&self) -> &str {
        &self.0.name
    }

    /// Appends one point. Steps are recorded as given — pushes are not
    /// deduplicated or sorted, so callers control row order.
    pub fn push(&self, step: u64, value: f64) {
        self.0
            .points
            .lock()
            .expect("series points")
            .push((step, value));
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.0.points.lock().expect("series points").len()
    }

    /// True when no points have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the recorded points, in push order.
    pub fn points(&self) -> Vec<(u64, f64)> {
        self.0.points.lock().expect("series points").clone()
    }

    /// Renders the series as CSV with a `step,value` header. Values use the
    /// shortest representation that parses back to the same `f64`, so the
    /// file round-trips exactly and is byte-stable across identical runs.
    pub fn to_csv(&self) -> String {
        let points = self.points();
        let mut out = String::with_capacity(16 + points.len() * 24);
        out.push_str("step,value\n");
        for (step, value) in &points {
            let _ = writeln!(out, "{step},{}", FloatToken(*value));
        }
        out
    }

    /// Renders the series as JSON Lines, one
    /// `{"series":...,"step":...,"value":...}` object per point (NaN and
    /// infinities become `null`, keeping every line parseable).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (step, value) in self.points() {
            let _ = write!(
                out,
                "{{\"series\":\"{}\",\"step\":{step},\"value\":",
                self.0.name
            );
            if value.is_finite() {
                let _ = write!(out, "{value}");
            } else {
                out.push_str("null");
            }
            out.push_str("}\n");
        }
        out
    }
}

/// CSV cell formatting for `f64`: finite values print shortest-roundtrip;
/// NaN/±inf print as literals `f64::from_str` accepts, so the round-trip
/// guarantee holds for every representable value.
struct FloatToken(f64);

impl std::fmt::Display for FloatToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_nan() {
            f.write_str("NaN")
        } else if self.0 == f64::INFINITY {
            f.write_str("inf")
        } else if self.0 == f64::NEG_INFINITY {
            f.write_str("-inf")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

fn registry() -> &'static Mutex<BTreeMap<String, Arc<SeriesInner>>> {
    static SERIES: OnceLock<Mutex<BTreeMap<String, Arc<SeriesInner>>>> = OnceLock::new();
    SERIES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Get-or-create the series `name` in the process-wide series registry.
pub fn series(name: &str) -> Series {
    let mut map = registry().lock().expect("series registry");
    Series(Arc::clone(map.entry(name.to_string()).or_insert_with(
        || {
            Arc::new(SeriesInner {
                name: name.to_string(),
                points: Mutex::new(Vec::new()),
            })
        },
    )))
}

/// Looks up the series `name` without creating it (the telemetry server's
/// `/series/<name>` endpoint uses this so scrapes of unknown names 404
/// instead of polluting the registry with empty series).
pub fn series_get(name: &str) -> Option<Series> {
    registry()
        .lock()
        .expect("series registry")
        .get(name)
        .map(|inner| Series(Arc::clone(inner)))
}

/// Every registered series, in name order.
pub fn all_series() -> Vec<Series> {
    registry()
        .lock()
        .expect("series registry")
        .values()
        .map(|inner| Series(Arc::clone(inner)))
        .collect()
}

/// Drops every registered series (test isolation; outstanding handles keep
/// working but detach from the registry).
pub fn series_reset() {
    registry().lock().expect("series registry").clear();
}

/// File-system-safe name for a series CSV: anything outside
/// `[A-Za-z0-9._-]` becomes `_`.
fn file_stem(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes every non-empty registered series to `dir/<name>.csv`, creating
/// the directory as needed. Returns the written paths in name order.
///
/// # Errors
///
/// Returns the first I/O error encountered creating the directory or
/// writing a file.
pub fn write_series_csv(dir: impl AsRef<Path>) -> std::io::Result<Vec<PathBuf>> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for s in all_series() {
        if s.is_empty() {
            continue;
        }
        let path = dir.join(format!("{}.csv", file_stem(s.name())));
        std::fs::write(&path, s.to_csv())?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    // The "excessive precision" literal is the point: its shortest
    // round-trip representation needs all those digits.
    #[allow(clippy::excessive_precision)]
    fn csv_roundtrips_exotic_floats() {
        let s = Series(Arc::new(SeriesInner {
            name: "t".into(),
            points: Mutex::new(Vec::new()),
        }));
        let values = [
            0.1,
            -3.25,
            1e-300,
            f64::MIN_POSITIVE,
            12345.678900000001,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        for (i, v) in values.iter().enumerate() {
            s.push(i as u64, *v);
        }
        let csv = s.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("step,value"));
        for (i, line) in lines.enumerate() {
            let (step, value) = line.split_once(',').expect("two columns");
            assert_eq!(step.parse::<u64>().unwrap(), i as u64);
            let parsed: f64 = value.parse().unwrap();
            assert_eq!(parsed.to_bits(), values[i].to_bits(), "row {i}: {line}");
        }
    }

    #[test]
    fn file_stem_sanitizes() {
        assert_eq!(file_stem("invdes.objective"), "invdes.objective");
        assert_eq!(file_stem("a/b c:d"), "a_b_c_d");
    }
}
