//! The live telemetry server: a std-only HTTP/1.1 scrape surface.
//!
//! Everything else in this crate renders observability *post hoc*; this
//! module makes the same state reachable while the process runs, which is
//! what a long-lived solve service needs to be scraped, health-checked,
//! and debugged in place. One listener thread ([`serve`], or
//! [`serve_from_env`] via `MAPS_OBS_ADDR=host:port`) answers:
//!
//! | Endpoint          | Body                                                |
//! |-------------------|-----------------------------------------------------|
//! | `/metrics`        | Prometheus text exposition of the global registry   |
//! | `/snapshot`       | The JSON registry snapshot                          |
//! | `/series/<name>`  | One convergence series as CSV (404 if unknown)      |
//! | `/trace?last=N`   | Chrome trace JSON of the most recent `N` ring spans |
//! | `/healthz`        | `200 ok` while the process is alive                 |
//! | `/readyz`         | `200 ready`, or `503` + stalled spans when wedged   |
//!
//! `/trace` reads the flight-recorder ring with [`recorder::snapshot`] —
//! a clone, never a drain — so a mid-run scrape cannot eat the trace the
//! process will export at exit.
//!
//! The server is deliberately minimal: GET only, one connection at a time,
//! short read/write timeouts, no keep-alive. A scrape every few seconds is
//! the design load; anything heavier belongs behind a real daemon
//! (ROADMAP item 2), which will mount these same renderers. Zero cost when
//! not enabled: no thread, no socket, and no change to the span fast path.
//!
//! Shutdown ([`TelemetryServer::stop`] or drop) flips a flag and
//! self-connects to unblock `accept`, then joins the thread — no platform
//! socket tricks required.

use crate::env::warn_invalid_env;
use crate::recorder;
use crate::series::series_get;
use crate::watchdog;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-connection socket timeout: a stalled scraper must not wedge the
/// listener thread (there is exactly one).
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Maximum bytes of request head we will buffer before answering 431.
const MAX_HEAD: usize = 8 * 1024;

/// Handle to a running telemetry server; the listener stops (and its
/// thread joins) on [`TelemetryServer::stop`] or drop.
pub struct TelemetryServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// The bound address — with port 0 requested, this carries the
    /// ephemeral port the OS picked.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // `accept` has no timeout; a throwaway connection wakes it so it
        // can observe the flag. Errors are fine — the thread may already
        // be past the accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:9102"`, or port `0` for an ephemeral
/// port) and serves the telemetry endpoints from a background thread until
/// the returned handle stops or drops.
///
/// # Errors
///
/// Returns the bind error (address in use, permission, unparseable
/// address) — the caller decides whether that is fatal.
pub fn serve(addr: &str) -> std::io::Result<TelemetryServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let handle = std::thread::Builder::new()
        .name("maps-obs-http".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if flag.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // One connection at a time, bounded by the socket
                // timeouts: a scrape plane, not a web server.
                let _ = handle_connection(stream);
            }
        })
        .expect("spawn telemetry server thread");
    crate::info!("telemetry server listening on {addr}");
    Ok(TelemetryServer {
        addr,
        shutdown,
        handle: Some(handle),
    })
}

/// Starts the telemetry server when `MAPS_OBS_ADDR` is set. An address
/// that fails to bind (or parse) warns once through the `MAPS_LOG` error
/// sink and yields `None` — an observability knob must never take down
/// the run it observes.
pub fn serve_from_env() -> Option<TelemetryServer> {
    let raw = std::env::var("MAPS_OBS_ADDR").ok()?;
    let addr = raw.trim();
    if addr.is_empty() {
        return None;
    }
    match serve(addr) {
        Ok(server) => Some(server),
        Err(err) => {
            warn_invalid_env(
                "MAPS_OBS_ADDR",
                addr,
                "a bindable host:port, e.g. 127.0.0.1:9102",
            );
            crate::error!("telemetry server bind failed: {err}");
            None
        }
    }
}

fn handle_connection(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    // Read until the end of the request head; the body (GET has none we
    // care about) is ignored.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_HEAD {
            return respond(&mut stream, 431, "text/plain", "request head too large\n");
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "only GET is supported\n");
    }
    crate::counter("obs.http.requests").inc();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/metrics" => respond(
            &mut stream,
            200,
            "text/plain; version=0.0.4",
            &crate::global().prometheus_text(),
        ),
        "/snapshot" => respond(
            &mut stream,
            200,
            "application/json",
            &crate::global().to_json(),
        ),
        "/healthz" => respond(&mut stream, 200, "text/plain", "ok\n"),
        "/readyz" => {
            if watchdog::is_ready() {
                respond(&mut stream, 200, "text/plain", "ready\n")
            } else {
                let mut body = String::from("not ready: stalled spans\n");
                for s in watchdog::stalled_spans() {
                    body.push_str("  ");
                    body.push_str(&s);
                    body.push('\n');
                }
                respond(&mut stream, 503, "text/plain", &body)
            }
        }
        "/trace" => {
            let mut spans = recorder::snapshot();
            if let Some(last) = query
                .split('&')
                .find_map(|kv| kv.strip_prefix("last="))
                .and_then(|v| v.parse::<usize>().ok())
            {
                if spans.len() > last {
                    spans.drain(..spans.len() - last);
                }
            }
            respond(
                &mut stream,
                200,
                "application/json",
                &crate::chrome_trace(&spans),
            )
        }
        _ => {
            if let Some(name) = path.strip_prefix("/series/") {
                match series_get(name) {
                    Some(series) => respond(&mut stream, 200, "text/csv", &series.to_csv()),
                    None => respond(
                        &mut stream,
                        404,
                        "text/plain",
                        &format!("no series named {name:?}\n"),
                    ),
                }
            } else {
                respond(&mut stream, 404, "text/plain", "unknown endpoint\n")
            }
        }
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal test-side HTTP client (std-only like everything else).
    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("write request");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_all_endpoints_on_ephemeral_port() {
        let server = serve("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.addr();
        crate::counter("obs.http.test.hits").add(3);
        crate::series("obs.http.test.series").push(1, 0.5);

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("obs_http_test_hits_total 3"), "{body}");

        let (status, body) = get(addr, "/snapshot");
        assert_eq!(status, 200);
        assert!(body.contains("\"obs.http.test.hits\":3"), "{body}");

        let (status, body) = get(addr, "/series/obs.http.test.series");
        assert_eq!(status, 200);
        assert!(body.starts_with("step,value\n"), "{body}");

        let (status, _) = get(addr, "/series/no.such.series");
        assert_eq!(status, 404);

        let (status, body) = get(addr, "/trace?last=5");
        assert_eq!(status, 200);
        assert!(body.starts_with("{\"traceEvents\":["), "{body}");

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");

        let (status, _) = get(addr, "/readyz");
        assert_eq!(status, 200);

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        server.stop();
    }

    #[test]
    fn post_is_rejected() {
        let server = serve("127.0.0.1:0").expect("bind ephemeral");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
    }

    #[test]
    fn stop_joins_and_frees_the_port() {
        let server = serve("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.addr();
        server.stop();
        // The listener is gone; a rebind of the same port succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port still held after stop");
    }
}
