//! The live telemetry server: a std-only HTTP/1.1 scrape surface.
//!
//! Everything else in this crate renders observability *post hoc*; this
//! module makes the same state reachable while the process runs, which is
//! what a long-lived solve service needs to be scraped, health-checked,
//! and debugged in place. One listener thread ([`serve`], or
//! [`serve_from_env`] via `MAPS_OBS_ADDR=host:port`) answers:
//!
//! | Endpoint          | Body                                                |
//! |-------------------|-----------------------------------------------------|
//! | `/metrics`        | Prometheus text exposition of the global registry   |
//! | `/snapshot`       | The JSON registry snapshot                          |
//! | `/series/<name>`  | One convergence series as CSV (404 if unknown)      |
//! | `/trace?last=N`   | Chrome trace JSON of the most recent `N` ring spans |
//! | `/requests?last=N`| The most recent `N` wide events as a JSON array     |
//! | `/healthz`        | `200 ok` while the process is alive                 |
//! | `/readyz`         | `200 ready`, or `503` + stalled spans when wedged   |
//!
//! `/trace` reads the flight-recorder ring with [`recorder::snapshot`] —
//! a clone, never a drain — so a mid-run scrape cannot eat the trace the
//! process will export at exit.
//!
//! The server is deliberately minimal: GET only, one connection at a time,
//! short read/write timeouts, no keep-alive. A scrape every few seconds is
//! the design load. The *machinery* is shared, though: [`read_request`]
//! (with `Content-Length` body framing), [`write_response`], and the
//! [`telemetry_response`] / [`readiness_response`] renderers are public so
//! the `mapsd` solve daemon mounts the same routes behind its own accept
//! loop instead of reimplementing the dialect. Zero cost when not enabled:
//! no thread, no socket, and no change to the span fast path.
//!
//! Shutdown ([`TelemetryServer::stop`] or drop) flips a flag and
//! self-connects to unblock `accept`, then joins the thread — no platform
//! socket tricks required.

use crate::env::warn_invalid_env;
use crate::recorder;
use crate::series::series_get;
use crate::watchdog;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-connection socket timeout: a stalled scraper must not wedge the
/// listener thread (there is exactly one).
pub const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Maximum bytes of request head we will buffer before answering 431.
const MAX_HEAD: usize = 8 * 1024;

/// One parsed HTTP/1.1 request, as read by [`read_request`].
///
/// This is the shared substrate between the telemetry scrape plane here
/// and the `mapsd` solve daemon: both speak the same minimal HTTP dialect
/// (no keep-alive, no chunked encoding, `Content-Length`-framed bodies).
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), upper-case as received.
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Raw query string (empty when absent), without the leading `?`.
    pub query: String,
    /// Request body, exactly `Content-Length` bytes (empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of `key` in the query string, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|kv| {
            let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
            (k == key).then_some(v)
        })
    }

    /// The body decoded as UTF-8 (lossy — protocol bodies are JSON/ASCII).
    pub fn body_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }
}

/// Reads and parses one HTTP request from `stream`, enforcing the head cap
/// and `max_body` byte cap on `Content-Length` bodies.
///
/// On a malformed or oversized request this writes the appropriate error
/// response (400 / 413 / 431) itself and returns `Ok(None)`; the caller
/// should simply drop the connection. Socket timeouts are applied here, so
/// callers need no per-stream setup.
///
/// # Errors
///
/// Propagates socket I/O failures (including read timeouts).
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> std::io::Result<Option<Request>> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut bytes = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    let head_end = loop {
        if let Some(pos) = bytes.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if bytes.len() > MAX_HEAD {
            write_response(stream, 431, "text/plain", "request head too large\n")?;
            return Ok(None);
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                if bytes.is_empty() {
                    return Ok(None); // peer connected and said nothing
                }
                write_response(stream, 400, "text/plain", "truncated request head\n")?;
                return Ok(None);
            }
            Ok(n) => bytes.extend_from_slice(&buf[..n]),
            Err(e) => return Err(e),
        }
    };
    let head = String::from_utf8_lossy(&bytes[..head_end]).into_owned();
    let mut lines = head.lines();
    let mut parts = lines.next().unwrap_or("").split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method.is_empty() || target.is_empty() {
        write_response(stream, 400, "text/plain", "malformed request line\n")?;
        return Ok(None);
    }
    let content_length = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > max_body {
        write_response(stream, 413, "text/plain", "request body too large\n")?;
        return Ok(None);
    }
    let mut body = bytes[head_end..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut buf) {
            Ok(0) => {
                write_response(stream, 400, "text/plain", "truncated request body\n")?;
                return Ok(None);
            }
            Ok(n) => body.extend_from_slice(&buf[..n]),
            Err(e) => return Err(e),
        }
    }
    body.truncate(content_length);
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        query: query.to_string(),
        body,
    }))
}

/// Handle to a running telemetry server; the listener stops (and its
/// thread joins) on [`TelemetryServer::stop`] or drop.
pub struct TelemetryServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// The bound address — with port 0 requested, this carries the
    /// ephemeral port the OS picked.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // `accept` has no timeout; a throwaway connection wakes it so it
        // can observe the flag. Errors are fine — the thread may already
        // be past the accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:9102"`, or port `0` for an ephemeral
/// port) and serves the telemetry endpoints from a background thread until
/// the returned handle stops or drops.
///
/// # Errors
///
/// Returns the bind error (address in use, permission, unparseable
/// address) — the caller decides whether that is fatal.
pub fn serve(addr: &str) -> std::io::Result<TelemetryServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let handle = std::thread::Builder::new()
        .name("maps-obs-http".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if flag.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // One connection at a time, bounded by the socket
                // timeouts: a scrape plane, not a web server.
                let _ = handle_connection(stream);
            }
        })
        .expect("spawn telemetry server thread");
    crate::info!("telemetry server listening on {addr}");
    Ok(TelemetryServer {
        addr,
        shutdown,
        handle: Some(handle),
    })
}

/// Starts the telemetry server when `MAPS_OBS_ADDR` is set. An address
/// that fails to bind (or parse) warns once through the `MAPS_LOG` error
/// sink and yields `None` — an observability knob must never take down
/// the run it observes.
pub fn serve_from_env() -> Option<TelemetryServer> {
    let raw = std::env::var("MAPS_OBS_ADDR").ok()?;
    let addr = raw.trim();
    if addr.is_empty() {
        return None;
    }
    match serve(addr) {
        Ok(server) => Some(server),
        Err(err) => {
            warn_invalid_env(
                "MAPS_OBS_ADDR",
                addr,
                "a bindable host:port, e.g. 127.0.0.1:9102",
            );
            crate::error!("telemetry server bind failed: {err}");
            None
        }
    }
}

fn handle_connection(mut stream: TcpStream) -> std::io::Result<()> {
    let Some(req) = read_request(&mut stream, 0)? else {
        return Ok(());
    };
    if req.method != "GET" {
        return write_response(&mut stream, 405, "text/plain", "only GET is supported\n");
    }
    crate::counter("obs.http.requests").inc();
    match telemetry_response(&req) {
        Some((status, content_type, body)) => {
            write_response(&mut stream, status, content_type, &body)
        }
        None => write_response(&mut stream, 404, "text/plain", "unknown endpoint\n"),
    }
}

/// Renders the shared telemetry endpoints for a parsed request, returning
/// `None` when the path is not a telemetry endpoint (so an embedding server
/// like `mapsd` can mount these routes *after* its own).
///
/// Handles `/metrics`, `/snapshot`, `/healthz`, `/readyz` (watchdog-backed),
/// `/trace?last=N`, `/requests?last=N` (canonical wide events), and
/// `/series/<name>`.
pub fn telemetry_response(req: &Request) -> Option<(u16, &'static str, String)> {
    match req.path.as_str() {
        "/metrics" => Some((
            200,
            "text/plain; version=0.0.4",
            crate::global().prometheus_text(),
        )),
        "/snapshot" => Some((200, "application/json", crate::global().to_json())),
        "/healthz" => Some((200, "text/plain", "ok\n".to_string())),
        "/readyz" => Some(readiness_response(&[])),
        "/trace" => {
            let mut spans = recorder::snapshot();
            if let Some(last) = req
                .query_param("last")
                .and_then(|v| v.parse::<usize>().ok())
            {
                if spans.len() > last {
                    spans.drain(..spans.len() - last);
                }
            }
            Some((200, "application/json", crate::chrome_trace(&spans)))
        }
        "/requests" => {
            let last = req
                .query_param("last")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(100);
            Some((200, "application/json", crate::reqlog::recent_json(last)))
        }
        path => {
            let name = path.strip_prefix("/series/")?;
            Some(match series_get(name) {
                Some(series) => (200, "text/csv", series.to_csv()),
                None => (404, "text/plain", format!("no series named {name:?}\n")),
            })
        }
    }
}

/// The watchdog-backed `/readyz` body, with caller-supplied extra failure
/// reasons (e.g. `mapsd` passes "queue saturated" while shedding).
///
/// Ready (200) only when the watchdog sees no stalled spans *and* no extra
/// reasons are given; otherwise 503 with one reason per line.
pub fn readiness_response(extra_reasons: &[String]) -> (u16, &'static str, String) {
    let stalled = watchdog::stalled_spans();
    if stalled.is_empty() && extra_reasons.is_empty() {
        return (200, "text/plain", "ready\n".to_string());
    }
    let mut body = String::from("not ready:\n");
    for s in &stalled {
        body.push_str("  stalled span: ");
        body.push_str(s);
        body.push('\n');
    }
    for r in extra_reasons {
        body.push_str("  ");
        body.push_str(r);
        body.push('\n');
    }
    (503, "text/plain", body)
}

/// Writes a complete `Connection: close` HTTP/1.1 response.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal test-side HTTP client (std-only like everything else).
    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("write request");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_all_endpoints_on_ephemeral_port() {
        let server = serve("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.addr();
        crate::counter("obs.http.test.hits").add(3);
        crate::series("obs.http.test.series").push(1, 0.5);

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("obs_http_test_hits_total 3"), "{body}");

        let (status, body) = get(addr, "/snapshot");
        assert_eq!(status, 200);
        assert!(body.contains("\"obs.http.test.hits\":3"), "{body}");

        let (status, body) = get(addr, "/series/obs.http.test.series");
        assert_eq!(status, 200);
        assert!(body.starts_with("step,value\n"), "{body}");

        let (status, _) = get(addr, "/series/no.such.series");
        assert_eq!(status, 404);

        let (status, body) = get(addr, "/trace?last=5");
        assert_eq!(status, 200);
        assert!(body.starts_with("{\"traceEvents\":["), "{body}");

        // The ring is shared test-global state, so assert shape, not count.
        let (status, body) = get(addr, "/requests?last=3");
        assert_eq!(status, 200);
        let trimmed = body.trim_end();
        assert!(trimmed.starts_with('[') && trimmed.ends_with(']'), "{body}");

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");

        let (status, _) = get(addr, "/readyz");
        assert_eq!(status, 200);

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        server.stop();
    }

    #[test]
    fn post_is_rejected() {
        let server = serve("127.0.0.1:0").expect("bind ephemeral");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
    }

    #[test]
    fn read_request_parses_a_post_with_body() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            write!(
                s,
                "POST /solve?trace=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world"
            )
            .expect("write");
            s.flush().expect("flush");
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            out
        });
        let (mut stream, _) = listener.accept().expect("accept");
        let req = read_request(&mut stream, 1024)
            .expect("io")
            .expect("parsed request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/solve");
        assert_eq!(req.query_param("trace"), Some("1"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.body_str(), "hello world");
        write_response(&mut stream, 200, "text/plain", "done\n").expect("respond");
        drop(stream); // EOF so the client's read_to_string returns
        let raw = client.join().expect("client");
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
        assert!(raw.ends_with("done\n"), "{raw}");
    }

    #[test]
    fn oversized_body_is_rejected_with_413() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            write!(
                s,
                "POST /solve HTTP/1.1\r\nHost: x\r\nContent-Length: 999\r\n\r\n"
            )
            .expect("write");
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            out
        });
        let (mut stream, _) = listener.accept().expect("accept");
        let parsed = read_request(&mut stream, 100).expect("io");
        assert!(parsed.is_none(), "oversized body must not parse");
        drop(stream);
        let raw = client.join().expect("client");
        assert!(raw.starts_with("HTTP/1.1 413"), "{raw}");
    }

    #[test]
    fn stop_joins_and_frees_the_port() {
        let server = serve("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.addr();
        server.stop();
        // The listener is gone; a rebind of the same port succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port still held after stop");
    }
}
