//! `MAPS_LOG`-controlled stderr logging.
//!
//! The level is parsed from the environment once and cached in an atomic, so
//! the per-call cost on instrumented hot paths is a single relaxed load.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Verbosity of the stderr sink, ordered `Off < Error < Info < Debug`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// No output at all (the default when `MAPS_LOG` is unset).
    Off = 0,
    /// Failures only.
    Error = 1,
    /// Coarse progress (per-epoch, per-design-iteration).
    Info = 2,
    /// Span entry/exit with timings.
    Debug = 3,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Info => "info",
            Level::Debug => "debug",
        })
    }
}

const UNSET: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(UNSET);

fn decode(v: u8) -> Level {
    match v {
        1 => Level::Error,
        2 => Level::Info,
        3 => Level::Debug,
        _ => Level::Off,
    }
}

fn parse_env() -> Level {
    match std::env::var("MAPS_LOG").as_deref() {
        Ok("error") => Level::Error,
        Ok("info") => Level::Info,
        Ok("debug") => Level::Debug,
        // "off", unset, non-UTF-8, or anything unrecognized: stay silent.
        _ => Level::Off,
    }
}

/// The active log level (reads `MAPS_LOG` on first call, cached afterwards).
pub fn level() -> Level {
    let raw = LEVEL.load(Ordering::Relaxed);
    if raw != UNSET {
        return decode(raw);
    }
    let parsed = parse_env();
    LEVEL.store(parsed as u8, Ordering::Relaxed);
    parsed
}

/// Overrides the log level programmatically (wins over `MAPS_LOG`).
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// True when messages at `l` should be emitted.
pub fn enabled(l: Level) -> bool {
    l != Level::Off && level() >= l
}

/// Writes one line to stderr. Callers must check [`enabled`] first — the
/// [`error!`]/[`info!`]/[`debug!`] macros do this so that disabled levels
/// never format their arguments.
pub fn emit(l: Level, msg: &str) {
    eprintln!("[maps:{l}] {msg}");
}

/// Logs at [`Level::Error`]; arguments are not formatted when disabled.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Error) {
            $crate::emit($crate::Level::Error, &format!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`]; arguments are not formatted when disabled.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Info) {
            $crate::emit($crate::Level::Info, &format!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`]; arguments are not formatted when disabled.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Debug) {
            $crate::emit($crate::Level::Debug, &format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_verbosity() {
        assert!(Level::Off < Level::Error);
        assert!(Level::Error < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn set_level_controls_enabled() {
        // Tests share the process-global level; exercise transitions in one
        // place and restore Off at the end.
        set_level(Level::Info);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Off);
        assert!(!enabled(Level::Error));
        // `Off` messages are never "enabled", regardless of level.
        set_level(Level::Debug);
        assert!(!enabled(Level::Off));
        set_level(Level::Off);
    }
}
