//! # maps-obs — zero-dependency observability for the MAPS stack
//!
//! Tracing spans, a metrics registry, and convergence telemetry built
//! entirely on `std`, so every crate in the workspace — down to
//! `maps-linalg` at the bottom of the dependency graph — can be instrumented
//! without pulling in external crates or creating dependency cycles.
//!
//! Three pieces:
//!
//! - **Spans** ([`span`]): RAII wall-clock timers over [`std::time::Instant`].
//!   Nesting is tracked per thread; when `MAPS_LOG=debug`, entry/exit lines
//!   are printed to stderr with indentation matching the nesting depth. Every
//!   completed span also records its duration into the global registry
//!   (histogram `span.<name>.seconds`) and, when enabled, the in-memory
//!   [`recorder`] used by tests.
//! - **Metrics** ([`Registry`]): named [`Counter`]s, [`Gauge`]s, and
//!   log-bucketed [`Histogram`]s with p50/p90/p99 estimation. A process-wide
//!   registry is available via [`global`], and [`Registry::to_json`]
//!   serializes a snapshot with a hand-rolled writer (no serde).
//! - **Logging** ([`Level`], [`error!`], [`info!`], [`debug!`]): an
//!   env-controlled stderr sink. `MAPS_LOG=off|error|info|debug` selects the
//!   level; unset means off, and the level check happens before any
//!   formatting, so instrumented hot paths do no I/O and no allocation for
//!   log calls when observability is off.
//!
//! On top of those, the *flight recorder* adds post-hoc run forensics:
//!
//! - **Recorder** ([`recorder`]): a capacity-bounded drop-oldest ring of
//!   completed [`SpanRecord`]s (knob: `MAPS_RECORDER_CAP`), each stamped
//!   with a begin offset from the process [`epoch`] and a stable
//!   [`current_thread_id`]. Auto-enables when an export knob is set.
//! - **Exporters** ([`chrome_trace`], [`profile`], [`collapsed_stacks`],
//!   [`export_from_env`]): Chrome trace-event JSON for
//!   `chrome://tracing`/Perfetto (`MAPS_TRACE=out.json`), and aggregated
//!   self-time profiles as an aligned table or flamegraph collapsed stacks
//!   (`MAPS_PROFILE=out.txt|out.folded`).
//! - **Series** ([`series`], [`write_series_csv`]): append-only
//!   `(step, value)` convergence trajectories with byte-stable CSV/JSONL
//!   export (`MAPS_SERIES=dir/`).
//! - **Reports** ([`RunReport`]): slowest spans, cache hit rates, and
//!   convergence summaries rendered as text at the end of a run.
//!
//! And the *live telemetry plane* makes a running process observable without
//! waiting for exit:
//!
//! - **Telemetry server** ([`http`], [`serve`], `MAPS_OBS_ADDR`): a std-only
//!   HTTP/1.1 scrape surface — `/metrics` (Prometheus text exposition),
//!   `/snapshot` (JSON), `/series/<name>` (CSV), `/trace?last=N` (Chrome
//!   trace of the recent ring without draining it), `/healthz`, `/readyz`.
//! - **Trace stitching** ([`TaskContext`], [`current_context`],
//!   [`adopt_context`]): flow and parent-span ids that survive thread hops,
//!   propagated automatically by the vendored rayon stand-in, so parallel
//!   runs export as one coherent flow.
//! - **Stall watchdog** ([`watchdog`], `MAPS_WATCHDOG_MS`): a sampling
//!   thread that flags slow and stalled open spans by deadline class,
//!   detects counter flatlines, and drives `/readyz`.
//! - **Wide events** ([`reqlog`], [`WideEvent`]): one canonical JSON record
//!   per served request in a bounded drop-oldest ring (`GET
//!   /requests?last=N`), optionally mirrored to a JSONL access log
//!   (`MAPS_ACCESS_LOG`) through a non-blocking writer. Paired with
//!   tail-based trace sampling ([`recorder::begin_flow`] /
//!   [`recorder::close_flow`]) and histogram [`Exemplar`]s that link
//!   `/metrics` latency spikes back to retained trace ids.
//!
//! ```
//! let _guard = maps_obs::span("solve").field("grid", 64);
//! maps_obs::counter("solver.calls").inc();
//! maps_obs::histogram("solver.residual").record(1.3e-9);
//! let snapshot = maps_obs::global().to_json();
//! assert!(snapshot.contains("solver.calls"));
//! ```

mod context;
mod env;
mod export;
pub mod http;
mod level;
mod metrics;
pub mod recorder;
mod report;
pub mod reqlog;
mod series;
mod span;
pub mod watchdog;

pub use context::{adopt_context, current_context, ContextGuard, TaskContext};
pub use env::{parse_env_or, reset_env_warnings, warn_invalid_env};
pub use export::{
    chrome_trace, collapsed_stacks, export_from_env, profile, profile_table, ProfileEntry,
};
pub use http::{
    read_request, readiness_response, serve, serve_from_env, telemetry_response, write_response,
    Request, TelemetryServer,
};
pub use level::{emit, enabled, level, set_level, Level};
pub use metrics::{Counter, Exemplar, Gauge, Histogram, HistogramSnapshot, Registry};
pub use report::{RunReport, SeriesSummary, SpanStat};
pub use reqlog::{flush_access_log, WideEvent};
pub use series::{all_series, series, series_get, series_reset, write_series_csv, Series};
pub use span::{current_thread_id, epoch, span, Span, SpanRecord};

use std::sync::OnceLock;

/// The process-wide metrics registry.
///
/// All module-level conveniences ([`counter`], [`gauge`], [`histogram`],
/// [`span`]) operate on this registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Get-or-create a counter in the [`global`] registry.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Get-or-create a gauge in the [`global`] registry.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// Get-or-create a histogram in the [`global`] registry.
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}
