//! Canonical wide events: one structured JSON record per served request.
//!
//! A *wide event* is the per-request counterpart of a metric: instead of
//! incrementing twelve counters that can never be joined back together, the
//! serving path emits exactly **one** JSON object carrying everything known
//! about the request — id, client, endpoint, coalescing outcome, fidelity,
//! disposition, and the full timing breakdown. The event is the unit of
//! forensics: "why was request X slow" is answered by reading its event,
//! not by correlating dashboards.
//!
//! Events land in two places:
//!
//! - an in-memory **drop-oldest ring** (capacity `MAPS_REQUEST_LOG_CAP`,
//!   default [`DEFAULT_CAPACITY`]) served live at `GET /requests?last=N`;
//! - optionally, an append-only JSONL **access log** (`MAPS_ACCESS_LOG=
//!   path`). The write is decoupled from the serving path by a bounded
//!   queue and a dedicated writer thread: when the queue is full the event
//!   is *dropped and counted* (`obs.access_log.dropped`), never allowed to
//!   stall a worker on disk I/O. [`flush_access_log`] lets a process drain
//!   the queue before exit.
//!
//! Rendering happens once, at record time, under no lock: the ring and the
//! writer both carry the final JSON line, so a concurrent `GET /requests`
//! can never observe a half-built event (no tearing).

use crate::metrics::JsonWriter;
use std::collections::VecDeque;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Ring capacity when `MAPS_REQUEST_LOG_CAP` is unset.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Bounded handoff between serving threads and the access-log writer.
const WRITER_QUEUE: usize = 1024;

/// One typed field value of a [`WideEvent`].
#[derive(Clone, Debug)]
enum Field {
    Str(String),
    U64(u64),
    F64(f64),
    Bool(bool),
    Null,
}

/// Builder for one wide event: ordered `key → typed value` pairs rendered
/// as a single-line JSON object.
///
/// ```
/// let mut ev = maps_obs::reqlog::WideEvent::new();
/// ev.set_str("endpoint", "/solve");
/// ev.set_u64("status", 200);
/// ev.set_f64("total_us", 1250.0);
/// assert!(ev.to_json().contains("\"endpoint\":\"/solve\""));
/// ```
#[derive(Clone, Debug, Default)]
pub struct WideEvent {
    pairs: Vec<(String, Field)>,
}

impl WideEvent {
    /// An empty event.
    pub fn new() -> Self {
        WideEvent::default()
    }

    fn set(&mut self, key: &str, value: Field) {
        match self.pairs.iter_mut().find(|(k, _)| k == key) {
            Some(entry) => entry.1 = value,
            None => self.pairs.push((key.to_string(), value)),
        }
    }

    /// Sets a string field (last write per key wins).
    pub fn set_str(&mut self, key: &str, value: impl Into<String>) {
        self.set(key, Field::Str(value.into()));
    }

    /// Sets an unsigned integer field.
    pub fn set_u64(&mut self, key: &str, value: u64) {
        self.set(key, Field::U64(value));
    }

    /// Sets a float field (non-finite values render as `null`).
    pub fn set_f64(&mut self, key: &str, value: f64) {
        self.set(key, Field::F64(value));
    }

    /// Sets a boolean field.
    pub fn set_bool(&mut self, key: &str, value: bool) {
        self.set(key, Field::Bool(value));
    }

    /// Sets an explicit `null` field (the key is present but unknown).
    pub fn set_null(&mut self, key: &str) {
        self.set(key, Field::Null);
    }

    /// Renders the event as one compact JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new(false);
        w.open_obj();
        for (key, value) in &self.pairs {
            w.key(key);
            match value {
                Field::Str(s) => w.string(s),
                Field::U64(v) => w.raw(&v.to_string()),
                Field::F64(v) => w.number(*v),
                Field::Bool(b) => w.raw(if *b { "true" } else { "false" }),
                Field::Null => w.raw("null"),
            }
        }
        w.close_obj();
        w.finish()
    }
}

/// Seconds since the Unix epoch as an `f64` (wall-clock event timestamp).
pub fn unix_seconds() -> f64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

static RING: Mutex<VecDeque<String>> = Mutex::new(VecDeque::new());
/// `usize::MAX` means "not decided yet, consult the env".
static CAPACITY: AtomicUsize = AtomicUsize::new(usize::MAX);
static TOTAL: AtomicU64 = AtomicU64::new(0);
static RING_DROPPED: AtomicU64 = AtomicU64::new(0);

/// The ring's event capacity (0 = unbounded). Reads `MAPS_REQUEST_LOG_CAP`
/// on first call unless [`set_capacity`] overrode it.
pub fn capacity() -> usize {
    let cap = CAPACITY.load(Ordering::Relaxed);
    if cap != usize::MAX {
        return cap;
    }
    let parsed = crate::env::parse_env_or("MAPS_REQUEST_LOG_CAP", DEFAULT_CAPACITY);
    CAPACITY.store(parsed, Ordering::Relaxed);
    parsed
}

/// Overrides the ring capacity (wins over `MAPS_REQUEST_LOG_CAP`).
pub fn set_capacity(cap: usize) {
    CAPACITY.store(cap, Ordering::Relaxed);
}

/// Records one wide event: renders it, appends to the ring (evicting
/// oldest at capacity), and forwards the line to the access-log writer
/// when `MAPS_ACCESS_LOG` is configured.
pub fn record(event: &WideEvent) {
    let line = event.to_json();
    TOTAL.fetch_add(1, Ordering::Relaxed);
    let cap = capacity();
    {
        let mut ring = RING.lock().expect("wide-event ring");
        if cap > 0 {
            while ring.len() >= cap {
                ring.pop_front();
                RING_DROPPED.fetch_add(1, Ordering::Relaxed);
            }
        }
        ring.push_back(line.clone());
    }
    if let Some(sink) = access_log() {
        sink.submit(line);
    }
}

/// The most recent `n` event lines, oldest first.
pub fn recent(n: usize) -> Vec<String> {
    let ring = RING.lock().expect("wide-event ring");
    let skip = ring.len().saturating_sub(n);
    ring.iter().skip(skip).cloned().collect()
}

/// The most recent `n` events rendered as one JSON array (what
/// `GET /requests?last=N` serves).
pub fn recent_json(n: usize) -> String {
    let events = recent(n);
    let mut out = String::with_capacity(events.iter().map(String::len).sum::<usize>() + 16);
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(e);
    }
    out.push(']');
    out
}

/// Events recorded since process start (the reconciliation counter:
/// one per admission, including sheds).
pub fn total() -> u64 {
    TOTAL.load(Ordering::Relaxed)
}

/// Events the ring evicted oldest-first because it was full.
pub fn ring_dropped() -> u64 {
    RING_DROPPED.load(Ordering::Relaxed)
}

/// Events currently held in the ring.
pub fn ring_len() -> usize {
    RING.lock().expect("wide-event ring").len()
}

/// Clears the ring and the reconciliation counters (test isolation; the
/// access-log sink is unaffected).
#[doc(hidden)]
pub fn reset() {
    RING.lock().expect("wide-event ring").clear();
    TOTAL.store(0, Ordering::Relaxed);
    RING_DROPPED.store(0, Ordering::Relaxed);
}

// --- non-blocking access-log writer ----------------------------------------

struct AccessLog {
    tx: SyncSender<String>,
    submitted: AtomicU64,
    written: Arc<AtomicU64>,
}

impl AccessLog {
    fn submit(&self, line: String) {
        match self.tx.try_send(line) {
            Ok(()) => {
                self.submitted.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                // Drop, never block: the log is an observer of the serving
                // path, not a participant in it.
                crate::counter("obs.access_log.dropped").inc();
            }
        }
    }
}

static SINK: OnceLock<Option<AccessLog>> = OnceLock::new();

fn start_writer(path: &str) -> Option<AccessLog> {
    let file = match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        Ok(f) => f,
        Err(e) => {
            crate::warn_invalid_env("MAPS_ACCESS_LOG", path, "a writable file path");
            crate::error!("access log open failed: {e}");
            return None;
        }
    };
    let (tx, rx) = sync_channel::<String>(WRITER_QUEUE);
    let written = Arc::new(AtomicU64::new(0));
    let written_in_thread = Arc::clone(&written);
    let spawned = std::thread::Builder::new()
        .name("maps-access-log".into())
        .spawn(move || {
            let mut file = file;
            while let Ok(line) = rx.recv() {
                // An unbuffered per-line write: event rate is request rate,
                // and losing buffered lines on abrupt exit would make the
                // log unreconcilable.
                let _ = file.write_all(line.as_bytes());
                let _ = file.write_all(b"\n");
                written_in_thread.fetch_add(1, Ordering::Release);
            }
            let _ = file.flush();
        });
    if spawned.is_err() {
        crate::error!("access log writer thread failed to spawn");
        return None;
    }
    Some(AccessLog {
        tx,
        submitted: AtomicU64::new(0),
        written,
    })
}

fn access_log() -> Option<&'static AccessLog> {
    SINK.get_or_init(|| {
        let path = std::env::var("MAPS_ACCESS_LOG").ok()?;
        let path = path.trim();
        if path.is_empty() {
            return None;
        }
        start_writer(path)
    })
    .as_ref()
}

/// Routes the access log to `path` regardless of `MAPS_ACCESS_LOG` (first
/// caller wins — the sink is process-wide; tests use this to avoid racing
/// on the environment). Returns whether the sink is now active.
#[doc(hidden)]
pub fn access_log_to(path: &str) -> bool {
    SINK.get_or_init(|| start_writer(path)).is_some()
}

/// Blocks until every submitted access-log line has been written (or
/// `timeout` elapses). Returns `true` when the log is fully drained — a
/// process calls this before exit so the JSONL on disk reconciles with
/// [`total`]. A no-op `true` when no access log is configured.
pub fn flush_access_log(timeout: Duration) -> bool {
    let Some(sink) = SINK.get().and_then(Option::as_ref) else {
        return true;
    };
    let deadline = Instant::now() + timeout;
    loop {
        let submitted = sink.submitted.load(Ordering::Relaxed);
        if sink.written.load(Ordering::Acquire) >= submitted {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ring is process-global and unit tests run in parallel; every
    // test here serializes on this lock and resets the ring.
    static RING_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn event_renders_typed_fields_and_escapes() {
        let mut ev = WideEvent::new();
        ev.set_str("endpoint", "/solve");
        ev.set_str("client", "10.0.0.1");
        ev.set_u64("status", 200);
        ev.set_f64("total_us", 1250.5);
        ev.set_f64("bad", f64::NAN);
        ev.set_bool("sampled", true);
        ev.set_null("residual");
        ev.set_str("error", "a \"quoted\"\nreason");
        let json = ev.to_json();
        assert!(json.contains("\"endpoint\":\"/solve\""), "{json}");
        assert!(json.contains("\"status\":200"), "{json}");
        assert!(json.contains("\"total_us\":1250.5"), "{json}");
        assert!(json.contains("\"bad\":null"), "{json}");
        assert!(json.contains("\"sampled\":true"), "{json}");
        assert!(json.contains("\"residual\":null"), "{json}");
        assert!(json.contains("\\\"quoted\\\"\\n"), "{json}");
        // Round-trips through a JSON parser.
        let parsed: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(parsed.field("status").unwrap().as_f64().unwrap(), 200.0);
    }

    #[test]
    fn last_write_per_key_wins() {
        let mut ev = WideEvent::new();
        ev.set_str("disposition", "ok");
        ev.set_str("disposition", "degraded");
        let json = ev.to_json();
        assert!(json.contains("\"disposition\":\"degraded\""), "{json}");
        assert_eq!(json.matches("disposition").count(), 1, "{json}");
    }

    #[test]
    fn ring_is_bounded_and_drop_oldest() {
        let _guard = RING_TEST_LOCK.lock().unwrap();
        reset();
        set_capacity(3);
        for i in 0..5 {
            let mut ev = WideEvent::new();
            ev.set_u64("seq", i);
            record(&ev);
        }
        let recent = recent(10);
        assert_eq!(recent.len(), 3, "{recent:?}");
        assert!(recent[0].contains("\"seq\":2"), "{recent:?}");
        assert!(recent[2].contains("\"seq\":4"), "{recent:?}");
        assert_eq!(total(), 5);
        assert_eq!(ring_dropped(), 2);
        let arr = recent_json(2);
        assert!(arr.starts_with('[') && arr.ends_with(']'), "{arr}");
        let parsed: serde::Value = serde_json::from_str(&arr).expect("valid array");
        assert_eq!(parsed.as_arr().unwrap().len(), 2);
        set_capacity(DEFAULT_CAPACITY);
        reset();
    }

    #[test]
    fn flush_without_a_sink_is_trivially_true() {
        assert!(flush_access_log(Duration::from_millis(1)));
    }
}
