//! Stall watchdog: a sampling thread that turns "the process is still
//! alive but nothing is happening" into counters and a readiness bit.
//!
//! The flight recorder only sees *completed* spans, so a solve that hangs
//! forever is invisible to it. While the watchdog is running, every span
//! additionally registers in an **open-span table** on open and deregisters
//! on close; the watchdog thread samples that table (and the global counter
//! registry) every `interval` and:
//!
//! - bumps `obs.watchdog.slow_solves` the first time an open span outlives
//!   the *slow* threshold of its deadline class;
//! - bumps `obs.watchdog.stalls` and flips readiness to *not ready* the
//!   first time an open span outlives the *stall* threshold — readiness
//!   recovers as soon as no overdue span remains open;
//! - detects **flatline**: open spans exist but no counter in the global
//!   registry moved for `flatline_ticks` consecutive samples (a wedged
//!   worker holding a span without making progress), which also counts as
//!   a stall until progress resumes.
//!
//! Deadline classes are longest-prefix matches on the span name
//! ([`set_deadline`]), so `fdfd.factorize` can get a tighter budget than a
//! whole `solver.solve_batch`. The `/healthz` and `/readyz` endpoints of
//! the telemetry server reflect [`is_ready`]/[`stalled_spans`].
//!
//! Cost when off: one relaxed atomic load per span open (the tracking
//! flag); the table and the sampling thread exist only while running.
//! Enable via [`start`] or the `MAPS_WATCHDOG_MS` knob
//! ([`start_from_env`]).

use crate::env::parse_env_or;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default sampling interval when `MAPS_WATCHDOG_MS` is set but empty or
/// invalid is handled by [`parse_env_or`]; this is the documented default.
pub const DEFAULT_INTERVAL_MS: u64 = 500;

/// Consecutive no-progress samples (with work open) before a flatline
/// counts as a stall.
pub const DEFAULT_FLATLINE_TICKS: u32 = 20;

/// Slow/stall budget of one deadline class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Deadline {
    /// Open-span age after which the span is counted as a slow solve.
    pub slow: Duration,
    /// Open-span age after which the span is counted as a stall and
    /// readiness drops.
    pub stall: Duration,
}

impl Deadline {
    /// The fallback class for span names with no registered prefix.
    pub const DEFAULT: Deadline = Deadline {
        slow: Duration::from_secs(30),
        stall: Duration::from_secs(300),
    };
}

struct OpenSpan {
    name: String,
    thread_id: u64,
    opened: Instant,
    flagged_slow: bool,
    flagged_stall: bool,
}

#[derive(Default)]
struct DeadlineTable {
    /// `(name prefix, deadline)`, matched longest-prefix-first.
    classes: Vec<(String, Deadline)>,
    default: Option<Deadline>,
}

struct State {
    open: Mutex<HashMap<u64, OpenSpan>>,
    deadlines: Mutex<DeadlineTable>,
    /// Progress signature (sum of all registry counters) at the last
    /// sample, plus how many consecutive samples it has been unchanged
    /// while spans were open.
    flatline: Mutex<(u64, u32)>,
    /// Latched true while a flatline episode is in progress (cleared when
    /// progress resumes), so one episode bumps the stall counter once.
    flatlined: AtomicBool,
    ready: AtomicBool,
}

static TRACKING: AtomicBool = AtomicBool::new(false);
static RUNNING: AtomicBool = AtomicBool::new(false);

fn state() -> &'static State {
    static STATE: OnceLock<State> = OnceLock::new();
    STATE.get_or_init(|| State {
        open: Mutex::new(HashMap::new()),
        deadlines: Mutex::new(DeadlineTable::default()),
        flatline: Mutex::new((0, 0)),
        flatlined: AtomicBool::new(false),
        ready: AtomicBool::new(true),
    })
}

/// True while spans must register in the open-span table (one relaxed load
/// — this is the only watchdog cost on the span fast path).
#[inline]
pub fn is_tracking() -> bool {
    TRACKING.load(Ordering::Relaxed)
}

pub(crate) fn open_span(id: u64, name: &str, thread_id: u64, opened: Instant) {
    state().open.lock().expect("watchdog open table").insert(
        id,
        OpenSpan {
            name: name.to_string(),
            thread_id,
            opened,
            flagged_slow: false,
            flagged_stall: false,
        },
    );
}

pub(crate) fn close_span(id: u64) {
    state()
        .open
        .lock()
        .expect("watchdog open table")
        .remove(&id);
}

/// Registers (or replaces) the deadline class for span names starting with
/// `prefix`. Longest matching prefix wins.
pub fn set_deadline(prefix: &str, deadline: Deadline) {
    let mut table = state().deadlines.lock().expect("watchdog deadlines");
    if let Some(entry) = table.classes.iter_mut().find(|(p, _)| p == prefix) {
        entry.1 = deadline;
    } else {
        table.classes.push((prefix.to_string(), deadline));
    }
}

/// Overrides the fallback deadline for span names with no registered class.
pub fn set_default_deadline(deadline: Deadline) {
    state()
        .deadlines
        .lock()
        .expect("watchdog deadlines")
        .default = Some(deadline);
}

/// The deadline class of a span name (longest registered prefix, falling
/// back to the default class).
pub fn deadline_for(name: &str) -> Deadline {
    let table = state().deadlines.lock().expect("watchdog deadlines");
    table
        .classes
        .iter()
        .filter(|(p, _)| name.starts_with(p.as_str()))
        .max_by_key(|(p, _)| p.len())
        .map(|(_, d)| *d)
        .unwrap_or_else(|| table.default.unwrap_or(Deadline::DEFAULT))
}

/// Installs the built-in deadline classes for MAPS span names. Called by
/// [`start`]; idempotent (explicit [`set_deadline`] calls made before
/// `start` survive because replacement is by exact prefix).
fn install_default_classes() {
    let defaults: [(&str, u64, u64); 4] = [
        // (prefix, slow secs, stall secs)
        ("fdfd.factorize", 10, 120),
        ("fdfd.solve", 10, 120),
        ("solver.solve_batch", 30, 300),
        ("solver.solve", 10, 120),
    ];
    let mut table = state().deadlines.lock().expect("watchdog deadlines");
    for (prefix, slow, stall) in defaults {
        if !table.classes.iter().any(|(p, _)| p == prefix) {
            table.classes.push((
                prefix.to_string(),
                Deadline {
                    slow: Duration::from_secs(slow),
                    stall: Duration::from_secs(stall),
                },
            ));
        }
    }
}

/// True when no stall condition is active (always true when the watchdog
/// never ran). The `/readyz` endpoint serves 503 while this is false.
pub fn is_ready() -> bool {
    state().ready.load(Ordering::Relaxed)
}

/// Names of currently open spans that have outlived their stall deadline,
/// oldest first (empty when healthy). Rendered into `/readyz` bodies.
pub fn stalled_spans() -> Vec<String> {
    let open = state().open.lock().expect("watchdog open table");
    let mut stalled: Vec<(&OpenSpan, ())> = open
        .values()
        .filter(|s| s.flagged_stall)
        .map(|s| (s, ()))
        .collect();
    stalled.sort_by_key(|(s, ())| s.opened);
    stalled
        .into_iter()
        .map(|(s, ())| format!("{} (thread {})", s.name, s.thread_id))
        .collect()
}

/// One watchdog sample over the open-span table and the counter registry.
/// Split out from the thread loop so tests can drive it deterministically.
pub(crate) fn tick(now: Instant, flatline_ticks: u32) {
    let st = state();
    maps_counter("obs.watchdog.ticks").inc();

    let mut any_stalled = false;
    let open_count;
    {
        let mut open = st.open.lock().expect("watchdog open table");
        open_count = open.len();
        for span in open.values_mut() {
            let age = now.saturating_duration_since(span.opened);
            let deadline = deadline_for(&span.name);
            if !span.flagged_slow && age > deadline.slow {
                span.flagged_slow = true;
                maps_counter("obs.watchdog.slow_solves").inc();
                crate::error!(
                    "watchdog: span {:?} open for {:.1}s exceeds slow budget {:.1}s (thread {})",
                    span.name,
                    age.as_secs_f64(),
                    deadline.slow.as_secs_f64(),
                    span.thread_id
                );
            }
            if !span.flagged_stall && age > deadline.stall {
                span.flagged_stall = true;
                maps_counter("obs.watchdog.stalls").inc();
                crate::error!(
                    "watchdog: span {:?} open for {:.1}s exceeds stall budget {:.1}s (thread {}) — not ready",
                    span.name,
                    age.as_secs_f64(),
                    deadline.stall.as_secs_f64(),
                    span.thread_id
                );
            }
            any_stalled |= span.flagged_stall;
        }
    }

    // Flatline: spans are open but no counter anywhere has moved for
    // `flatline_ticks` consecutive samples. The signature sums every
    // counter, so *any* progress (solves, cache hits, samples, retries)
    // resets the clock.
    let mut flatlined_now = false;
    if flatline_ticks > 0 {
        let signature: u64 = crate::global()
            .counters()
            .iter()
            // The watchdog's own tick counter must not count as progress.
            .filter(|(name, _)| name != "obs.watchdog.ticks")
            .map(|(_, v)| *v)
            .fold(0u64, u64::wrapping_add);
        let mut flat = st.flatline.lock().expect("watchdog flatline");
        if signature == flat.0 && open_count > 0 {
            flat.1 = flat.1.saturating_add(1);
        } else {
            flat.1 = 0;
            st.flatlined.store(false, Ordering::Relaxed);
        }
        flat.0 = signature;
        if flat.1 >= flatline_ticks {
            flatlined_now = true;
            if !st.flatlined.swap(true, Ordering::Relaxed) {
                maps_counter("obs.watchdog.stalls").inc();
                crate::error!(
                    "watchdog: {} open span(s) but no counter progress for {} samples — not ready",
                    open_count,
                    flat.1
                );
            }
        }
    }

    let ready = !any_stalled && !flatlined_now;
    st.ready.store(ready, Ordering::Relaxed);
    crate::gauge("obs.watchdog.ready").set(if ready { 1.0 } else { 0.0 });
    crate::gauge("obs.watchdog.open_spans").set(open_count as f64);
}

fn maps_counter(name: &str) -> crate::Counter {
    crate::counter(name)
}

/// Handle to a running watchdog; stops (and joins) the sampling thread on
/// [`Watchdog::stop`] or drop.
pub struct Watchdog {
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Stops the sampling thread, disables open-span tracking, and resets
    /// readiness to healthy.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        RUNNING.store(false, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        TRACKING.store(false, Ordering::Relaxed);
        let st = state();
        st.open.lock().expect("watchdog open table").clear();
        *st.flatline.lock().expect("watchdog flatline") = (0, 0);
        st.flatlined.store(false, Ordering::Relaxed);
        st.ready.store(true, Ordering::Relaxed);
        crate::gauge("obs.watchdog.ready").set(1.0);
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts the watchdog sampling thread. Returns `None` when one is already
/// running (the watchdog is process-global; the first caller wins).
///
/// `interval` is how often the open-span table is sampled;
/// `flatline_ticks` is how many consecutive no-progress samples count as a
/// stall (0 disables flatline detection).
pub fn start(interval: Duration, flatline_ticks: u32) -> Option<Watchdog> {
    if RUNNING.swap(true, Ordering::AcqRel) {
        return None;
    }
    install_default_classes();
    {
        // Fresh episode: stale flags from a previous watchdog must not leak.
        let st = state();
        *st.flatline.lock().expect("watchdog flatline") = (0, 0);
        st.flatlined.store(false, Ordering::Relaxed);
        st.ready.store(true, Ordering::Relaxed);
    }
    TRACKING.store(true, Ordering::Relaxed);
    let interval = interval.max(Duration::from_millis(1));
    let handle = std::thread::Builder::new()
        .name("maps-watchdog".into())
        .spawn(move || {
            while RUNNING.load(Ordering::Acquire) {
                std::thread::sleep(interval);
                if !RUNNING.load(Ordering::Acquire) {
                    break;
                }
                tick(Instant::now(), flatline_ticks);
            }
        })
        .expect("spawn watchdog thread");
    Some(Watchdog {
        handle: Some(handle),
    })
}

/// Starts the watchdog when `MAPS_WATCHDOG_MS` is set (interval in
/// milliseconds; invalid values warn once and use
/// [`DEFAULT_INTERVAL_MS`]). Returns `None` when the knob is unset or a
/// watchdog is already running.
pub fn start_from_env() -> Option<Watchdog> {
    std::env::var_os("MAPS_WATCHDOG_MS")?;
    let ms = parse_env_or("MAPS_WATCHDOG_MS", DEFAULT_INTERVAL_MS).max(1);
    start(
        Duration::from_millis(ms),
        parse_env_or("MAPS_WATCHDOG_FLATLINE_TICKS", DEFAULT_FLATLINE_TICKS),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    // The watchdog is process-global; unit tests here drive `tick`
    // directly (no thread) and serialize on a local mutex so flags and the
    // open-span table don't interleave.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn reset() {
        let st = state();
        st.open.lock().unwrap().clear();
        *st.flatline.lock().unwrap() = (0, 0);
        st.flatlined.store(false, Ordering::Relaxed);
        st.ready.store(true, Ordering::Relaxed);
    }

    #[test]
    fn deadline_lookup_prefers_longest_prefix() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        set_deadline(
            "test.a",
            Deadline {
                slow: Duration::from_secs(1),
                stall: Duration::from_secs(2),
            },
        );
        set_deadline(
            "test.a.b",
            Deadline {
                slow: Duration::from_secs(3),
                stall: Duration::from_secs(4),
            },
        );
        assert_eq!(deadline_for("test.a.b.c").slow, Duration::from_secs(3));
        assert_eq!(deadline_for("test.a.x").slow, Duration::from_secs(1));
        assert_eq!(deadline_for("unmatched"), Deadline::DEFAULT);
    }

    #[test]
    fn overdue_open_span_flags_slow_then_stall_and_recovers() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        set_deadline(
            "test.slowpoke",
            Deadline {
                slow: Duration::from_millis(10),
                stall: Duration::from_millis(50),
            },
        );
        let opened = Instant::now();
        open_span(9001, "test.slowpoke.solve", 1, opened);

        let stalls = crate::counter("obs.watchdog.stalls");
        let slows = crate::counter("obs.watchdog.slow_solves");
        let (stalls0, slows0) = (stalls.get(), slows.get());

        // Young span: healthy.
        tick(opened + Duration::from_millis(5), 0);
        assert!(is_ready());
        assert_eq!(slows.get(), slows0);

        // Past slow, before stall.
        tick(opened + Duration::from_millis(20), 0);
        assert!(is_ready());
        assert_eq!(slows.get(), slows0 + 1);
        assert_eq!(stalls.get(), stalls0);

        // Past stall: not ready, counted once even across repeat ticks.
        tick(opened + Duration::from_millis(60), 0);
        tick(opened + Duration::from_millis(70), 0);
        assert!(!is_ready());
        assert_eq!(stalls.get(), stalls0 + 1);
        assert_eq!(stalled_spans().len(), 1);
        assert!(stalled_spans()[0].contains("test.slowpoke.solve"));

        // Span closes: readiness recovers on the next sample.
        close_span(9001);
        tick(opened + Duration::from_millis(80), 0);
        assert!(is_ready());
        assert!(stalled_spans().is_empty());
        reset();
    }

    #[test]
    fn flatline_with_open_work_is_a_stall_until_progress_resumes() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        let opened = Instant::now();
        open_span(9002, "test.flatline.work", 2, opened);
        let stalls = crate::counter("obs.watchdog.stalls");
        let stalls0 = stalls.get();

        // Tick 1 records the signature; ticks 2..=3 see it unchanged.
        tick(opened, 2);
        tick(opened + Duration::from_millis(1), 2);
        tick(opened + Duration::from_millis(2), 2);
        assert!(!is_ready(), "flatline with open work drops readiness");
        assert_eq!(stalls.get(), stalls0 + 1, "one stall per episode");
        tick(opened + Duration::from_millis(3), 2);
        assert_eq!(stalls.get(), stalls0 + 1, "episode counted once");

        // Any counter movement is progress and recovers readiness.
        crate::counter("test.flatline.progress").inc();
        tick(opened + Duration::from_millis(4), 2);
        assert!(is_ready());
        close_span(9002);
        reset();
    }

    #[test]
    fn idle_process_never_flatlines() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        let now = Instant::now();
        for k in 0..10 {
            tick(now + Duration::from_millis(k), 2);
        }
        assert!(is_ready(), "no open spans means no flatline stall");
        reset();
    }
}
