//! Named counters, gauges, and log-bucketed histograms, plus a hand-rolled
//! JSON snapshot writer.
//!
//! All instruments are lock-free on the record path (atomics only); the
//! registry's maps are locked only on get-or-create and on snapshot.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// --- histogram bucket layout -----------------------------------------------
//
// Log-spaced buckets, 4 per decade, spanning 1e-18 .. 1e+6. That covers both
// sub-nanosecond span timings and iterative-solver residuals down to machine
// epsilon squared, with a worst-case relative error of 10^(1/4) ≈ 1.78× on
// percentile estimates (tightened further by clamping to the observed
// min/max).

const DECADE_LO: f64 = -18.0;
const DECADE_HI: f64 = 6.0;
const BUCKETS_PER_DECADE: f64 = 4.0;
/// Interior buckets between the under- and overflow buckets.
const INTERIOR: usize = ((DECADE_HI - DECADE_LO) as usize) * 4;
/// Total buckets: underflow + interior + overflow.
const NBUCKETS: usize = INTERIOR + 2;

fn bucket_index(v: f64) -> usize {
    // Zero, negatives, NaN, and subnormals-of-interest all land in the
    // underflow bucket; min/max stay exact.
    if v.is_nan() || v <= 1e-18 {
        return 0;
    }
    let z = (v.log10() - DECADE_LO) * BUCKETS_PER_DECADE;
    if z < 0.0 {
        0
    } else if z >= INTERIOR as f64 {
        NBUCKETS - 1
    } else {
        z as usize + 1
    }
}

/// Geometric midpoint of an interior bucket, used as its representative
/// value in percentile estimation.
fn bucket_mid(index: usize) -> f64 {
    let lo_exp = DECADE_LO + (index as f64 - 1.0) / BUCKETS_PER_DECADE;
    10f64.powf(lo_exp + 0.5 / BUCKETS_PER_DECADE)
}

// --- atomic f64 helpers ----------------------------------------------------

fn atomic_f64_update(cell: &AtomicU64, combine: impl Fn(f64, f64) -> f64, v: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = combine(f64::from_bits(current), v);
        match cell.compare_exchange_weak(
            current,
            next.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

// --- instruments -----------------------------------------------------------

/// Monotonically increasing event count. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point value. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A trace pointer attached to a histogram: the most recent sample whose
/// recorder kept the full span tree, in OpenMetrics exemplar spirit. One
/// slot per histogram (last-retained-wins) is enough to navigate from a
/// latency spike on `/metrics` to `GET /trace` for a representative
/// request.
#[derive(Clone, Debug, PartialEq)]
pub struct Exemplar {
    /// Exemplar label name (conventionally `trace_id`).
    pub label_key: String,
    /// Exemplar label value (the trace id to look up in `/trace`).
    pub label_value: String,
    /// The sample value the exemplar annotates.
    pub value: f64,
    /// Wall-clock seconds since the Unix epoch when recorded.
    pub unix_seconds: f64,
}

struct HistogramInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// f64 bits; combined with CAS loops.
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Off the record path: written only for retained (traced) samples.
    exemplar: Mutex<Option<Exemplar>>,
}

impl HistogramInner {
    fn new() -> Self {
        Self {
            buckets: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            exemplar: Mutex::new(None),
        }
    }
}

/// Log-bucketed distribution of non-negative samples (latencies, residuals,
/// iteration counts). Cheap to clone; clones share state.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one sample. NaN is ignored.
    pub fn record(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let inner = &self.0;
        inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&inner.sum, |a, b| a + b, v);
        atomic_f64_update(&inner.min, f64::min, v);
        atomic_f64_update(&inner.max, f64::max, v);
    }

    /// Records one sample and attaches an [`Exemplar`] pointing at it
    /// (last exemplar wins). Used for samples whose trace was retained, so
    /// `/metrics` readers can jump from the distribution to a concrete
    /// request in `/trace`. NaN is ignored entirely.
    pub fn record_with_exemplar(&self, v: f64, label_key: &str, label_value: &str) {
        if v.is_nan() {
            return;
        }
        self.record(v);
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0);
        *self.0.exemplar.lock().expect("histogram exemplar") = Some(Exemplar {
            label_key: label_key.to_string(),
            label_value: label_value.to_string(),
            value: v,
            unix_seconds: ts,
        });
    }

    /// The most recent exemplar, if any sample was recorded with one.
    pub fn exemplar(&self) -> Option<Exemplar> {
        self.0.exemplar.lock().expect("histogram exemplar").clone()
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Arithmetic mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            f64::from_bits(self.0.sum.load(Ordering::Relaxed)) / n as f64
        }
    }

    /// Smallest recorded sample (exact; 0 when empty).
    pub fn min(&self) -> f64 {
        let v = f64::from_bits(self.0.min.load(Ordering::Relaxed));
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }

    /// Largest recorded sample (exact; 0 when empty).
    pub fn max(&self) -> f64 {
        let v = f64::from_bits(self.0.max.load(Ordering::Relaxed));
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }

    /// Estimates the `p`-th percentile (`p` in 0..=100) from the bucket
    /// cumulative distribution. Accurate to one bucket width
    /// (≈1.78× relative), then clamped to the exact observed min/max.
    pub fn percentile(&self, p: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            if cumulative >= rank {
                let raw = if i == 0 {
                    self.min()
                } else if i == NBUCKETS - 1 {
                    self.max()
                } else {
                    bucket_mid(i)
                };
                return raw.clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Consistent point-in-time summary used by snapshots.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
        }
    }
}

/// Point-in-time histogram summary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Exact observed minimum.
    pub min: f64,
    /// Exact observed maximum.
    pub max: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

// --- registry --------------------------------------------------------------

/// A namespace of instruments addressable by string name.
///
/// `counter`/`gauge`/`histogram` get-or-create, so call sites never need
/// registration boilerplate and repeated lookups return the same instrument.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramInner>>>,
}

impl Registry {
    /// An empty registry (prefer [`crate::global`] outside tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("counter map");
        Counter(Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        ))
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("gauge map");
        Gauge(Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits()))),
        ))
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().expect("histogram map");
        Histogram(Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(HistogramInner::new())),
        ))
    }

    /// Value of counter `name`, if it exists.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let map = self.counters.lock().expect("counter map");
        map.get(name).map(|c| c.load(Ordering::Relaxed))
    }

    /// Value of gauge `name`, if it exists.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let map = self.gauges.lock().expect("gauge map");
        map.get(name)
            .map(|g| f64::from_bits(g.load(Ordering::Relaxed)))
    }

    /// Snapshot of histogram `name`, if it exists.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        let map = self.histograms.lock().expect("histogram map");
        map.get(name).map(|h| Histogram(Arc::clone(h)).snapshot())
    }

    /// Every counter with its current value, in name order.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let map = self.counters.lock().expect("counter map");
        map.iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Every gauge with its current value, in name order.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        let map = self.gauges.lock().expect("gauge map");
        map.iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect()
    }

    /// Every histogram with a point-in-time snapshot, in name order.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        let map = self.histograms.lock().expect("histogram map");
        map.iter()
            .map(|(k, v)| (k.clone(), Histogram(Arc::clone(v)).snapshot()))
            .collect()
    }

    /// Drops every instrument (test isolation; outstanding handles keep
    /// working but detach from the registry).
    pub fn reset(&self) {
        self.counters.lock().expect("counter map").clear();
        self.gauges.lock().expect("gauge map").clear();
        self.histograms.lock().expect("histogram map").clear();
    }

    /// Compact JSON snapshot of every instrument, keys sorted.
    pub fn to_json(&self) -> String {
        self.write_json(false)
    }

    /// Human-readable (indented) JSON snapshot.
    pub fn to_json_pretty(&self) -> String {
        self.write_json(true)
    }

    /// Renders every instrument in Prometheus text exposition format
    /// (version 0.0.4, what `GET /metrics` serves).
    ///
    /// Counters become `<name>_total`; gauges keep their name; histograms
    /// are rendered as Prometheus *summaries*: p50/p90/p99 `quantile`
    /// sample lines plus `_sum` (reconstructed as `mean × count`) and
    /// `_count`. Metric names are sanitized to the Prometheus grammar
    /// (`[a-zA-Z_:][a-zA-Z0-9_:]*`) by mapping every other byte to `_`;
    /// MAPS dot-separated names like `solver.cache.hits` therefore export
    /// as `solver_cache_hits_total`.
    pub fn prometheus_text(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out: String = name
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect();
            if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                out.insert(0, '_');
            }
            out
        }
        // Prometheus floats: the default Display for f64 is accepted
        // (scientific notation allowed), but non-finite values must be
        // spelled +Inf/-Inf/NaN.
        fn num(v: f64) -> String {
            if v.is_nan() {
                "NaN".to_string()
            } else if v == f64::INFINITY {
                "+Inf".to_string()
            } else if v == f64::NEG_INFINITY {
                "-Inf".to_string()
            } else {
                format!("{v}")
            }
        }

        let mut out = String::new();
        for (name, v) in self.counters() {
            let s = sanitize(&name);
            let _ = writeln!(out, "# HELP {s}_total MAPS counter {name}");
            let _ = writeln!(out, "# TYPE {s}_total counter");
            let _ = writeln!(out, "{s}_total {v}");
        }
        for (name, v) in self.gauges() {
            let s = sanitize(&name);
            let _ = writeln!(out, "# HELP {s} MAPS gauge {name}");
            let _ = writeln!(out, "# TYPE {s} gauge");
            let _ = writeln!(out, "{s} {}", num(v));
        }
        for (name, snap, exemplar) in self.histogram_rows() {
            let s = sanitize(&name);
            let _ = writeln!(out, "# HELP {s} MAPS histogram {name}");
            let _ = writeln!(out, "# TYPE {s} summary");
            for (q, v) in [("0.5", snap.p50), ("0.9", snap.p90), ("0.99", snap.p99)] {
                let _ = writeln!(out, "{s}{{quantile=\"{q}\"}} {}", num(v));
            }
            let _ = writeln!(out, "{s}_sum {}", num(snap.mean * snap.count as f64));
            match exemplar {
                // OpenMetrics-style exemplar attached to the _count sample:
                // `name value # {label="trace"} exemplar_value timestamp`.
                Some(e) => {
                    let _ = writeln!(
                        out,
                        "{s}_count {} # {{{}=\"{}\"}} {} {}",
                        snap.count,
                        sanitize(&e.label_key),
                        e.label_value.replace('\\', "\\\\").replace('"', "\\\""),
                        num(e.value),
                        num(e.unix_seconds),
                    );
                }
                None => {
                    let _ = writeln!(out, "{s}_count {}", snap.count);
                }
            }
        }
        out
    }

    /// Every histogram with its snapshot and current exemplar, in name
    /// order (the exemplar-aware sibling of [`Registry::histograms`]).
    fn histogram_rows(&self) -> Vec<(String, HistogramSnapshot, Option<Exemplar>)> {
        let map = self.histograms.lock().expect("histogram map");
        map.iter()
            .map(|(k, v)| {
                let h = Histogram(Arc::clone(v));
                (k.clone(), h.snapshot(), h.exemplar())
            })
            .collect()
    }

    fn write_json(&self, pretty: bool) -> String {
        let counters = self.counters();
        let gauges = self.gauges();
        let histograms = self.histograms();

        let mut w = JsonWriter::new(pretty);
        w.open_obj();
        w.key("counters");
        w.open_obj();
        for (name, v) in &counters {
            w.key(name);
            w.raw(&v.to_string());
        }
        w.close_obj();
        w.key("gauges");
        w.open_obj();
        for (name, v) in &gauges {
            w.key(name);
            w.number(*v);
        }
        w.close_obj();
        w.key("histograms");
        w.open_obj();
        for (name, s) in &histograms {
            w.key(name);
            w.open_obj();
            w.key("count");
            w.raw(&s.count.to_string());
            w.key("mean");
            w.number(s.mean);
            w.key("min");
            w.number(s.min);
            w.key("max");
            w.number(s.max);
            w.key("p50");
            w.number(s.p50);
            w.key("p90");
            w.number(s.p90);
            w.key("p99");
            w.number(s.p99);
            w.close_obj();
        }
        w.close_obj();
        w.close_obj();
        w.finish()
    }
}

// --- minimal JSON writer ---------------------------------------------------

/// Hand-rolled JSON emitter shared by the registry snapshot and the trace
/// exporters (crate-internal: the public surface is the rendered strings).
pub(crate) struct JsonWriter {
    out: String,
    pretty: bool,
    depth: usize,
    /// Whether the current container already has at least one entry.
    need_comma: Vec<bool>,
}

impl JsonWriter {
    pub(crate) fn new(pretty: bool) -> Self {
        Self {
            out: String::new(),
            pretty,
            depth: 0,
            need_comma: Vec::new(),
        }
    }

    fn newline_indent(&mut self) {
        if self.pretty {
            self.out.push('\n');
            for _ in 0..self.depth {
                self.out.push_str("  ");
            }
        }
    }

    fn before_entry(&mut self) {
        if let Some(last) = self.need_comma.last_mut() {
            if *last {
                self.out.push(',');
            }
            *last = true;
        }
        self.newline_indent();
    }

    pub(crate) fn open_obj(&mut self) {
        self.out.push('{');
        self.depth += 1;
        self.need_comma.push(false);
    }

    pub(crate) fn close_obj(&mut self) {
        let had_entries = self.need_comma.pop().unwrap_or(false);
        self.depth -= 1;
        if had_entries {
            self.newline_indent();
        }
        self.out.push('}');
    }

    /// Opens an array *entry* in the current container (call after
    /// [`JsonWriter::key`] inside objects, or directly inside arrays).
    pub(crate) fn open_arr(&mut self) {
        self.out.push('[');
        self.depth += 1;
        self.need_comma.push(false);
    }

    pub(crate) fn close_arr(&mut self) {
        let had_entries = self.need_comma.pop().unwrap_or(false);
        self.depth -= 1;
        if had_entries {
            self.newline_indent();
        }
        self.out.push(']');
    }

    /// Starts a new element of the enclosing array (comma/indent handling);
    /// follow with `open_obj`/`string`/`number`/`raw`.
    pub(crate) fn elem(&mut self) {
        self.before_entry();
    }

    pub(crate) fn key(&mut self, k: &str) {
        self.before_entry();
        self.string(k);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
    }

    pub(crate) fn string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.out, "\\u{:04x}", c as u32);
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    pub(crate) fn number(&mut self, v: f64) {
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            // JSON has no Infinity/NaN; null keeps the document parseable.
            self.out.push_str("null");
        }
    }

    pub(crate) fn raw(&mut self, s: &str) {
        self.out.push_str(s);
    }

    pub(crate) fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone() {
        let values = [0.0, 1e-19, 1e-12, 3.3e-7, 1e-3, 0.5, 1.0, 17.0, 1e5, 1e7];
        let mut last = 0;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx >= last, "bucket index decreased at {v}");
            assert!(idx < NBUCKETS);
            last = idx;
        }
    }

    #[test]
    fn prometheus_text_renders_all_instrument_kinds() {
        let reg = Registry::new();
        reg.counter("solver.cache.hits").add(3);
        reg.gauge("lu.cache.entries").set(2.0);
        let h = reg.histogram("solver.solve.seconds");
        h.record(0.5);
        h.record(1.5);
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE solver_cache_hits_total counter"));
        assert!(text.contains("solver_cache_hits_total 3"));
        assert!(text.contains("# TYPE lu_cache_entries gauge"));
        assert!(text.contains("lu_cache_entries 2"));
        assert!(text.contains("# TYPE solver_solve_seconds summary"));
        assert!(text.contains("solver_solve_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("solver_solve_seconds_count 2"));
        assert!(text.contains("solver_solve_seconds_sum 2"));
        // Every non-comment line is `name[{labels}] value`, optionally
        // followed by an ` # {...}` exemplar clause.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let sample = line.split(" # ").next().unwrap_or(line);
            assert_eq!(sample.split_whitespace().count(), 2, "tear in {line:?}");
        }
    }

    #[test]
    fn histogram_exemplar_lands_on_the_count_line() {
        let reg = Registry::new();
        let h = reg.histogram("mapsd.request.total_ms");
        h.record(1.0);
        h.record_with_exemplar(9.5, "trace_id", "t-42");
        let ex = h.exemplar().expect("exemplar recorded");
        assert_eq!(ex.label_value, "t-42");
        assert_eq!(ex.value, 9.5);
        assert!(ex.unix_seconds > 0.0);
        let text = reg.prometheus_text();
        let count_line = text
            .lines()
            .find(|l| l.starts_with("mapsd_request_total_ms_count"))
            .expect("count line");
        assert!(
            count_line.contains("2 # {trace_id=\"t-42\"} 9.5 "),
            "{count_line}"
        );
        // NaN with an exemplar is still ignored wholesale.
        h.record_with_exemplar(f64::NAN, "trace_id", "t-nan");
        assert_eq!(h.exemplar().unwrap().label_value, "t-42");
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn bucket_mid_lies_inside_bucket() {
        for v in [1e-9, 2.5e-4, 0.7, 42.0] {
            let i = bucket_index(v);
            let mid = bucket_mid(i);
            // Same bucket: the representative value round-trips.
            assert_eq!(bucket_index(mid), i, "mid {mid} escaped bucket of {v}");
        }
    }
}
