//! Integration tests of the observability crate: percentile math, JSON
//! snapshot shape, span recording, and thread-safety under contention.

use maps_obs::{recorder, Registry};
use std::sync::Arc;
use std::thread;

#[test]
fn histogram_percentiles_track_known_distribution() {
    let reg = Registry::new();
    let h = reg.histogram("latency");
    // 100 samples: 1ms, 2ms, ..., 100ms.
    for k in 1..=100 {
        h.record(k as f64 * 1e-3);
    }
    assert_eq!(h.count(), 100);
    assert!((h.mean() - 0.0505).abs() < 1e-12);
    assert_eq!(h.min(), 1e-3);
    assert_eq!(h.max(), 0.1);
    // Buckets are log-spaced 4 per decade, so estimates carry up to a
    // 10^(1/4) ≈ 1.78× relative error; check each percentile within that.
    for (p, expect) in [(50.0, 0.050), (90.0, 0.090), (99.0, 0.099)] {
        let got = h.percentile(p);
        assert!(
            got >= expect / 1.8 && got <= expect * 1.8,
            "p{p}: got {got}, expected within 1.8x of {expect}"
        );
    }
    // Percentiles are monotone in p and bounded by observed extremes.
    let (p10, p50, p99) = (h.percentile(10.0), h.percentile(50.0), h.percentile(99.0));
    assert!(p10 <= p50 && p50 <= p99);
    assert!(p10 >= h.min() && p99 <= h.max());
}

#[test]
fn histogram_handles_tiny_residual_values() {
    let reg = Registry::new();
    let h = reg.histogram("residual");
    for v in [1e-16, 3e-12, 2.5e-9, 1e-8] {
        h.record(v);
    }
    assert_eq!(h.count(), 4);
    assert_eq!(h.min(), 1e-16);
    let p50 = h.percentile(50.0);
    assert!((1e-16..=1e-8).contains(&p50), "p50 {p50}");
}

#[test]
fn json_snapshot_has_expected_shape() {
    let reg = Registry::new();
    reg.counter("solver.fdfd.solves").add(3);
    reg.gauge("train.loss").set(0.25);
    reg.histogram("solver.fdfd.solve_seconds").record(0.012);
    let json = reg.to_json();

    // Top-level sections in sorted order.
    assert!(json.starts_with("{\"counters\":{"));
    assert!(json.contains("\"gauges\":{"));
    assert!(json.contains("\"histograms\":{"));
    // Instruments by name with their values.
    assert!(json.contains("\"solver.fdfd.solves\":3"));
    assert!(json.contains("\"train.loss\":0.25"));
    assert!(json.contains("\"solver.fdfd.solve_seconds\":{\"count\":1,"));
    for key in [
        "\"mean\":",
        "\"min\":",
        "\"max\":",
        "\"p50\":",
        "\"p90\":",
        "\"p99\":",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    // Balanced braces (cheap well-formedness check, no parser dependency).
    let open = json.matches('{').count();
    let close = json.matches('}').count();
    assert_eq!(open, close);
    // Pretty form carries the same content.
    let pretty = reg.to_json_pretty();
    assert!(pretty.contains("\"solver.fdfd.solves\": 3"));
}

#[test]
fn json_escapes_exotic_names() {
    let reg = Registry::new();
    reg.counter("weird\"name\\with\nstuff").inc();
    let json = reg.to_json();
    assert!(json.contains("\"weird\\\"name\\\\with\\nstuff\":1"));
}

#[test]
fn counters_survive_multithreaded_hammering() {
    let reg = Arc::new(Registry::new());
    let threads = 8;
    let per_thread = 10_000;
    let mut handles = Vec::new();
    for _ in 0..threads {
        let reg = Arc::clone(&reg);
        handles.push(thread::spawn(move || {
            // Mix of cached-handle and by-name increments plus histogram
            // records, to contend on both the atomics and the registry map.
            let c = reg.counter("hammer");
            let h = reg.histogram("hammer.values");
            for k in 0..per_thread {
                if k % 2 == 0 {
                    c.inc();
                } else {
                    reg.counter("hammer").inc();
                }
                h.record((k % 100) as f64 * 1e-4);
            }
        }));
    }
    for handle in handles {
        handle.join().expect("hammer thread");
    }
    assert_eq!(reg.counter_value("hammer"), Some(threads * per_thread));
    let snap = reg.histogram_snapshot("hammer.values").unwrap();
    assert_eq!(snap.count, threads * per_thread);
}

#[test]
fn spans_nest_and_record() {
    recorder::enable();
    {
        let _outer = maps_obs::span("outer").field("k", 1);
        let _inner = maps_obs::span("inner");
    }
    let spans = recorder::take();
    recorder::disable();
    // Inner drops first.
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, vec!["inner", "outer"]);
    assert_eq!(spans[0].depth, 1);
    assert_eq!(spans[1].depth, 0);
    assert_eq!(spans[1].field("k"), Some("1"));
    // Durations recorded into the global registry as well.
    let snap = maps_obs::global()
        .histogram_snapshot("span.outer.seconds")
        .expect("span histogram registered");
    assert!(snap.count >= 1);
}

#[test]
fn gauge_is_last_write_wins() {
    let reg = Registry::new();
    let g = reg.gauge("g");
    g.set(1.5);
    g.set(-2.25);
    assert_eq!(g.get(), -2.25);
    assert_eq!(reg.gauge_value("g"), Some(-2.25));
}

#[test]
fn empty_registry_serializes_cleanly() {
    let reg = Registry::new();
    assert_eq!(
        reg.to_json(),
        "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
    );
}
