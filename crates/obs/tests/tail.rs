//! Tail-based sampling: spans of a pending flow are buffered until
//! `close_flow` decides retain-or-discard, and the pending set is bounded.
//!
//! These tests own the global recorder, so they serialize on a lock and
//! live in their own test binary.

use maps_obs::recorder;
use std::sync::Mutex;

static RECORDER_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn retained_flow_flushes_into_the_ring_and_unretained_is_discarded() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    recorder::enable();

    // A "slow" request: root span opens a fresh flow, tail sampling parks
    // the whole tree, and close_flow(.., true) flushes it.
    let slow_flow = {
        let root = maps_obs::span("req.slow");
        let flow = root.flow();
        assert_ne!(flow, 0, "root span must mint a flow id");
        recorder::begin_flow(flow);
        let _child = maps_obs::span("work.slow");
        flow
    };
    assert_eq!(recorder::pending_spans(), 2, "child + root buffered");
    assert!(
        recorder::snapshot().is_empty(),
        "pending spans must not be visible in the ring"
    );
    let flushed = recorder::close_flow(slow_flow, true);
    assert_eq!(flushed, 2);

    // A "fast" request: same shape, but the decision is to discard.
    let fast_flow = {
        let root = maps_obs::span("req.fast");
        let flow = root.flow();
        recorder::begin_flow(flow);
        let _child = maps_obs::span("work.fast");
        flow
    };
    let discarded = recorder::close_flow(fast_flow, false);
    assert_eq!(discarded, 2);
    assert_eq!(recorder::pending_flows(), 0);

    let names: Vec<String> = recorder::snapshot()
        .iter()
        .map(|s| s.name.clone())
        .collect();
    assert!(names.contains(&"req.slow".to_string()), "{names:?}");
    assert!(names.contains(&"work.slow".to_string()), "{names:?}");
    assert!(!names.iter().any(|n| n.contains("fast")), "{names:?}");
    // Closing an unknown or already-closed flow is a harmless no-op.
    assert_eq!(recorder::close_flow(slow_flow, true), 0);
    recorder::disable();
}

#[test]
fn per_flow_span_buffer_is_capped() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    recorder::enable();
    let flow = {
        let root = maps_obs::span("req.spanhappy");
        let flow = root.flow();
        recorder::begin_flow(flow);
        for _ in 0..(recorder::MAX_SPANS_PER_FLOW + 16) {
            let _child = maps_obs::span("work.tiny");
        }
        flow
    };
    assert!(
        recorder::pending_spans() <= recorder::MAX_SPANS_PER_FLOW,
        "pending occupancy {} exceeds the per-flow cap",
        recorder::pending_spans()
    );
    assert!(recorder::dropped() > 0, "overflow must be counted");
    let flushed = recorder::close_flow(flow, true);
    assert!(flushed <= recorder::MAX_SPANS_PER_FLOW);
    recorder::disable();
}

#[test]
fn pending_flow_set_evicts_oldest_at_the_cap() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    recorder::enable();
    // Flow ids here are synthetic: begin_flow takes any nonzero id.
    for flow in 1..=(recorder::MAX_PENDING_FLOWS as u64 + 8) {
        recorder::begin_flow(flow);
    }
    assert_eq!(recorder::pending_flows(), recorder::MAX_PENDING_FLOWS);
    // The oldest flows were evicted wholesale; closing them finds nothing.
    assert_eq!(recorder::close_flow(1, true), 0);
    // A survivor closes normally (it simply had no spans buffered).
    let survivor = recorder::MAX_PENDING_FLOWS as u64 + 8;
    assert_eq!(recorder::close_flow(survivor, false), 0);
    assert_eq!(recorder::pending_flows(), recorder::MAX_PENDING_FLOWS - 1);
    recorder::disable();
    assert_eq!(recorder::pending_flows(), 0, "disable clears pending flows");

    // With the recorder off, begin_flow is a no-op and spans flow straight
    // through (and are then ignored by the disabled ring).
    recorder::begin_flow(42);
    assert_eq!(recorder::pending_flows(), 0);
}
