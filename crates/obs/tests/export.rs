//! Integration tests of the flight recorder and its exporters: the Chrome
//! trace JSON must parse with the workspace JSON parser and respect the
//! timing/nesting invariants Perfetto relies on, the ring must drop oldest
//! first, profiles must agree with the span histograms, and series CSVs
//! must round-trip exactly.

use maps_obs::recorder;
use serde::Value;
use std::sync::Mutex;
use std::time::Duration;

/// The recorder and series registry are process-wide; tests that use them
/// serialize on this lock so captures don't interleave.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn nested_workload() {
    let _run = maps_obs::span("test.run").field("grid", "8x8");
    for k in 0..3 {
        let _iter = maps_obs::span("test.iteration").field("k", k);
        let _solve = maps_obs::span("test.solve");
        std::hint::black_box((0..500).map(|i| f64::from(i).sqrt()).sum::<f64>());
    }
}

#[test]
fn chrome_trace_parses_and_nests() {
    let _guard = RECORDER_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    recorder::enable();
    nested_workload();
    std::thread::spawn(nested_workload).join().unwrap();
    let spans = recorder::take();
    recorder::disable();

    let json = maps_obs::chrome_trace(&spans);
    let value: Value = serde_json::from_str(&json).expect("trace JSON parses");
    let events = value
        .field("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    assert_eq!(events.len(), spans.len());
    // 2 workloads x (1 run + 3 iterations + 3 solves)
    assert_eq!(events.len(), 14);

    // (tid, ts, end, depth-ish) triples for nesting checks below.
    let mut parsed = Vec::new();
    for ev in events {
        assert_eq!(ev.field("ph").unwrap().as_str().unwrap(), "X");
        let ts = ev.field("ts").unwrap().as_f64().unwrap();
        let dur = ev.field("dur").unwrap().as_f64().unwrap();
        let tid = ev.field("tid").unwrap().as_f64().unwrap();
        assert!(ts >= 0.0, "ts must be non-negative, got {ts}");
        assert!(dur >= 0.0, "dur must be non-negative, got {dur}");
        parsed.push((tid as u64, ts, ts + dur));
    }

    // Same-tid complete events must be disjoint or strictly nested —
    // Perfetto renders overlapping siblings as garbage.
    for (i, &(tid_a, s_a, e_a)) in parsed.iter().enumerate() {
        for &(tid_b, s_b, e_b) in &parsed[i + 1..] {
            if tid_a != tid_b {
                continue;
            }
            let disjoint = e_a <= s_b || e_b <= s_a;
            let nested = (s_a <= s_b && e_b <= e_a) || (s_b <= s_a && e_a <= e_b);
            assert!(
                disjoint || nested,
                "events overlap without nesting: [{s_a},{e_a}] vs [{s_b},{e_b}] on tid {tid_a}"
            );
        }
    }

    // Both the main thread and the spawned thread appear.
    let mut tids: Vec<u64> = parsed.iter().map(|p| p.0).collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len(), 2, "expected two distinct tids, got {tids:?}");

    // Span fields ride along as args, after the stitching coordinates.
    assert!(json.contains("\"grid\":\"8x8\""), "{json}");
    assert!(json.contains("\"span_id\":"), "{json}");
    assert!(json.contains("\"flow\":"), "{json}");
    assert_eq!(
        value
            .field("otherData")
            .and_then(|o| o.field("dropped_spans"))
            .unwrap()
            .as_f64()
            .unwrap(),
        0.0
    );
}

#[test]
fn children_nest_inside_parents_on_same_tid() {
    let _guard = RECORDER_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    recorder::enable();
    nested_workload();
    let spans = recorder::take();
    recorder::disable();

    // Completion order is children-first; reconstruct parentage from depth
    // and check interval containment in the exported timebase.
    for (i, span) in spans.iter().enumerate() {
        if span.depth == 0 {
            continue;
        }
        let parent = spans[i..]
            .iter()
            .find(|p| p.thread_id == span.thread_id && p.depth == span.depth - 1)
            .expect("parent completes after child");
        assert!(
            parent.begin <= span.begin && span.end() <= parent.end(),
            "child [{:?},{:?}] escapes parent [{:?},{:?}]",
            span.begin,
            span.end(),
            parent.begin,
            parent.end()
        );
    }
}

#[test]
fn ring_drops_oldest_first() {
    let _guard = RECORDER_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    recorder::set_capacity(4);
    recorder::enable();
    for k in 0..10 {
        let _s = maps_obs::span(format!("ring.{k}"));
    }
    let spans = recorder::take();
    let dropped_seen_by_trace = {
        // take() resets the dropped count, so recompute from lengths.
        10 - spans.len()
    };
    recorder::disable();
    recorder::set_capacity(recorder::DEFAULT_CAPACITY);

    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, vec!["ring.6", "ring.7", "ring.8", "ring.9"]);
    assert_eq!(dropped_seen_by_trace, 6);
}

#[test]
fn profile_totals_agree_with_span_histograms() {
    let _guard = RECORDER_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    recorder::enable();
    {
        let _a = maps_obs::span("agree.outer");
        let _b = maps_obs::span("agree.inner");
        std::thread::sleep(Duration::from_millis(2));
    }
    let spans = recorder::take();
    recorder::disable();

    let entries = maps_obs::profile(&spans);
    for entry in entries.iter().filter(|e| e.name.starts_with("agree.")) {
        let snap = maps_obs::global()
            .histogram_snapshot(&format!("span.{}.seconds", entry.name))
            .expect("span histogram exists");
        // The histogram accumulates across the whole test process; the
        // capture window saw `entry.count` of those calls and the profile
        // total must stay within the histogram's observed envelope.
        assert!(snap.count >= entry.count);
        let total = entry.total.as_secs_f64();
        assert!(
            total <= snap.max * snap.count as f64 + 1e-9,
            "profile total {total} exceeds histogram envelope"
        );
        assert!(
            total >= snap.min * entry.count as f64 - 1e-9,
            "profile total {total} below histogram envelope"
        );
        // Self time never exceeds inclusive time.
        assert!(entry.self_time <= entry.total);
    }
    // The inner span's time is subtracted from the outer's self time.
    let outer = entries.iter().find(|e| e.name == "agree.outer").unwrap();
    let inner = entries.iter().find(|e| e.name == "agree.inner").unwrap();
    assert!(outer.self_time <= outer.total - inner.total + Duration::from_micros(1));
}

#[test]
fn series_csv_roundtrips_through_files() {
    let _guard = RECORDER_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    maps_obs::series_reset();
    let s = maps_obs::series("roundtrip.objective");
    let values = [0.1, 0.30000000000000004, -1.5e-17, 2.2250738585072014e-308];
    for (step, v) in values.iter().enumerate() {
        s.push(step as u64, *v);
    }
    let dir = std::env::temp_dir().join(format!("maps-series-{}", std::process::id()));
    let written = maps_obs::write_series_csv(&dir).expect("series export");
    assert_eq!(written.len(), 1);
    let body = std::fs::read_to_string(&written[0]).unwrap();
    let mut lines = body.lines();
    assert_eq!(lines.next(), Some("step,value"));
    for (k, line) in lines.enumerate() {
        let (step, value) = line.split_once(',').unwrap();
        assert_eq!(step.parse::<u64>().unwrap(), k as u64);
        let parsed: f64 = value.parse().unwrap();
        assert_eq!(parsed.to_bits(), values[k].to_bits(), "row {k}: {line}");
    }
    std::fs::remove_dir_all(&dir).ok();
    maps_obs::series_reset();
}

#[test]
fn collapsed_stacks_cover_all_self_time() {
    let _guard = RECORDER_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    recorder::enable();
    nested_workload();
    let spans = recorder::take();
    recorder::disable();

    let folded = maps_obs::collapsed_stacks(&spans);
    // Every line is `path self_us` with a semicolon-joined path rooted at
    // the outermost span.
    let mut total_us = 0u128;
    for line in folded.lines() {
        let (path, weight) = line.rsplit_once(' ').expect("path and weight");
        assert!(path.starts_with("test.run"), "unrooted stack: {line}");
        total_us += weight.parse::<u128>().expect("numeric weight");
    }
    // Self times partition inclusive time: their sum can't exceed the
    // total duration of root spans (truncation to whole µs loses <1µs/span).
    let root_total: u128 = spans
        .iter()
        .filter(|s| s.depth == 0)
        .map(|s| s.duration.as_micros())
        .sum();
    assert!(
        total_us <= root_total + spans.len() as u128,
        "folded self time {total_us}µs exceeds root total {root_total}µs"
    );
}
