//! `mapsd` — a fault-tolerant persistent solve daemon for the MAPS
//! stack.
//!
//! Inverse-design loops and dataset-labeling campaigns issue thousands of
//! FDFD solves with heavy repetition in (ε, ω). Running each as a fresh
//! process forfeits the factor cache and gives every caller its own
//! failure handling. `mapsd` keeps one warm process that:
//!
//! - **Coalesces** concurrent identical work: requests sharing a
//!   factorization fingerprint elect a single-flight leader in the fdfd
//!   factor cache; followers share its result
//!   (`mapsd.coalesce.{leader,follower,hit}`).
//! - **Sheds** load it cannot serve promptly: a bounded queue
//!   (`MAPS_D_QUEUE`) and per-client quotas (`MAPS_D_CLIENT_QUOTA`)
//!   answer overload with 429 immediately instead of stretching latency.
//! - **Honors deadlines**: `deadline_ms` in the request envelope is
//!   enforced at dequeue and between recovery attempts; late work is
//!   dropped and counted, never silently delivered.
//! - **Degrades gracefully**: a breaker-guarded direct rung falls back to
//!   the `RobustSolver` ladder (relaxed iterative, then the fallback
//!   solver), and every response carries the fidelity actually served.
//! - **Stops cleanly**: drain-on-stop answers every admitted job;
//!   `GET /readyz` folds daemon state into the watchdog readiness.
//!
//! Protocol: HTTP/1.1 + JSON over TCP, std-only (the `maps-obs`
//! machinery). Routes: `POST /solve`, `POST /batch`, `POST /label`,
//! `POST /shutdown`, `GET /readyz`, plus the full telemetry surface
//! (`/metrics`, `/healthz`, `/trace`, `/snapshot`, `/series/*`).
//!
//! ```no_run
//! use maps_mapsd::{http_post, serve, DaemonConfig};
//!
//! let daemon = serve(DaemonConfig {
//!     addr: "127.0.0.1:0".to_string(),
//!     ..DaemonConfig::default()
//! })?;
//! let addr = daemon.local_addr().to_string();
//! let (status, body) = http_post(
//!     &addr,
//!     "/solve",
//!     r#"{"nx":64,"ny":48,"dx":0.05,"eps":1.0,"omega":4.05,"deadline_ms":2000}"#,
//! )?;
//! assert_eq!(status, 200);
//! assert!(body.contains("\"fidelity\""));
//! daemon.stop();
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod service;

pub use client::{http_get, http_post};
pub use protocol::{
    parse_envelope, render_job_result, render_shed, Envelope, ErrorKind, JobKind, JobResult,
    SolveResult, SolveSpec, Timings,
};
pub use queue::{ClientPermit, Job, QueueConfig, Shed, WorkQueue};
pub use server::{serve, serve_with, Daemon, DaemonConfig, TailConfig};
pub use service::{Breaker, ServiceFactory, SolveService};
