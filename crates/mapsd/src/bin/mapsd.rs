//! The `mapsd` daemon binary.
//!
//! ```text
//! MAPS_D_ADDR=127.0.0.1:9103 MAPS_D_WORKERS=4 mapsd
//! ```
//!
//! Configuration is entirely env-driven (`MAPS_D_*` for the daemon,
//! `MAPS_SOLVE_*` for the recovery ladder, `MAPS_TRACE`/`MAPS_METRICS*`
//! for telemetry export). The bound address is printed on startup — with
//! `MAPS_D_ADDR=127.0.0.1:0` that is how scripts discover the ephemeral
//! port. `POST /shutdown` drains and exits; telemetry is exported on the
//! way out.

use maps_mapsd::{serve, DaemonConfig};

fn main() -> std::io::Result<()> {
    // Tracing: MAPS_TRACE (and the other export knobs) imply recording.
    if std::env::var_os("MAPS_TRACE").is_some() {
        maps_obs::recorder::enable();
    }
    let _watchdog = maps_obs::watchdog::start_from_env();

    let config = DaemonConfig::from_env();
    let daemon = serve(config)?;
    // Parsed by scripts (check.sh) to discover the ephemeral port.
    println!("mapsd listening on {}", daemon.local_addr());

    daemon.wait_for_shutdown();
    eprintln!("mapsd: shutdown requested, draining");
    daemon.stop();

    match maps_obs::export_from_env() {
        Ok(paths) => {
            for p in paths {
                eprintln!("mapsd: exported {}", p.display());
            }
        }
        Err(e) => eprintln!("mapsd: telemetry export failed: {e}"),
    }
    // Drain the access-log writer so the JSONL on disk reconciles with the
    // requests served (MAPS_ACCESS_LOG; a no-op when unconfigured).
    if !maps_obs::flush_access_log(std::time::Duration::from_secs(5)) {
        eprintln!("mapsd: access log flush timed out");
    }
    Ok(())
}
