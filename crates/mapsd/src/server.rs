//! The daemon: accept loop, worker pool, routing, and lifecycle.
//!
//! ```text
//!   client ──POST /solve──▶ connection thread ──submit──▶ WorkQueue
//!                                │    ▲                      │ pop
//!                                │    └──JobResult── worker thread
//!                                ▼                     (SolveService)
//!                           HTTP response
//! ```
//!
//! Connection threads do admission and I/O only; workers own the solving
//! machinery (one [`SolveService`] each, built on the worker's thread by
//! the [`ServiceFactory`]). The handoff is a bounded channel per request,
//! so a worker never blocks on a slow client for longer than one send.
//!
//! Lifecycle: [`Daemon::stop`] (or a `POST /shutdown`) stops admissions,
//! drains the queue — every admitted job is answered — then joins the
//! accept loop, the workers, and waits out in-flight connections.
//! `GET /readyz` extends the PR 6 watchdog readiness with daemon state:
//! draining or a saturated queue reports 503 before clients pile on.

use crate::protocol::{parse_envelope, render_job_result, render_shed, JobKind, JobResult};
use crate::queue::{QueueConfig, WorkQueue};
use crate::service::{Breaker, ServiceFactory, SolveService};
use maps_obs::{read_request, readiness_response, telemetry_response, write_response, Request};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon sizing and bind address.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address; port 0 picks an ephemeral port (the bound address is
    /// reported by [`Daemon::local_addr`]).
    pub addr: String,
    /// Worker (solver) threads.
    pub workers: usize,
    /// Maximum accepted request body, bytes.
    pub max_body: usize,
    /// Admission-control sizing.
    pub queue: QueueConfig,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:9103".to_string(),
            workers: 4,
            max_body: 4 << 20,
            queue: QueueConfig::default(),
        }
    }
}

impl DaemonConfig {
    /// Reads `MAPS_D_ADDR`, `MAPS_D_WORKERS`, `MAPS_D_MAX_BODY`,
    /// `MAPS_D_QUEUE`, and `MAPS_D_CLIENT_QUOTA`, warning once per
    /// malformed value and keeping the defaults.
    pub fn from_env() -> Self {
        let d = DaemonConfig::default();
        DaemonConfig {
            addr: std::env::var("MAPS_D_ADDR").unwrap_or(d.addr),
            workers: maps_obs::parse_env_or("MAPS_D_WORKERS", d.workers).max(1),
            max_body: maps_obs::parse_env_or("MAPS_D_MAX_BODY", d.max_body).max(1024),
            queue: QueueConfig::from_env(),
        }
    }
}

/// A running daemon; dropping it without [`Daemon::stop`] detaches the
/// threads (they exit with the process).
pub struct Daemon {
    addr: SocketAddr,
    queue: Arc<WorkQueue>,
    accepting: Arc<AtomicBool>,
    shutdown: Arc<(Mutex<bool>, Condvar)>,
    conn_count: Arc<AtomicUsize>,
    accept_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Starts a daemon with the production [`SolveService`].
///
/// # Errors
///
/// I/O errors from binding the listen address.
pub fn serve(config: DaemonConfig) -> io::Result<Daemon> {
    let breaker = Breaker::from_env();
    serve_with(
        config,
        Arc::new(move || SolveService::from_env(Arc::clone(&breaker))),
    )
}

/// Starts a daemon whose workers build their service from `factory` —
/// the hook tests and chaos harnesses use to inject faulty solvers.
///
/// # Errors
///
/// I/O errors from binding the listen address.
pub fn serve_with(config: DaemonConfig, factory: ServiceFactory) -> io::Result<Daemon> {
    register_counters();
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let queue = WorkQueue::new(config.queue);
    let accepting = Arc::new(AtomicBool::new(true));
    let shutdown = Arc::new((Mutex::new(false), Condvar::new()));
    let conn_count = Arc::new(AtomicUsize::new(0));

    let workers = (0..config.workers)
        .map(|i| {
            let queue = Arc::clone(&queue);
            let factory = Arc::clone(&factory);
            std::thread::Builder::new()
                .name(format!("mapsd-worker-{i}"))
                .spawn(move || worker_loop(&queue, &factory()))
                .expect("spawn worker")
        })
        .collect();

    let accept_handle = {
        let queue = Arc::clone(&queue);
        let accepting = Arc::clone(&accepting);
        let shutdown = Arc::clone(&shutdown);
        let conn_count = Arc::clone(&conn_count);
        let max_body = config.max_body;
        std::thread::Builder::new()
            .name("mapsd-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if !accepting.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let queue = Arc::clone(&queue);
                    let accepting = Arc::clone(&accepting);
                    let shutdown = Arc::clone(&shutdown);
                    conn_count.fetch_add(1, Ordering::SeqCst);
                    let conn_counter = Arc::clone(&conn_count);
                    let spawned = std::thread::Builder::new()
                        .name("mapsd-conn".to_string())
                        .spawn(move || {
                            handle_connection(stream, &queue, &accepting, &shutdown, max_body);
                            conn_counter.fetch_sub(1, Ordering::SeqCst);
                        });
                    if spawned.is_err() {
                        conn_count.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            })
            .expect("spawn accept loop")
    };

    Ok(Daemon {
        addr,
        queue,
        accepting,
        shutdown,
        conn_count,
        accept_handle: Some(accept_handle),
        workers,
    })
}

impl Daemon {
    /// The actually-bound listen address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's admission queue (for introspection in tests).
    pub fn queue(&self) -> &Arc<WorkQueue> {
        &self.queue
    }

    /// Blocks until a client POSTs `/shutdown` (or `notify_shutdown` is
    /// called from another thread).
    pub fn wait_for_shutdown(&self) {
        let (lock, cvar) = &*self.shutdown;
        let mut requested = lock.lock().expect("shutdown flag");
        while !*requested {
            requested = cvar.wait(requested).expect("shutdown flag");
        }
    }

    /// Requests shutdown programmatically (same effect as `POST /shutdown`).
    pub fn notify_shutdown(&self) {
        notify(&self.shutdown);
    }

    /// Graceful stop: refuse new work, answer everything already admitted,
    /// then join every thread.
    pub fn stop(mut self) {
        self.accepting.store(false, Ordering::SeqCst);
        self.queue.drain();
        // Unblock the accept loop with a self-connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.queue.wait_idle(Duration::from_secs(10));
        // Let in-flight connection threads finish writing their responses.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.conn_count.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

fn notify(shutdown: &Arc<(Mutex<bool>, Condvar)>) {
    let (lock, cvar) = &**shutdown;
    *lock.lock().expect("shutdown flag") = true;
    cvar.notify_all();
}

/// One worker: pop, enforce the deadline at dequeue, solve, respond.
fn worker_loop(queue: &Arc<WorkQueue>, service: &SolveService) {
    while let Some(active) = queue.pop() {
        let job = &active.job;
        let queue_ms = job.accepted.elapsed().as_secs_f64() * 1e3;
        maps_obs::histogram("mapsd.queue_ms").record(queue_ms);
        // A request whose deadline passed while queued is answered (408)
        // without solving: late results are work nobody will read.
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            maps_obs::counter("mapsd.deadline.dropped_at_dequeue").inc();
            let rejected = JobResult::rejected(
                job.envelope.id.clone(),
                408,
                queue_ms,
                "deadline passed while queued".to_string(),
            );
            send_result(job.respond.send(rejected));
            continue;
        }
        let result = service.execute(&job.envelope, queue_ms, job.deadline);
        maps_obs::counter("mapsd.jobs.done").inc();
        send_result(job.respond.send(result));
    }
}

fn send_result(sent: Result<(), std::sync::mpsc::SendError<JobResult>>) {
    if sent.is_err() {
        // The connection handler is gone (client hung up); the computed
        // result is dropped, and counted so operators can see waste.
        maps_obs::counter("mapsd.response.dropped").inc();
    }
}

fn handle_connection(
    mut stream: TcpStream,
    queue: &Arc<WorkQueue>,
    accepting: &Arc<AtomicBool>,
    shutdown: &Arc<(Mutex<bool>, Condvar)>,
    max_body: usize,
) {
    let client = stream
        .peer_addr()
        .map(|a| a.ip().to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    // read_request answers malformed/oversized requests itself.
    let Ok(Some(req)) = read_request(&mut stream, max_body) else {
        return;
    };
    maps_obs::counter("mapsd.requests").inc();
    let _span = maps_obs::span("mapsd.request");

    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/solve") => handle_job(&mut stream, queue, &client, JobKind::Solve, &req),
        ("POST", "/batch") => handle_job(&mut stream, queue, &client, JobKind::Batch, &req),
        ("POST", "/label") => handle_job(&mut stream, queue, &client, JobKind::Label, &req),
        ("POST", "/shutdown") => {
            notify(shutdown);
            let _ = write_response(&mut stream, 202, "text/plain", "draining\n");
        }
        ("GET", "/readyz") => {
            let mut extras = Vec::new();
            if queue.is_draining() || !accepting.load(Ordering::SeqCst) {
                extras.push("daemon is draining".to_string());
            } else if queue.is_saturated() {
                extras.push(format!(
                    "queue saturated (depth {}/{})",
                    queue.depth(),
                    queue.config().depth
                ));
            }
            let (status, ctype, body) = readiness_response(&extras);
            let _ = write_response(&mut stream, status, ctype, &body);
        }
        ("GET", _) => match telemetry_response(&req) {
            Some((status, ctype, body)) => {
                let _ = write_response(&mut stream, status, ctype, &body);
            }
            None => {
                let _ = write_response(&mut stream, 404, "text/plain", "not found\n");
            }
        },
        _ => {
            let _ = write_response(&mut stream, 405, "text/plain", "method not allowed\n");
        }
    }
}

/// Admission + response for the three job routes.
fn handle_job(
    stream: &mut TcpStream,
    queue: &Arc<WorkQueue>,
    client: &str,
    kind: JobKind,
    req: &Request,
) {
    let envelope = match parse_envelope(kind, &req.body_str()) {
        Ok(env) => env,
        Err(reason) => {
            maps_obs::counter("mapsd.requests.malformed").inc();
            let body = render_shed(&format!("invalid request: {reason}"));
            let _ = write_response(stream, 400, "application/json", &body);
            return;
        }
    };
    // The deadline clock starts at admission: queue time spends it too.
    let deadline = envelope
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    match queue.submit_job(client, envelope, deadline) {
        Err(shed) => {
            let _ = write_response(
                stream,
                shed.http_status(),
                "application/json",
                &render_shed(shed.reason()),
            );
        }
        Ok((rx, _permit)) => {
            // The worker sends exactly one result; if it panics the sender
            // drops and recv errors out — answer 500, never hang.
            match rx.recv() {
                Ok(result) => {
                    let _ = write_response(
                        stream,
                        result.status,
                        "application/json",
                        &render_job_result(&result),
                    );
                }
                Err(_) => {
                    let _ = write_response(
                        stream,
                        500,
                        "application/json",
                        &render_shed("worker failed"),
                    );
                }
            }
            // _permit drops here: the client's quota slot covers queueing,
            // solving, and the response write.
        }
    }
}

/// Registers every `mapsd.*` metric at zero so `/metrics` exposes the
/// full set from the first scrape — scrapers and the check.sh smoke can
/// assert on presence, not just on eventual increments.
fn register_counters() {
    for name in [
        "mapsd.requests",
        "mapsd.requests.malformed",
        "mapsd.jobs.done",
        "mapsd.shed",
        "mapsd.shed.queue_full",
        "mapsd.shed.client_quota",
        "mapsd.shed.draining",
        "mapsd.coalesce.hit",
        "mapsd.coalesce.leader",
        "mapsd.coalesce.follower",
        "mapsd.degraded.relaxed",
        "mapsd.degraded.fallback",
        "mapsd.deadline.dropped_at_dequeue",
        "mapsd.deadline.dropped_mid_job",
        "mapsd.direct.failed",
        "mapsd.direct.bypassed",
        "mapsd.breaker.opened",
        "mapsd.breaker.probe",
        "mapsd.breaker.skipped",
        "mapsd.prewarm.failed",
        "mapsd.response.dropped",
    ] {
        maps_obs::counter(name).add(0);
    }
    maps_obs::gauge("mapsd.queue.depth").set(0.0);
}
