//! The daemon: accept loop, worker pool, routing, and lifecycle.
//!
//! ```text
//!   client ──POST /solve──▶ connection thread ──submit──▶ WorkQueue
//!                                │    ▲                      │ pop
//!                                │    └──JobResult── worker thread
//!                                ▼                     (SolveService)
//!                           HTTP response
//! ```
//!
//! Connection threads do admission and I/O only; workers own the solving
//! machinery (one [`SolveService`] each, built on the worker's thread by
//! the [`ServiceFactory`]). The handoff is a bounded channel per request,
//! so a worker never blocks on a slow client for longer than one send.
//!
//! Lifecycle: [`Daemon::stop`] (or a `POST /shutdown`) stops admissions,
//! drains the queue — every admitted job is answered — then joins the
//! accept loop, the workers, and waits out in-flight connections.
//! `GET /readyz` extends the PR 6 watchdog readiness with daemon state:
//! draining or a saturated queue reports 503 before clients pile on.
//!
//! # Per-request observability
//!
//! Every admission to a job route opens a root `mapsd.request` span whose
//! flow id follows the job across the queue, the worker, and the rayon
//! ω-buckets (workers adopt the admission-time [`TaskContext`] stored on
//! the job). The response echoes a `trace_id` — the client's, or one the
//! daemon mints — plus a `timings` breakdown, and the handler emits exactly
//! **one** canonical wide event per admission ([`maps_obs::reqlog`]),
//! including sheds, deadline drops, and malformed bodies, so
//! `GET /requests` reconciles exactly with `mapsd.requests` counters.
//!
//! Span trees are *tail-sampled* ([`TailConfig`]): buffered per flow while
//! the request runs, then retained only when the request was slow
//! (`MAPS_TAIL_SLOW_MS`, per-endpoint overrides), errored or degraded, a
//! p99 latency outlier, or head-sampled (`MAPS_TRACE_SAMPLE` = keep 1 in
//! N). Retained requests stamp an OpenMetrics exemplar with their trace id
//! onto the `mapsd.request.total_ms` histogram, linking `/metrics` latency
//! spikes back to `/trace`.

use crate::protocol::{parse_envelope, render_job_result, render_shed, JobKind, JobResult};
use crate::queue::{QueueConfig, WorkQueue};
use crate::service::{Breaker, ServiceFactory, SolveService};
use maps_obs::{
    read_request, readiness_response, recorder, reqlog, telemetry_response, write_response,
    Request, TaskContext,
};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Tail-based trace sampling policy: which requests keep their span trees.
///
/// The decision runs at request *close*, when the outcome is known — that
/// is what "tail-based" means. While a request runs its spans are parked in
/// the recorder's pending buffer ([`recorder::begin_flow`]); at close the
/// tree is flushed into the ring or discarded wholesale:
///
/// - **slow**: total latency ≥ the endpoint's threshold (`MAPS_TAIL_SLOW_MS`,
///   either one number for all endpoints or a `solve=100,batch=250` list);
/// - **errored/degraded**: non-200 status or any excitation served below
///   `direct` fidelity;
/// - **outlier**: above the live p99 of `mapsd.request.total_ms` (so the
///   tail of the distribution is always explorable even when every request
///   beats the static threshold);
/// - **head-sampled**: every Nth admission (`MAPS_TRACE_SAMPLE=N`), keeping
///   a trickle of healthy-request traces for baseline comparison.
#[derive(Debug, Clone)]
pub struct TailConfig {
    /// Slow threshold applied to endpoints without an override,
    /// milliseconds; infinity disables slow-based retention.
    pub slow_ms: f64,
    /// Per-endpoint overrides as `(name, ms)`, names without the slash.
    pub per_endpoint: Vec<(String, f64)>,
    /// Head-sampling rate: retain every Nth admission (0 = off).
    pub sample: u64,
}

impl Default for TailConfig {
    fn default() -> Self {
        TailConfig {
            slow_ms: f64::INFINITY,
            per_endpoint: Vec::new(),
            sample: 0,
        }
    }
}

impl TailConfig {
    /// Reads `MAPS_TAIL_SLOW_MS` (a number, or a `solve=100,batch=250`
    /// list with an optional bare number as the default) and
    /// `MAPS_TRACE_SAMPLE`, warning once per malformed value.
    pub fn from_env() -> Self {
        let mut cfg = TailConfig::default();
        if let Ok(raw) = std::env::var("MAPS_TAIL_SLOW_MS") {
            match parse_slow_spec(&raw) {
                Some((slow_ms, per_endpoint)) => {
                    cfg.slow_ms = slow_ms;
                    cfg.per_endpoint = per_endpoint;
                }
                None => maps_obs::warn_invalid_env(
                    "MAPS_TAIL_SLOW_MS",
                    &raw,
                    "a nonnegative number or a name=ms list",
                ),
            }
        }
        cfg.sample = maps_obs::parse_env_or("MAPS_TRACE_SAMPLE", 0u64);
        cfg
    }

    /// The slow threshold for `endpoint` (a path like `/solve`), ms.
    pub fn slow_threshold_ms(&self, endpoint: &str) -> f64 {
        let name = endpoint.trim_start_matches('/');
        self.per_endpoint
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, ms)| *ms)
            .unwrap_or(self.slow_ms)
    }

    /// Whether any retention rule is active (if not, flows are never
    /// buffered and spans stream straight to the ring as before).
    pub fn enabled(&self) -> bool {
        self.slow_ms.is_finite() || self.sample > 0 || !self.per_endpoint.is_empty()
    }

    /// The head-sampling decision for one admission (process-wide counter,
    /// so "1 in N" holds across connection threads).
    fn head_sample(&self) -> bool {
        if self.sample == 0 {
            return false;
        }
        static ADMITTED: AtomicU64 = AtomicU64::new(0);
        ADMITTED
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.sample)
    }
}

/// Parses `MAPS_TAIL_SLOW_MS`: `"250"`, `"solve=100,batch=250"`, or a mix
/// where a bare number sets the default (`"500,solve=100"`).
fn parse_slow_spec(raw: &str) -> Option<(f64, Vec<(String, f64)>)> {
    let raw = raw.trim();
    if raw.is_empty() {
        return None;
    }
    if !raw.contains('=') {
        let ms: f64 = raw.parse().ok()?;
        return (ms >= 0.0).then_some((ms, Vec::new()));
    }
    let mut slow_ms = f64::INFINITY;
    let mut per = Vec::new();
    for part in raw.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match part.split_once('=') {
            Some((name, ms)) => {
                let ms: f64 = ms.trim().parse().ok()?;
                if ms < 0.0 {
                    return None;
                }
                per.push((name.trim().trim_start_matches('/').to_string(), ms));
            }
            None => {
                slow_ms = part.parse().ok()?;
                if slow_ms < 0.0 {
                    return None;
                }
            }
        }
    }
    Some((slow_ms, per))
}

/// Daemon sizing and bind address.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address; port 0 picks an ephemeral port (the bound address is
    /// reported by [`Daemon::local_addr`]).
    pub addr: String,
    /// Worker (solver) threads.
    pub workers: usize,
    /// Maximum accepted request body, bytes.
    pub max_body: usize,
    /// Admission-control sizing.
    pub queue: QueueConfig,
    /// Tail-based trace sampling policy.
    pub tail: TailConfig,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:9103".to_string(),
            workers: 4,
            max_body: 4 << 20,
            queue: QueueConfig::default(),
            tail: TailConfig::default(),
        }
    }
}

impl DaemonConfig {
    /// Reads `MAPS_D_ADDR`, `MAPS_D_WORKERS`, `MAPS_D_MAX_BODY`,
    /// `MAPS_D_QUEUE`, `MAPS_D_CLIENT_QUOTA`, `MAPS_TAIL_SLOW_MS`, and
    /// `MAPS_TRACE_SAMPLE`, warning once per malformed value and keeping
    /// the defaults.
    pub fn from_env() -> Self {
        let d = DaemonConfig::default();
        DaemonConfig {
            addr: std::env::var("MAPS_D_ADDR").unwrap_or(d.addr),
            workers: maps_obs::parse_env_or("MAPS_D_WORKERS", d.workers).max(1),
            max_body: maps_obs::parse_env_or("MAPS_D_MAX_BODY", d.max_body).max(1024),
            queue: QueueConfig::from_env(),
            tail: TailConfig::from_env(),
        }
    }
}

/// A running daemon; dropping it without [`Daemon::stop`] detaches the
/// threads (they exit with the process).
pub struct Daemon {
    addr: SocketAddr,
    queue: Arc<WorkQueue>,
    accepting: Arc<AtomicBool>,
    shutdown: Arc<(Mutex<bool>, Condvar)>,
    conn_count: Arc<AtomicUsize>,
    accept_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Starts a daemon with the production [`SolveService`].
///
/// # Errors
///
/// I/O errors from binding the listen address.
pub fn serve(config: DaemonConfig) -> io::Result<Daemon> {
    let breaker = Breaker::from_env();
    serve_with(
        config,
        Arc::new(move || SolveService::from_env(Arc::clone(&breaker))),
    )
}

/// Starts a daemon whose workers build their service from `factory` —
/// the hook tests and chaos harnesses use to inject faulty solvers.
///
/// # Errors
///
/// I/O errors from binding the listen address.
pub fn serve_with(config: DaemonConfig, factory: ServiceFactory) -> io::Result<Daemon> {
    register_counters();
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let queue = WorkQueue::new(config.queue);
    let accepting = Arc::new(AtomicBool::new(true));
    let shutdown = Arc::new((Mutex::new(false), Condvar::new()));
    let conn_count = Arc::new(AtomicUsize::new(0));
    let tail = Arc::new(config.tail);

    let workers = (0..config.workers)
        .map(|i| {
            let queue = Arc::clone(&queue);
            let factory = Arc::clone(&factory);
            std::thread::Builder::new()
                .name(format!("mapsd-worker-{i}"))
                .spawn(move || worker_loop(&queue, &factory()))
                .expect("spawn worker")
        })
        .collect();

    let accept_handle = {
        let queue = Arc::clone(&queue);
        let accepting = Arc::clone(&accepting);
        let shutdown = Arc::clone(&shutdown);
        let conn_count = Arc::clone(&conn_count);
        let max_body = config.max_body;
        std::thread::Builder::new()
            .name("mapsd-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if !accepting.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let queue = Arc::clone(&queue);
                    let accepting = Arc::clone(&accepting);
                    let shutdown = Arc::clone(&shutdown);
                    let tail = Arc::clone(&tail);
                    conn_count.fetch_add(1, Ordering::SeqCst);
                    let conn_counter = Arc::clone(&conn_count);
                    let spawned = std::thread::Builder::new()
                        .name("mapsd-conn".to_string())
                        .spawn(move || {
                            handle_connection(
                                stream, &queue, &accepting, &shutdown, &tail, max_body,
                            );
                            conn_counter.fetch_sub(1, Ordering::SeqCst);
                        });
                    if spawned.is_err() {
                        conn_count.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            })
            .expect("spawn accept loop")
    };

    Ok(Daemon {
        addr,
        queue,
        accepting,
        shutdown,
        conn_count,
        accept_handle: Some(accept_handle),
        workers,
    })
}

impl Daemon {
    /// The actually-bound listen address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's admission queue (for introspection in tests).
    pub fn queue(&self) -> &Arc<WorkQueue> {
        &self.queue
    }

    /// Blocks until a client POSTs `/shutdown` (or `notify_shutdown` is
    /// called from another thread).
    pub fn wait_for_shutdown(&self) {
        let (lock, cvar) = &*self.shutdown;
        let mut requested = lock.lock().expect("shutdown flag");
        while !*requested {
            requested = cvar.wait(requested).expect("shutdown flag");
        }
    }

    /// Requests shutdown programmatically (same effect as `POST /shutdown`).
    pub fn notify_shutdown(&self) {
        notify(&self.shutdown);
    }

    /// Graceful stop: refuse new work, answer everything already admitted,
    /// then join every thread.
    pub fn stop(mut self) {
        self.accepting.store(false, Ordering::SeqCst);
        self.queue.drain();
        // Unblock the accept loop with a self-connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.queue.wait_idle(Duration::from_secs(10));
        // Let in-flight connection threads finish writing their responses.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.conn_count.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

fn notify(shutdown: &Arc<(Mutex<bool>, Condvar)>) {
    let (lock, cvar) = &**shutdown;
    *lock.lock().expect("shutdown flag") = true;
    cvar.notify_all();
}

/// One worker: pop, enforce the deadline at dequeue, solve, respond.
///
/// The worker adopts the job's admission-time [`TaskContext`] for the
/// whole execution, so every span it (and the rayon pool under it) opens
/// joins the request's flow and parents under the root `mapsd.request`
/// span on the connection thread.
fn worker_loop(queue: &Arc<WorkQueue>, service: &SolveService) {
    while let Some(active) = queue.pop() {
        let job = &active.job;
        let _ctx = maps_obs::adopt_context(job.ctx);
        let queue_ms = job.accepted.elapsed().as_secs_f64() * 1e3;
        maps_obs::histogram("mapsd.queue_ms").record(queue_ms);
        // A request whose deadline passed while queued is answered (408)
        // without solving: late results are work nobody will read.
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            maps_obs::counter("mapsd.deadline.dropped_at_dequeue").inc();
            let rejected = JobResult::rejected(
                job.envelope.id.clone(),
                408,
                queue_ms,
                "deadline passed while queued".to_string(),
            );
            send_result(job.respond.send(rejected));
            continue;
        }
        let result = {
            let mut s = maps_obs::span("mapsd.execute");
            s.add_field("endpoint", job.envelope.job.path());
            service.execute(&job.envelope, queue_ms, job.deadline)
        };
        maps_obs::counter("mapsd.jobs.done").inc();
        send_result(job.respond.send(result));
    }
}

fn send_result(sent: Result<(), std::sync::mpsc::SendError<JobResult>>) {
    if sent.is_err() {
        // The connection handler is gone (client hung up); the computed
        // result is dropped, and counted so operators can see waste.
        maps_obs::counter("mapsd.response.dropped").inc();
    }
}

fn handle_connection(
    mut stream: TcpStream,
    queue: &Arc<WorkQueue>,
    accepting: &Arc<AtomicBool>,
    shutdown: &Arc<(Mutex<bool>, Condvar)>,
    tail: &TailConfig,
    max_body: usize,
) {
    let client = stream
        .peer_addr()
        .map(|a| a.ip().to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    // read_request answers malformed/oversized requests itself.
    let Ok(Some(req)) = read_request(&mut stream, max_body) else {
        return;
    };
    maps_obs::counter("mapsd.requests").inc();

    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/solve") => handle_job(&mut stream, queue, tail, &client, JobKind::Solve, &req),
        ("POST", "/batch") => handle_job(&mut stream, queue, tail, &client, JobKind::Batch, &req),
        ("POST", "/label") => handle_job(&mut stream, queue, tail, &client, JobKind::Label, &req),
        ("POST", "/shutdown") => {
            notify(shutdown);
            let _ = write_response(&mut stream, 202, "text/plain", "draining\n");
        }
        ("GET", "/readyz") => {
            let mut extras = Vec::new();
            if queue.is_draining() || !accepting.load(Ordering::SeqCst) {
                extras.push("daemon is draining".to_string());
            } else if queue.is_saturated() {
                extras.push(format!(
                    "queue saturated (depth {}/{})",
                    queue.depth(),
                    queue.config().depth
                ));
            }
            let (status, ctype, body) = readiness_response(&extras);
            let _ = write_response(&mut stream, status, ctype, &body);
        }
        ("GET", _) => match telemetry_response(&req) {
            Some((status, ctype, body)) => {
                let _ = write_response(&mut stream, status, ctype, &body);
            }
            None => {
                let _ = write_response(&mut stream, 404, "text/plain", "not found\n");
            }
        },
        _ => {
            let _ = write_response(&mut stream, 405, "text/plain", "method not allowed\n");
        }
    }
}

/// Mints a process-unique trace id for requests that did not bring one.
fn mint_trace_id() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(1);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let clock = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| (d.as_secs() << 30) ^ u64::from(d.subsec_nanos()))
        .unwrap_or(0);
    // A splitmix-style mix keeps ids visually distinct even at high rates.
    format!("{:016x}", clock ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Admission + response for the three job routes.
///
/// This is the single choke point of per-request observability: every
/// admission — parsed or malformed, solved, shed, or deadline-dropped —
/// leaves through exactly one `write_response`, one wide event, one
/// `mapsd.request.total_ms` sample, and (when tail sampling is active)
/// one retain-or-discard flow decision.
fn handle_job(
    stream: &mut TcpStream,
    queue: &Arc<WorkQueue>,
    tail: &TailConfig,
    client: &str,
    kind: JobKind,
    req: &Request,
) {
    let started = Instant::now();
    let endpoint = kind.path();
    let mut ev = reqlog::WideEvent::new();
    ev.set_f64("ts", reqlog::unix_seconds());
    ev.set_str("endpoint", endpoint);
    ev.set_str("client", client);

    let mut envelope = match parse_envelope(kind, &req.body_str()) {
        Ok(env) => env,
        Err(reason) => {
            // Malformed bodies never reach the queue, but they were still
            // admissions: answer 400 with a minted trace id and emit the
            // request's one wide event here.
            maps_obs::counter("mapsd.requests.malformed").inc();
            let trace_id = mint_trace_id();
            let body = render_shed(&format!("invalid request: {reason}"), Some(&trace_id));
            let _ = write_response(stream, 400, "application/json", &body);
            ev.set_str("trace_id", &trace_id);
            ev.set_u64("status", 400);
            ev.set_str("disposition", "malformed");
            ev.set_str("error", reason);
            ev.set_f64("total_us", started.elapsed().as_secs_f64() * 1e6);
            reqlog::record(&ev);
            return;
        }
    };

    let trace_id = envelope.trace_id.clone().unwrap_or_else(mint_trace_id);
    envelope.trace_id = Some(trace_id.clone());
    ev.set_str("trace_id", &trace_id);
    if let Some(id) = &envelope.id {
        ev.set_str("id", id);
    }
    ev.set_u64("omegas", envelope.specs.len() as u64);
    ev.set_str(
        "precision",
        if maps_fdfd::factor_cache::mixed_precision() {
            "mixed-f32"
        } else {
            "f64"
        },
    );
    ev.set_u64(
        "rhs_block",
        maps_obs::parse_env_or("MAPS_RHS_BLOCK", maps_linalg::DEFAULT_RHS_BLOCK) as u64,
    );
    let head_sampled = tail.head_sample();

    // The adoption guard is declared before the root span so drop order is
    // span first, guard second: the root closes inside the caller's
    // context, then the thread's prior context is restored.
    let _parent = envelope
        .parent_span
        .map(|p| maps_obs::adopt_context(TaskContext { flow: 0, parent: p }));
    let mut root = maps_obs::span("mapsd.request");
    root.add_field("endpoint", endpoint);
    root.add_field("trace", &trace_id);
    root.add_field("client", client);
    let flow = root.flow();
    let tail_active = tail.enabled() && recorder::is_enabled() && flow != 0;
    if tail_active {
        recorder::begin_flow(flow);
    }
    // Captured inside the root span: workers adopting this context parent
    // their spans under `mapsd.request` and join its flow.
    let ctx = maps_obs::current_context();

    // The deadline clock starts at admission: queue time spends it too.
    let deadline = envelope
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));

    let mut degraded = false;
    let status = match queue.submit_job(client, envelope, deadline, ctx) {
        Err(shed) => {
            ev.set_str("disposition", "shed");
            ev.set_str("error", shed.reason());
            let _ = write_response(
                stream,
                shed.http_status(),
                "application/json",
                &render_shed(shed.reason(), Some(&trace_id)),
            );
            shed.http_status()
        }
        Ok((rx, _permit)) => {
            // The worker sends exactly one result; if it panics the sender
            // drops and recv errors out — answer 500, never hang.
            match rx.recv() {
                Ok(mut result) => {
                    // The handler sees the full admission-to-write window;
                    // the 408 dequeue-drop path also lands here, so its
                    // response and wide event carry the trace id too.
                    result.trace_id = Some(trace_id.clone());
                    result.timings.total_us = started.elapsed().as_secs_f64() * 1e6;
                    degraded = result
                        .results
                        .iter()
                        .any(|r| matches!(r.fidelity, Some("relaxed") | Some("fallback")));
                    fill_event_from_result(&mut ev, &result, degraded);
                    let _ = write_response(
                        stream,
                        result.status,
                        "application/json",
                        &render_job_result(&result),
                    );
                    result.status
                }
                Err(_) => {
                    ev.set_str("disposition", "error");
                    ev.set_str("error", "worker failed");
                    let _ = write_response(
                        stream,
                        500,
                        "application/json",
                        &render_shed("worker failed", Some(&trace_id)),
                    );
                    500
                }
            }
            // _permit drops here: the client's quota slot covers queueing,
            // solving, and the response write.
        }
    };

    // Close the root span *before* the flow decision so it lands in the
    // pending buffer (or the ring) like every other span of the request.
    drop(root);
    let total_ms = started.elapsed().as_secs_f64() * 1e3;
    let hist = maps_obs::histogram("mapsd.request.total_ms");
    let snapshot = hist.snapshot();
    // An outlier check against the live p99 keeps the tail explorable even
    // when every request beats the static threshold; it needs some history
    // before the estimate means anything.
    let outlier = snapshot.count >= 100 && total_ms >= snapshot.p99;
    let retain = head_sampled
        || status != 200
        || degraded
        || outlier
        || total_ms >= tail.slow_threshold_ms(endpoint);
    if tail_active {
        recorder::close_flow(flow, retain);
    }
    if retain && tail_active {
        hist.record_with_exemplar(total_ms, "trace_id", &trace_id);
    } else {
        hist.record(total_ms);
    }
    ev.set_u64("status", u64::from(status));
    ev.set_bool("sampled", retain && tail_active);
    ev.set_f64("total_us", total_ms * 1e3);
    reqlog::record(&ev);
}

/// Copies the forensically interesting facts of a [`JobResult`] into the
/// request's wide event.
fn fill_event_from_result(ev: &mut reqlog::WideEvent, result: &JobResult, degraded: bool) {
    ev.set_str(
        "disposition",
        if result.status == 408 {
            "deadline"
        } else if result.status != 200 {
            "error"
        } else if degraded {
            "degraded"
        } else {
            "ok"
        },
    );
    if let Some(err) = &result.error {
        ev.set_str("error", err);
    }
    match result.results.iter().find_map(|r| r.coalesce) {
        Some(c) => ev.set_str("coalesce", c),
        None => ev.set_null("coalesce"),
    }
    ev.set_bool(
        "cache_hit",
        result.results.iter().any(|r| r.coalesce == Some("hit")),
    );
    // Worst fidelity across excitations: fallback > relaxed > direct.
    let rank = |f: Option<&str>| match f {
        Some("fallback") => 2,
        Some("relaxed") => 1,
        Some("direct") => 0,
        _ => -1,
    };
    let fidelity = result.results.iter().fold(None, |worst, r| {
        if rank(r.fidelity) > rank(worst) {
            r.fidelity
        } else {
            worst
        }
    });
    match fidelity {
        Some(f) => ev.set_str("fidelity", f),
        None => ev.set_null("fidelity"),
    }
    ev.set_u64("retries", result.retries);
    match result.results.iter().find_map(|r| r.field_norm) {
        Some(n) => ev.set_f64("field_norm", n),
        None => ev.set_null("field_norm"),
    }
    ev.set_f64("queue_us", result.timings.queue_us);
    ev.set_f64("factorize_us", result.timings.factorize_us);
    ev.set_f64("solve_us", result.timings.solve_us);
}

/// Registers every `mapsd.*` metric at zero so `/metrics` exposes the
/// full set from the first scrape — scrapers and the check.sh smoke can
/// assert on presence, not just on eventual increments.
fn register_counters() {
    for name in [
        "mapsd.requests",
        "mapsd.requests.malformed",
        "mapsd.jobs.done",
        "mapsd.shed",
        "mapsd.shed.queue_full",
        "mapsd.shed.client_quota",
        "mapsd.shed.draining",
        "mapsd.coalesce.hit",
        "mapsd.coalesce.leader",
        "mapsd.coalesce.follower",
        "mapsd.degraded.relaxed",
        "mapsd.degraded.fallback",
        "mapsd.deadline.dropped_at_dequeue",
        "mapsd.deadline.dropped_mid_job",
        "mapsd.direct.failed",
        "mapsd.direct.bypassed",
        "mapsd.breaker.opened",
        "mapsd.breaker.probe",
        "mapsd.breaker.skipped",
        "mapsd.prewarm.failed",
        "mapsd.response.dropped",
    ] {
        maps_obs::counter(name).add(0);
    }
    maps_obs::gauge("mapsd.queue.depth").set(0.0);
    // Pre-create the request-latency histogram so its (empty) summary and
    // exemplar slot are scrapeable from the first request on.
    let _ = maps_obs::histogram("mapsd.request.total_ms");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_config_parses_plain_and_per_endpoint_specs() {
        let (ms, per) = parse_slow_spec("250").unwrap();
        assert_eq!(ms, 250.0);
        assert!(per.is_empty());

        let (ms, per) = parse_slow_spec(" solve=100 , batch=250 ").unwrap();
        assert!(ms.is_infinite());
        assert_eq!(per, vec![("solve".into(), 100.0), ("batch".into(), 250.0)]);

        let (ms, per) = parse_slow_spec("500,/label=50").unwrap();
        assert_eq!(ms, 500.0);
        assert_eq!(per, vec![("label".into(), 50.0)]);

        assert!(parse_slow_spec("").is_none());
        assert!(parse_slow_spec("fast").is_none());
        assert!(parse_slow_spec("solve=-1").is_none());
    }

    #[test]
    fn slow_threshold_prefers_the_endpoint_override() {
        let tail = TailConfig {
            slow_ms: 500.0,
            per_endpoint: vec![("solve".into(), 100.0)],
            sample: 0,
        };
        assert_eq!(tail.slow_threshold_ms("/solve"), 100.0);
        assert_eq!(tail.slow_threshold_ms("/batch"), 500.0);
        assert!(tail.enabled());
        assert!(!TailConfig::default().enabled());
        assert!(TailConfig {
            sample: 8,
            ..TailConfig::default()
        }
        .enabled());
    }

    #[test]
    fn minted_trace_ids_are_distinct_hex() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
