//! The per-worker solve service: coalesced pre-warm, a direct fast path
//! behind a circuit breaker, and graceful degradation through the
//! `RobustSolver` ladder.
//!
//! Each worker thread owns one [`SolveService`] (built by a
//! [`ServiceFactory`]), so the `RobustSolver` stats deltas observed around
//! a solve are attributable to *that* request — that is how responses are
//! tagged with the fidelity actually served ("direct", "relaxed", or
//! "fallback") without racing other workers.
//!
//! The request path for one [`SolveSpec`]:
//!
//! 1. **Pre-warm** the factorization through the single-flight cache
//!    ([`maps_fdfd::factor_coalesced`]). Concurrent requests for the same
//!    (ε, ω) fingerprint elect one leader; the rest share its result. The
//!    outcome is surfaced per-response (`coalesce`) and in the
//!    `mapsd.coalesce.*` counters.
//! 2. **Direct rung**: the exact solver, guarded by a [`Breaker`] shared
//!    across workers. Consecutive retryable failures open the breaker and
//!    the rung is skipped (with periodic probes) so a sick backend does
//!    not pay a doomed full solve per request.
//! 3. **Degradation ladder**: the PR 2 `RobustSolver` chain — iterative
//!    primary with retry/relaxation, then the fallback solver — driven
//!    with the request deadline via `solve_ez_by`, so recovery never
//!    outlives the caller's patience.

use crate::protocol::{Envelope, ErrorKind, JobResult, SolveResult, SolveSpec, Timings};
use maps_core::{
    FieldSolver, RealField2d, RetryPolicy, RobustSolver, RobustStats, SolveFieldError, SolveKind,
};
use maps_fdfd::{factor_coalesced, Backend, FactorOutcome, FdfdSolver, PmlConfig};
use maps_linalg::IterativeOptions;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How many direct-rung probes are skipped per attempt while the breaker
/// is open.
const PROBE_PERIOD: u32 = 8;

/// A shared circuit breaker over the direct solve rung.
///
/// After `threshold` consecutive retryable failures the rung is skipped;
/// every [`PROBE_PERIOD`]-th request is still let through as a probe so
/// the breaker closes again once the backend recovers. All workers share
/// one breaker: a backend sick for one worker is sick for all of them.
pub struct Breaker {
    consecutive: AtomicU32,
    skipped: AtomicU32,
    threshold: u32,
}

impl Breaker {
    /// A breaker that opens after `threshold` consecutive failures
    /// (clamped to at least 1).
    pub fn new(threshold: u32) -> Arc<Self> {
        Arc::new(Breaker {
            consecutive: AtomicU32::new(0),
            skipped: AtomicU32::new(0),
            threshold: threshold.max(1),
        })
    }

    /// Reads `MAPS_D_BREAKER` (default 5) for the failure threshold.
    pub fn from_env() -> Arc<Self> {
        Breaker::new(maps_obs::parse_env_or("MAPS_D_BREAKER", 5u32))
    }

    /// Whether the direct rung should run for this request.
    pub fn allows(&self) -> bool {
        if self.consecutive.load(Ordering::Relaxed) < self.threshold {
            return true;
        }
        // Open: admit every PROBE_PERIOD-th request as a probe.
        let n = self.skipped.fetch_add(1, Ordering::Relaxed);
        if n % PROBE_PERIOD == PROBE_PERIOD - 1 {
            maps_obs::counter("mapsd.breaker.probe").inc();
            true
        } else {
            maps_obs::counter("mapsd.breaker.skipped").inc();
            false
        }
    }

    /// Records a successful direct solve, closing the breaker.
    pub fn record_success(&self) {
        self.consecutive.store(0, Ordering::Relaxed);
    }

    /// Records a retryable direct-solve failure; opens the breaker at the
    /// threshold.
    pub fn record_failure(&self) {
        let now = self.consecutive.fetch_add(1, Ordering::Relaxed) + 1;
        if now == self.threshold {
            maps_obs::counter("mapsd.breaker.opened").inc();
        }
    }

    /// True when the direct rung is currently being skipped.
    pub fn is_open(&self) -> bool {
        self.consecutive.load(Ordering::Relaxed) >= self.threshold
    }
}

/// Builds one [`SolveService`] per worker thread. The factory is invoked
/// on the worker's own thread, so the solvers it builds never need to be
/// `Send` themselves — only the factory does.
pub type ServiceFactory = Arc<dyn Fn() -> SolveService + Send + Sync>;

/// One worker's solving machinery: direct rung + degradation ladder.
pub struct SolveService {
    pml: PmlConfig,
    /// Pre-warm the factor cache through the single-flight gate before
    /// solving (off for services whose direct rung is not the FDFD LU).
    prewarm: bool,
    direct: Box<dyn FieldSolver>,
    ladder: RobustSolver<FdfdSolver>,
    breaker: Arc<Breaker>,
}

impl SolveService {
    /// The production service: FDFD direct rung, iterative ladder with a
    /// direct-LU fallback, retry policy from the `MAPS_SOLVE_*` env knobs.
    ///
    /// The fallback rung is where a trained surrogate would be slotted
    /// once one implements [`FieldSolver`]; the repo ships none, so the
    /// exact LU stands in — same contract, higher cost.
    pub fn from_env(breaker: Arc<Breaker>) -> Self {
        let ladder = RobustSolver::new(
            FdfdSolver::new().backend(Backend::Iterative(IterativeOptions::default())),
            RetryPolicy::from_env(),
        )
        .with_fallback(Box::new(FdfdSolver::new()));
        SolveService {
            pml: PmlConfig::default(),
            prewarm: true,
            direct: Box::new(FdfdSolver::new()),
            ladder,
            breaker,
        }
    }

    /// A service with a custom direct rung and ladder — the hook chaos
    /// tests use to inject faults.
    pub fn with_parts(
        direct: Box<dyn FieldSolver>,
        ladder: RobustSolver<FdfdSolver>,
        breaker: Arc<Breaker>,
        prewarm: bool,
    ) -> Self {
        SolveService {
            pml: PmlConfig::default(),
            prewarm,
            direct,
            ladder,
            breaker,
        }
    }

    /// The shared breaker this service reports to.
    pub fn breaker(&self) -> &Arc<Breaker> {
        &self.breaker
    }

    /// Runs every spec in `envelope`, producing the job's results.
    ///
    /// Multi-spec jobs (`/batch`, `/label` frequency sweeps) ride the
    /// batched solve plane in one [`FieldSolver::solve_ez_batch`] call:
    /// same-ω specs share a factorization *and* a blocked substitution
    /// pass, distinct-ω specs coalesce through the factor cache. Specs the
    /// batch cannot serve fall back to the per-spec degradation ladder, so
    /// one sick frequency never fails its neighbours.
    ///
    /// `queue_ms` is the time the job spent queued (accounted by the
    /// worker); `deadline` is the absolute per-request deadline.
    pub fn execute(
        &self,
        envelope: &Envelope,
        queue_ms: f64,
        deadline: Option<Instant>,
    ) -> JobResult {
        // Each worker owns its service, so the stats delta across this
        // execute is attributable to exactly this request.
        let ladder_before = self.ladder.stats();
        let results = if envelope.specs.len() > 1 && self.breaker.allows() {
            self.solve_batched(envelope, deadline)
        } else {
            envelope
                .specs
                .iter()
                .map(|spec| self.solve_one(&envelope.eps, spec, deadline, envelope.return_field))
                .collect()
        };
        let status = results
            .iter()
            .find_map(|r| r.error_kind.map(|k| k.http_status()))
            .unwrap_or(200);
        let retries = self
            .ladder
            .stats()
            .retries
            .saturating_sub(ladder_before.retries);
        let factorize_us: f64 = results.iter().map(|r| r.factorize_ms).sum::<f64>() * 1e3;
        // Per-excitation solve_ms windows include the factor pre-warm;
        // subtract it so the breakdown's parts are disjoint.
        let solve_us =
            (results.iter().map(|r| r.solve_ms).sum::<f64>() * 1e3 - factorize_us).max(0.0);
        JobResult {
            id: envelope.id.clone(),
            status,
            queue_ms,
            results,
            error: None,
            trace_id: envelope.trace_id.clone(),
            timings: Timings {
                queue_us: queue_ms * 1e3,
                factorize_us,
                solve_us,
                // The connection handler owns the admission-to-write
                // window and fills total_us before rendering.
                total_us: 0.0,
            },
            retries,
        }
    }

    /// The batched direct rung for multi-spec jobs: one
    /// `solve_ez_batch` call over all specs. Slots the batch solves are
    /// tagged `"direct"`; retryable per-slot failures re-enter
    /// [`SolveService::run_ladder`] individually.
    fn solve_batched(&self, envelope: &Envelope, deadline: Option<Instant>) -> Vec<SolveResult> {
        let eps = &envelope.eps;
        let grid = eps.grid();
        let started = Instant::now();
        if 2 * self.pml.thickness >= grid.nx || 2 * self.pml.thickness >= grid.ny {
            let msg = format!(
                "grid {}x{} too small for pml thickness {} (needs > {} cells per axis)",
                grid.nx,
                grid.ny,
                self.pml.thickness,
                2 * self.pml.thickness
            );
            return envelope
                .specs
                .iter()
                .map(|_| SolveResult::failed(ErrorKind::Invalid, msg.clone(), 0.0))
                .collect();
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            maps_obs::counter("mapsd.deadline.dropped_mid_job").inc();
            return envelope
                .specs
                .iter()
                .map(|_| {
                    SolveResult::failed(
                        ErrorKind::Deadline,
                        "deadline passed before the solve started",
                        0.0,
                    )
                })
                .collect();
        }

        maps_obs::counter("mapsd.batch.jobs").inc();
        // No explicit pre-warm: the batch plane coalesces factorizations
        // through the same single-flight cache internally.
        let sources: Vec<maps_core::ComplexField2d> = envelope
            .specs
            .iter()
            .map(|s| s.source_field(grid))
            .collect();
        let requests: Vec<maps_core::SolveRequest<'_>> = envelope
            .specs
            .iter()
            .zip(&sources)
            .map(|(s, j)| match s.kind {
                SolveKind::Forward => maps_core::SolveRequest::forward(j, s.omega),
                SolveKind::Adjoint => maps_core::SolveRequest::adjoint(j, s.omega),
            })
            .collect();
        let fields = self.direct.solve_ez_batch(eps, &requests);
        // One traversal served the whole job; the per-slot cost is the
        // shared batch time.
        let batch_ms = ms_since(started);
        fields
            .into_iter()
            .zip(&envelope.specs)
            .map(|(solved, spec)| match solved {
                Ok(field) => {
                    self.breaker.record_success();
                    SolveResult {
                        field_norm: Some(field.norm()),
                        field: envelope.return_field.then(|| interleave(&field)),
                        fidelity: Some("direct"),
                        served_by: Some(self.direct.name().to_string()),
                        coalesce: None,
                        factorize_ms: 0.0,
                        solve_ms: batch_ms,
                        error_kind: None,
                        error: None,
                    }
                }
                Err(e) if !e.is_retryable() => {
                    SolveResult::failed(ErrorKind::Invalid, format!("{e}"), batch_ms)
                }
                Err(_) => {
                    self.breaker.record_failure();
                    maps_obs::counter("mapsd.direct.failed").inc();
                    self.run_ladder(
                        eps,
                        spec,
                        deadline,
                        envelope.return_field,
                        Instant::now(),
                        None,
                        0.0,
                    )
                }
            })
            .collect()
    }

    fn solve_one(
        &self,
        eps: &RealField2d,
        spec: &SolveSpec,
        deadline: Option<Instant>,
        return_field: bool,
    ) -> SolveResult {
        let started = Instant::now();
        // The operator assembly panics on grids the PML cannot fit in; a
        // daemon answers 400 instead.
        let grid = eps.grid();
        if 2 * self.pml.thickness >= grid.nx || 2 * self.pml.thickness >= grid.ny {
            return SolveResult::failed(
                ErrorKind::Invalid,
                format!(
                    "grid {}x{} too small for pml thickness {} (needs > {} cells per axis)",
                    grid.nx,
                    grid.ny,
                    self.pml.thickness,
                    2 * self.pml.thickness
                ),
                0.0,
            );
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            maps_obs::counter("mapsd.deadline.dropped_mid_job").inc();
            return SolveResult::failed(
                ErrorKind::Deadline,
                "deadline passed before the solve started",
                0.0,
            );
        }

        // Pre-warm through the single-flight gate so concurrent requests
        // for the same design share one factorization instead of racing.
        let mut factorize_ms = 0.0;
        let coalesce = if self.prewarm {
            let factor_started = Instant::now();
            match factor_coalesced(eps, spec.omega, &self.pml, || {
                FdfdSolver::with_pml(self.pml)
                    .operator(eps, spec.omega)
                    .to_banded()
            }) {
                Ok((_, outcome)) => {
                    factorize_ms = ms_since(factor_started);
                    Some(match outcome {
                        FactorOutcome::Hit => {
                            maps_obs::counter("mapsd.coalesce.hit").inc();
                            "hit"
                        }
                        FactorOutcome::Leader => {
                            maps_obs::counter("mapsd.coalesce.leader").inc();
                            "leader"
                        }
                        FactorOutcome::Follower => {
                            maps_obs::counter("mapsd.coalesce.follower").inc();
                            "follower"
                        }
                    })
                }
                // A failed factorization is not fatal to the request: the
                // iterative ladder solves without an LU. Skip the direct
                // rung (it would pay the same failure again) and degrade.
                Err(_) => {
                    maps_obs::counter("mapsd.prewarm.failed").inc();
                    return self.run_ladder(eps, spec, deadline, return_field, started, None, 0.0);
                }
            }
        } else {
            None
        };

        let source = spec.source_field(eps.grid());

        // Direct rung, breaker-guarded.
        if self.breaker.allows() {
            let direct = match spec.kind {
                SolveKind::Forward => self.direct.solve_ez(eps, &source, spec.omega),
                SolveKind::Adjoint => self.direct.solve_adjoint_ez(eps, &source, spec.omega),
            };
            match direct {
                Ok(field) => {
                    self.breaker.record_success();
                    return SolveResult {
                        field_norm: Some(field.norm()),
                        field: return_field.then(|| interleave(&field)),
                        fidelity: Some("direct"),
                        served_by: Some(self.direct.name().to_string()),
                        coalesce,
                        factorize_ms,
                        solve_ms: ms_since(started),
                        error_kind: None,
                        error: None,
                    };
                }
                Err(e) if !e.is_retryable() => {
                    return SolveResult::failed(
                        ErrorKind::Invalid,
                        format!("{e}"),
                        ms_since(started),
                    );
                }
                Err(_) => {
                    self.breaker.record_failure();
                    maps_obs::counter("mapsd.direct.failed").inc();
                }
            }
        } else {
            maps_obs::counter("mapsd.direct.bypassed").inc();
        }

        self.run_ladder(
            eps,
            spec,
            deadline,
            return_field,
            started,
            coalesce,
            factorize_ms,
        )
    }

    /// The degradation ladder: relaxed iterative retries, then fallback,
    /// tagged with the fidelity actually served via the per-instance
    /// stats delta (race-free because each worker owns its service).
    fn run_ladder(
        &self,
        eps: &RealField2d,
        spec: &SolveSpec,
        deadline: Option<Instant>,
        return_field: bool,
        started: Instant,
        coalesce: Option<&'static str>,
        factorize_ms: f64,
    ) -> SolveResult {
        let source = spec.source_field(eps.grid());
        let before = self.ladder.stats();
        let solved = match spec.kind {
            SolveKind::Forward => self.ladder.solve_ez_by(eps, &source, spec.omega, deadline),
            SolveKind::Adjoint => self
                .ladder
                .solve_adjoint_ez_by(eps, &source, spec.omega, deadline),
        };
        match solved {
            Ok(field) => {
                let fidelity = fidelity_from_delta(before, self.ladder.stats());
                match fidelity {
                    "fallback" => maps_obs::counter("mapsd.degraded.fallback").inc(),
                    "relaxed" => maps_obs::counter("mapsd.degraded.relaxed").inc(),
                    _ => {}
                }
                SolveResult {
                    field_norm: Some(field.norm()),
                    field: return_field.then(|| interleave(&field)),
                    fidelity: Some(fidelity),
                    served_by: Some(self.ladder.name().to_string()),
                    coalesce,
                    factorize_ms,
                    solve_ms: ms_since(started),
                    error_kind: None,
                    error: None,
                }
            }
            Err(SolveFieldError::DeadlineExceeded { detail }) => {
                SolveResult::failed(ErrorKind::Deadline, detail, ms_since(started))
            }
            Err(e) if !e.is_retryable() => {
                SolveResult::failed(ErrorKind::Invalid, format!("{e}"), ms_since(started))
            }
            Err(e) => SolveResult::failed(ErrorKind::Numerical, format!("{e}"), ms_since(started)),
        }
    }
}

/// Maps a ladder stats delta to the fidelity tag of the response it spans.
fn fidelity_from_delta(before: RobustStats, after: RobustStats) -> &'static str {
    if after.fallbacks > before.fallbacks {
        "fallback"
    } else if after.retries > before.retries {
        "relaxed"
    } else {
        // Clean first-attempt success: nominal fidelity.
        "direct"
    }
}

fn interleave(field: &maps_core::ComplexField2d) -> Vec<f64> {
    let mut out = Vec::with_capacity(field.as_slice().len() * 2);
    for z in field.as_slice() {
        out.push(z.re);
        out.push(z.im);
    }
    out
}

fn ms_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_envelope, JobKind};
    use maps_core::fault::{FaultInjectingSolver, FaultPlan, InjectedFault};

    fn envelope(body: &str) -> Envelope {
        parse_envelope(JobKind::Solve, body).expect("envelope")
    }

    fn healthy_service(breaker: Arc<Breaker>) -> SolveService {
        SolveService::from_env(breaker)
    }

    #[test]
    fn healthy_request_is_served_direct() {
        let svc = healthy_service(Breaker::new(5));
        let env = envelope(r#"{"nx":30,"ny":26,"dx":0.05,"eps":1.0,"omega":4.0}"#);
        let job = svc.execute(&env, 0.0, None);
        assert_eq!(job.status, 200);
        assert_eq!(job.results.len(), 1);
        let r = &job.results[0];
        assert!(r.is_ok(), "unexpected error: {:?}", r.error);
        assert_eq!(r.fidelity, Some("direct"));
        assert!(r.field_norm.unwrap() > 0.0);
        assert!(r.coalesce.is_some(), "prewarm outcome is surfaced");
    }

    #[test]
    fn return_field_interleaves_re_im() {
        let svc = healthy_service(Breaker::new(5));
        let env =
            envelope(r#"{"nx":30,"ny":26,"dx":0.05,"eps":1.0,"omega":4.0,"return_field":true}"#);
        let job = svc.execute(&env, 0.0, None);
        let r = &job.results[0];
        let field = r.field.as_ref().expect("field returned");
        assert_eq!(field.len(), 30 * 26 * 2);
        let norm: f64 = field
            .chunks_exact(2)
            .map(|z| z[0] * z[0] + z[1] * z[1])
            .sum::<f64>()
            .sqrt();
        assert!((norm - r.field_norm.unwrap()).abs() < 1e-9 * norm.max(1.0));
    }

    #[test]
    fn sick_direct_rung_degrades_and_opens_the_breaker() {
        let breaker = Breaker::new(2);
        let direct = FaultInjectingSolver::new(
            FdfdSolver::new(),
            FaultPlan::new().always(InjectedFault::Error),
        )
        .with_name("chaos-direct");
        let ladder = RobustSolver::new(
            FdfdSolver::new().backend(Backend::Iterative(IterativeOptions::default())),
            RetryPolicy::default(),
        )
        .with_fallback(Box::new(FdfdSolver::new()));
        let svc = SolveService::with_parts(Box::new(direct), ladder, Arc::clone(&breaker), true);
        let env = envelope(r#"{"nx":30,"ny":26,"dx":0.05,"eps":1.0,"omega":4.0}"#);

        for _ in 0..3 {
            let job = svc.execute(&env, 0.0, None);
            let r = &job.results[0];
            assert!(r.is_ok(), "ladder rescues the request: {:?}", r.error);
            assert!(r.field_norm.unwrap() > 0.0);
        }
        assert!(breaker.is_open(), "consecutive direct failures open it");

        // With the breaker open the rung is bypassed, not re-failed.
        let before = maps_obs::counter("mapsd.direct.bypassed").get();
        let job = svc.execute(&env, 0.0, None);
        assert!(job.results[0].is_ok());
        assert!(maps_obs::counter("mapsd.direct.bypassed").get() > before);
    }

    /// A frequency-sweep job rides the batched plane and answers every
    /// slot with the same numbers as solving each spec on its own.
    #[test]
    fn label_sweep_is_served_by_the_batch_plane() {
        let svc = healthy_service(Breaker::new(5));
        let sweep = parse_envelope(
            JobKind::Label,
            r#"{"nx":30,"ny":26,"dx":0.05,"eps":1.0,"omegas":[4.0,4.1,4.2,4.3]}"#,
        )
        .expect("label envelope");
        let before = maps_obs::counter("mapsd.batch.jobs").get();
        let job = svc.execute(&sweep, 0.0, None);
        assert_eq!(job.status, 200);
        assert_eq!(job.results.len(), 4);
        assert!(maps_obs::counter("mapsd.batch.jobs").get() > before);
        for (i, r) in job.results.iter().enumerate() {
            assert!(r.is_ok(), "slot {i}: {:?}", r.error);
            assert_eq!(r.fidelity, Some("direct"));
            // Batched answers are bit-identical to the per-spec path.
            let single = svc.solve_one(&sweep.eps, &sweep.specs[i], None, false);
            assert_eq!(
                r.field_norm.unwrap().to_bits(),
                single.field_norm.unwrap().to_bits(),
                "slot {i} diverges from the scalar path"
            );
        }
    }

    /// An expired deadline fails a sweep before any batch work starts.
    #[test]
    fn expired_deadline_fails_whole_sweep() {
        let svc = healthy_service(Breaker::new(5));
        let sweep = parse_envelope(
            JobKind::Label,
            r#"{"nx":30,"ny":26,"dx":0.05,"eps":1.0,"omegas":[4.0,4.1]}"#,
        )
        .expect("label envelope");
        let job = svc.execute(&sweep, 0.0, Some(Instant::now()));
        assert_eq!(job.status, 408);
        assert!(job
            .results
            .iter()
            .all(|r| r.error_kind == Some(ErrorKind::Deadline)));
    }

    #[test]
    fn expired_deadline_is_answered_without_solving() {
        let svc = healthy_service(Breaker::new(5));
        let env = envelope(r#"{"nx":30,"ny":26,"dx":0.05,"eps":1.0,"omega":4.0}"#);
        let job = svc.execute(&env, 0.0, Some(Instant::now()));
        assert_eq!(job.status, 408);
        let r = &job.results[0];
        assert_eq!(r.error_kind, Some(ErrorKind::Deadline));
        assert!(!r.is_ok());
    }

    #[test]
    fn breaker_probes_while_open() {
        let b = Breaker::new(1);
        b.record_failure();
        assert!(b.is_open());
        let admitted = (0..PROBE_PERIOD * 2).filter(|_| b.allows()).count();
        assert_eq!(admitted as u32, 2, "one probe per PROBE_PERIOD skips");
        b.record_success();
        assert!(!b.is_open());
        assert!(b.allows());
    }
}
