//! A minimal std-only HTTP/1.1 client for talking to `mapsd` (and the
//! telemetry server): enough for tests, the load generator, and the
//! benches — not a general-purpose client.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Per-request I/O timeout — generous because a cold direct solve on a
/// large grid can take seconds.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(60);

/// POSTs `body` as JSON to `http://{addr}{path}`.
///
/// # Errors
///
/// Transport errors; a malformed response status line maps to
/// [`io::ErrorKind::InvalidData`].
pub fn http_post(addr: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
    request(addr, "POST", path, Some(body))
}

/// GETs `http://{addr}{path}`.
///
/// # Errors
///
/// As [`http_post`].
pub fn http_get(addr: &str, path: &str) -> io::Result<(u16, String)> {
    request(addr, "GET", path, None)
}

fn request(addr: &str, method: &str, path: &str, body: Option<&str>) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &str) -> io::Result<(u16, String)> {
    let (head, rest) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line: {status_line:?}"),
            )
        })?;
    // Connection: close framing — the body is everything after the head.
    Ok((status, rest.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = "HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\n\r\n{\"status\":\"shed\"}";
        let (status, body) = parse_response(raw).expect("parse");
        assert_eq!(status, 429);
        assert_eq!(body, "{\"status\":\"shed\"}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response("not http").is_err());
        assert!(parse_response("HTTP/1.1 xyz\r\n\r\n").is_err());
    }
}
