//! Admission control: a bounded work queue with per-client in-flight
//! quotas and load shedding.
//!
//! The daemon's overload philosophy is *shed, don't stretch*: once the
//! queue holds `MAPS_D_QUEUE` jobs (or one client holds
//! `MAPS_D_CLIENT_QUOTA` slots), new work is answered immediately with a
//! 429-style shed response instead of being buffered into unbounded
//! latency. Queue depth is therefore also the backpressure signal
//! `/readyz` reports, letting load balancers steer around a saturated
//! instance before it sheds.
//!
//! Shapes:
//! - [`WorkQueue::submit`] admits or sheds in O(clients) under one lock;
//!   admission returns the response channel and an RAII [`ClientPermit`]
//!   that releases the client's slot when the connection handler finishes.
//! - [`WorkQueue::pop`] blocks workers on a condvar; it returns `None`
//!   once the queue is draining *and* empty, which is how workers learn
//!   to exit.
//! - [`WorkQueue::drain`] + [`WorkQueue::wait_idle`] implement
//!   drain-on-stop: no new admissions, existing jobs run to completion.

use crate::protocol::{Envelope, JobResult};
use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Queue sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Maximum queued (not yet started) jobs before shedding.
    pub depth: usize,
    /// Maximum in-flight jobs per client (by peer IP) before shedding.
    pub client_quota: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            depth: 64,
            client_quota: 16,
        }
    }
}

impl QueueConfig {
    /// Reads `MAPS_D_QUEUE` and `MAPS_D_CLIENT_QUOTA`, warning once on
    /// malformed values; both are clamped to at least 1.
    pub fn from_env() -> Self {
        let d = QueueConfig::default();
        QueueConfig {
            depth: maps_obs::parse_env_or("MAPS_D_QUEUE", d.depth).max(1),
            client_quota: maps_obs::parse_env_or("MAPS_D_CLIENT_QUOTA", d.client_quota).max(1),
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shed {
    /// The bounded queue is full.
    QueueFull,
    /// This client already holds its full in-flight quota.
    Quota,
    /// The daemon is draining for shutdown.
    Draining,
}

impl Shed {
    /// Wire name of the shed reason.
    pub fn reason(&self) -> &'static str {
        match self {
            Shed::QueueFull => "queue_full",
            Shed::Quota => "client_quota",
            Shed::Draining => "draining",
        }
    }

    /// HTTP status for this shed: overload sheds are 429, drain is 503.
    pub fn http_status(&self) -> u16 {
        match self {
            Shed::QueueFull | Shed::Quota => 429,
            Shed::Draining => 503,
        }
    }
}

/// One admitted job waiting for a worker.
pub struct Job {
    /// The parsed request.
    pub envelope: Envelope,
    /// When admission happened (queue-latency accounting).
    pub accepted: Instant,
    /// Absolute deadline derived from the envelope's `deadline_ms`.
    pub deadline: Option<Instant>,
    /// Client key (peer IP) for attribution in spans.
    pub client: String,
    /// Trace context captured at admission (inside the root
    /// `mapsd.request` span); workers adopt it so their spans — and
    /// everything rayon fans out below them — stitch into the request's
    /// flow.
    pub ctx: maps_obs::TaskContext,
    /// Channel the worker answers on; the connection handler holds the
    /// receiving end.
    pub respond: SyncSender<JobResult>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// In-flight count per client key. Linear scan: the client set is
    /// small (quota * distinct IPs actually connected).
    clients: Vec<(String, usize)>,
    /// Jobs popped by a worker and not yet finished.
    active: usize,
    draining: bool,
}

/// The bounded, shedding work queue shared by the accept loop and workers.
pub struct WorkQueue {
    config: QueueConfig,
    state: Mutex<QueueState>,
    /// Signaled on push and drain: wakes workers.
    ready: Condvar,
    /// Signaled on job completion and drain: wakes `wait_idle`.
    idle: Condvar,
}

/// RAII client-quota slot: held by the connection handler from admission
/// until its response is written, so a client's concurrent requests are
/// bounded end to end (queued + solving + responding).
pub struct ClientPermit {
    queue: Arc<WorkQueue>,
    client: String,
}

impl Drop for ClientPermit {
    fn drop(&mut self) {
        let mut st = self.queue.state.lock().expect("queue state");
        if let Some(entry) = st.clients.iter_mut().find(|(c, _)| *c == self.client) {
            entry.1 = entry.1.saturating_sub(1);
        }
        st.clients.retain(|(_, n)| *n > 0);
        self.queue.idle.notify_all();
    }
}

/// A job a worker has taken ownership of; dropping it marks the job
/// finished (for drain accounting) even if the worker panicked mid-solve.
pub struct ActiveJob {
    /// The job being worked.
    pub job: Job,
    queue: Arc<WorkQueue>,
}

impl Drop for ActiveJob {
    fn drop(&mut self) {
        let mut st = self.queue.state.lock().expect("queue state");
        st.active = st.active.saturating_sub(1);
        self.queue.idle.notify_all();
    }
}

impl WorkQueue {
    /// Creates a queue with the given sizing.
    pub fn new(config: QueueConfig) -> Arc<Self> {
        Arc::new(WorkQueue {
            config,
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                clients: Vec::new(),
                active: 0,
                draining: false,
            }),
            ready: Condvar::new(),
            idle: Condvar::new(),
        })
    }

    /// The sizing this queue was built with.
    pub fn config(&self) -> QueueConfig {
        self.config
    }

    /// Jobs currently queued (excluding active ones).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue state").jobs.len()
    }

    /// True when the queue cannot admit another job right now.
    pub fn is_saturated(&self) -> bool {
        let st = self.state.lock().expect("queue state");
        st.draining || st.jobs.len() >= self.config.depth
    }

    /// True once [`WorkQueue::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.state.lock().expect("queue state").draining
    }

    /// Admits a job or sheds it, accounting either way.
    ///
    /// On admission the job is queued, a worker is woken, and the caller
    /// receives the response channel plus the client's quota permit.
    ///
    /// # Errors
    ///
    /// Returns the [`Shed`] reason when the queue is draining, the client
    /// is over quota, or the queue is full.
    pub fn submit_job(
        self: &Arc<Self>,
        client: &str,
        envelope: Envelope,
        deadline: Option<Instant>,
        ctx: maps_obs::TaskContext,
    ) -> Result<(Receiver<JobResult>, ClientPermit), Shed> {
        let mut st = self.state.lock().expect("queue state");
        if st.draining {
            shed_counters(Shed::Draining);
            return Err(Shed::Draining);
        }
        let held = st
            .clients
            .iter()
            .find(|(c, _)| c == client)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        if held >= self.config.client_quota {
            shed_counters(Shed::Quota);
            return Err(Shed::Quota);
        }
        if st.jobs.len() >= self.config.depth {
            shed_counters(Shed::QueueFull);
            return Err(Shed::QueueFull);
        }
        match st.clients.iter_mut().find(|(c, _)| c == client) {
            Some(entry) => entry.1 += 1,
            None => st.clients.push((client.to_string(), 1)),
        }
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        st.jobs.push_back(Job {
            envelope,
            accepted: Instant::now(),
            deadline,
            client: client.to_string(),
            ctx,
            respond: tx,
        });
        maps_obs::gauge("mapsd.queue.depth").set(st.jobs.len() as f64);
        drop(st);
        self.ready.notify_one();
        Ok((
            rx,
            ClientPermit {
                queue: Arc::clone(self),
                client: client.to_string(),
            },
        ))
    }

    /// Blocks until a job is available (returning it) or the queue has
    /// drained dry (returning `None`, telling the worker to exit).
    pub fn pop(self: &Arc<Self>) -> Option<ActiveJob> {
        let mut st = self.state.lock().expect("queue state");
        loop {
            if let Some(job) = st.jobs.pop_front() {
                st.active += 1;
                maps_obs::gauge("mapsd.queue.depth").set(st.jobs.len() as f64);
                return Some(ActiveJob {
                    job,
                    queue: Arc::clone(self),
                });
            }
            if st.draining {
                return None;
            }
            st = self.ready.wait(st).expect("queue state");
        }
    }

    /// Stops admissions (future submissions shed with [`Shed::Draining`])
    /// and wakes every blocked worker so they can run the queue dry.
    pub fn drain(&self) {
        let mut st = self.state.lock().expect("queue state");
        st.draining = true;
        drop(st);
        self.ready.notify_all();
        self.idle.notify_all();
    }

    /// Waits until no job is queued or being worked, up to `timeout`.
    /// Returns true when idle was reached.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().expect("queue state");
        while !(st.jobs.is_empty() && st.active == 0) {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, _) = self
                .idle
                .wait_timeout(st, deadline - now)
                .expect("queue state");
            st = next;
        }
        true
    }
}

fn shed_counters(shed: Shed) {
    maps_obs::counter("mapsd.shed").inc();
    match shed {
        Shed::QueueFull => maps_obs::counter("mapsd.shed.queue_full").inc(),
        Shed::Quota => maps_obs::counter("mapsd.shed.client_quota").inc(),
        Shed::Draining => maps_obs::counter("mapsd.shed.draining").inc(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_envelope, JobKind};

    fn shed_of(r: Result<(Receiver<JobResult>, ClientPermit), Shed>) -> Shed {
        match r {
            Err(s) => s,
            Ok(_) => panic!("expected the submission to shed"),
        }
    }

    fn tiny_envelope() -> Envelope {
        parse_envelope(
            JobKind::Solve,
            r#"{"nx":8,"ny":8,"dx":0.1,"eps":1.0,"omega":4.0}"#,
        )
        .expect("envelope")
    }

    #[test]
    fn full_queue_sheds_and_drains_dry() {
        let q = WorkQueue::new(QueueConfig {
            depth: 2,
            client_quota: 10,
        });
        let (_rx1, _p1) = q
            .submit_job("a", tiny_envelope(), None, maps_obs::TaskContext::NONE)
            .expect("first");
        let (_rx2, _p2) = q
            .submit_job("a", tiny_envelope(), None, maps_obs::TaskContext::NONE)
            .expect("second");
        assert_eq!(
            shed_of(q.submit_job("a", tiny_envelope(), None, maps_obs::TaskContext::NONE)),
            Shed::QueueFull
        );
        assert_eq!(q.depth(), 2);
        assert!(q.is_saturated());

        q.drain();
        assert_eq!(
            shed_of(q.submit_job("b", tiny_envelope(), None, maps_obs::TaskContext::NONE)),
            Shed::Draining
        );
        // Workers can still run the queue dry after drain.
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert!(q.pop().is_none(), "drained queue returns None");
        assert!(q.wait_idle(Duration::from_secs(1)));
    }

    #[test]
    fn client_quota_is_per_client_and_released_by_permit_drop() {
        let q = WorkQueue::new(QueueConfig {
            depth: 100,
            client_quota: 2,
        });
        let (_r1, p1) = q
            .submit_job("alice", tiny_envelope(), None, maps_obs::TaskContext::NONE)
            .expect("1");
        let (_r2, _p2) = q
            .submit_job("alice", tiny_envelope(), None, maps_obs::TaskContext::NONE)
            .expect("2");
        assert_eq!(
            shed_of(q.submit_job("alice", tiny_envelope(), None, maps_obs::TaskContext::NONE)),
            Shed::Quota,
            "third concurrent job from one client sheds"
        );
        // A different client is unaffected.
        let (_r3, _p3) = q
            .submit_job("bob", tiny_envelope(), None, maps_obs::TaskContext::NONE)
            .expect("bob");
        // Releasing one of alice's permits re-admits her.
        drop(p1);
        assert!(q
            .submit_job("alice", tiny_envelope(), None, maps_obs::TaskContext::NONE)
            .is_ok());
    }

    #[test]
    fn pop_blocks_until_submit() {
        let q = WorkQueue::new(QueueConfig::default());
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop().map(|a| a.job.client.clone()));
        std::thread::sleep(Duration::from_millis(30));
        let (_rx, _permit) = q
            .submit_job("carol", tiny_envelope(), None, maps_obs::TaskContext::NONE)
            .expect("admit");
        assert_eq!(popper.join().expect("join").as_deref(), Some("carol"));
    }

    #[test]
    fn wait_idle_waits_for_active_jobs() {
        let q = WorkQueue::new(QueueConfig::default());
        let (_rx, _permit) = q
            .submit_job("d", tiny_envelope(), None, maps_obs::TaskContext::NONE)
            .expect("admit");
        let active = q.pop().expect("pop");
        q.drain();
        assert!(
            !q.wait_idle(Duration::from_millis(50)),
            "an active job holds idle off"
        );
        drop(active);
        assert!(q.wait_idle(Duration::from_secs(1)));
    }

    #[test]
    fn env_config_clamps_to_one() {
        // Defaults only (env not set in tests): sane non-zero sizing.
        let c = QueueConfig::from_env();
        assert!(c.depth >= 1);
        assert!(c.client_quota >= 1);
    }
}
