//! The `mapsd` wire protocol: JSON request envelopes and response bodies.
//!
//! Requests are `POST` bodies parsed through the vendored `serde` [`Value`]
//! tree; responses are rendered back the same way. The envelope is shared
//! by all three job kinds — only the excitation list differs:
//!
//! ```json
//! {
//!   "id": "job-42",                 // optional echo-back tag
//!   "nx": 32, "ny": 24, "dx": 0.05, // grid
//!   "eps": 2.25,                    // uniform, or a row-major nx*ny array
//!   "deadline_ms": 250,             // optional per-request deadline
//!   "return_field": false,          // include the full complex field?
//!
//!   // POST /solve — one excitation:
//!   "omega": 4.05,
//!   "kind": "forward",              // or "adjoint" (default forward)
//!   "source": [[16, 12, 1.0, 0.0]], // sparse [x, y, re, im] points
//!
//!   // POST /batch — many excitations against one design:
//!   "requests": [{"omega": 4.05, "source": [[16,12,1,0]]}, ...],
//!
//!   // POST /label — a frequency sweep for dataset labeling:
//!   "omegas": [4.0, 4.05, 4.1],
//!   "source": [[16, 12, 1.0, 0.0]]  // shared; defaults to a center point
//! }
//! ```
//!
//! Responses carry one entry per excitation, each tagged with the fidelity
//! actually served (`"direct"`, `"relaxed"`, `"fallback"`) and how its
//! factorization was obtained (`"hit"`, `"leader"`, `"follower"`) — the
//! observable face of graceful degradation and single-flight coalescing.

use maps_core::{ComplexField2d, Grid2d, RealField2d, SolveKind};
use maps_linalg::Complex64;
use serde::Value;

/// Which endpoint a parsed envelope came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// `POST /solve`: one excitation.
    Solve,
    /// `POST /batch`: many excitations against one design.
    Batch,
    /// `POST /label`: a frequency sweep with a shared source.
    Label,
}

impl JobKind {
    /// Endpoint path for this job kind.
    pub fn path(&self) -> &'static str {
        match self {
            JobKind::Solve => "/solve",
            JobKind::Batch => "/batch",
            JobKind::Label => "/label",
        }
    }
}

/// One excitation: frequency, direction, and sparse source points.
#[derive(Debug, Clone)]
pub struct SolveSpec {
    /// Angular frequency.
    pub omega: f64,
    /// Forward or adjoint solve.
    pub kind: SolveKind,
    /// Sparse current-density points `(ix, iy, value)`.
    pub source: Vec<(usize, usize, Complex64)>,
}

impl SolveSpec {
    /// Materializes the sparse points into a dense source field on `grid`.
    pub fn source_field(&self, grid: Grid2d) -> ComplexField2d {
        let mut j = ComplexField2d::zeros(grid);
        for &(ix, iy, v) in &self.source {
            j.set(ix, iy, v);
        }
        j
    }
}

/// A fully parsed and validated request envelope.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Caller-supplied tag echoed back in the response.
    pub id: Option<String>,
    /// Which endpoint produced this envelope.
    pub job: JobKind,
    /// The permittivity map all excitations share.
    pub eps: RealField2d,
    /// The excitations (exactly one for [`JobKind::Solve`]).
    pub specs: Vec<SolveSpec>,
    /// Relative deadline from request arrival, if any.
    pub deadline_ms: Option<u64>,
    /// Whether responses include the full complex field.
    pub return_field: bool,
    /// Caller-supplied distributed-trace id, echoed back verbatim; the
    /// daemon mints one when absent so every response carries a trace id.
    pub trace_id: Option<String>,
    /// Caller-side span id the daemon's root `mapsd.request` span should
    /// parent under, stitching daemon spans into the caller's trace.
    pub parent_span: Option<u64>,
}

/// Hard cap on cells per request: keeps a single envelope from pinning the
/// daemon's memory (the body-size cap bounds bytes, this bounds solve cost).
pub const MAX_CELLS: usize = 1 << 20;

/// Hard cap on excitations per batch/label request.
pub const MAX_SPECS: usize = 256;

fn as_usize(v: &Value, what: &str) -> Result<usize, String> {
    let x = v.as_f64().map_err(|e| format!("{what}: {e}"))?;
    if !(x.is_finite() && x >= 0.0 && x.fract() == 0.0) {
        return Err(format!("{what}: expected a non-negative integer"));
    }
    Ok(x as usize)
}

fn opt_field<'a>(v: &'a Value, name: &str) -> Option<&'a Value> {
    match v.field(name) {
        Ok(Value::Null) => None,
        Ok(x) => Some(x),
        Err(_) => None,
    }
}

fn parse_kind(v: Option<&Value>) -> Result<SolveKind, String> {
    match v {
        None => Ok(SolveKind::Forward),
        Some(x) => match x.as_str().map_err(|e| format!("kind: {e}"))? {
            "forward" => Ok(SolveKind::Forward),
            "adjoint" => Ok(SolveKind::Adjoint),
            other => Err(format!(
                "kind: expected \"forward\" or \"adjoint\", got {other:?}"
            )),
        },
    }
}

fn parse_source(v: Option<&Value>, grid: Grid2d) -> Result<Vec<(usize, usize, Complex64)>, String> {
    let Some(v) = v else {
        // Default excitation: a unit point source at the grid center.
        return Ok(vec![(grid.nx / 2, grid.ny / 2, Complex64::ONE)]);
    };
    let items = v.as_arr().map_err(|e| format!("source: {e}"))?;
    if items.is_empty() {
        return Err("source: at least one [x, y, re, im] point required".into());
    }
    let mut points = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let parts = item.as_arr().map_err(|e| format!("source[{i}]: {e}"))?;
        if parts.len() != 4 {
            return Err(format!(
                "source[{i}]: expected [x, y, re, im], got {} elements",
                parts.len()
            ));
        }
        let ix = as_usize(&parts[0], &format!("source[{i}].x"))?;
        let iy = as_usize(&parts[1], &format!("source[{i}].y"))?;
        if ix >= grid.nx || iy >= grid.ny {
            return Err(format!(
                "source[{i}]: point ({ix}, {iy}) outside {}x{} grid",
                grid.nx, grid.ny
            ));
        }
        let re = parts[2]
            .as_f64()
            .map_err(|e| format!("source[{i}].re: {e}"))?;
        let im = parts[3]
            .as_f64()
            .map_err(|e| format!("source[{i}].im: {e}"))?;
        points.push((ix, iy, Complex64::new(re, im)));
    }
    Ok(points)
}

fn parse_omega(v: &Value) -> Result<f64, String> {
    let omega = v.as_f64().map_err(|e| format!("omega: {e}"))?;
    if !(omega.is_finite() && omega > 0.0) {
        return Err("omega: must be positive and finite".into());
    }
    Ok(omega)
}

/// Parses a request body for the given endpoint into an [`Envelope`].
///
/// # Errors
///
/// Returns a human-readable description of the first problem found — the
/// daemon sends it back verbatim in a 400 response.
pub fn parse_envelope(job: JobKind, body: &str) -> Result<Envelope, String> {
    let root: Value = serde_json::from_str(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let nx = as_usize(root.field("nx").map_err(|e| e.to_string())?, "nx")?;
    let ny = as_usize(root.field("ny").map_err(|e| e.to_string())?, "ny")?;
    let dx = root
        .field("dx")
        .map_err(|e| e.to_string())?
        .as_f64()
        .map_err(|e| format!("dx: {e}"))?;
    if nx < 4 || ny < 4 {
        return Err("grid: nx and ny must both be at least 4".into());
    }
    if nx.saturating_mul(ny) > MAX_CELLS {
        return Err(format!("grid: {nx}x{ny} exceeds the {MAX_CELLS}-cell cap"));
    }
    if !(dx.is_finite() && dx > 0.0) {
        return Err("dx: must be positive and finite".into());
    }
    let grid = Grid2d::new(nx, ny, dx);

    let eps = match root.field("eps").map_err(|e| e.to_string())? {
        Value::Num(x) => {
            if !(x.is_finite() && *x > 0.0) {
                return Err("eps: must be positive and finite".into());
            }
            RealField2d::constant(grid, *x)
        }
        Value::Arr(items) => {
            if items.len() != grid.len() {
                return Err(format!(
                    "eps: expected {} values for a {nx}x{ny} grid, got {}",
                    grid.len(),
                    items.len()
                ));
            }
            let mut values = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let x = item.as_f64().map_err(|e| format!("eps[{i}]: {e}"))?;
                if !(x.is_finite() && x > 0.0) {
                    return Err(format!("eps[{i}]: must be positive and finite"));
                }
                values.push(x);
            }
            RealField2d::from_vec(grid, values)
        }
        _ => return Err("eps: expected a number or an array of numbers".into()),
    };

    let id = opt_field(&root, "id")
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .map_err(|e| format!("id: {e}"))
        })
        .transpose()?;
    let deadline_ms = opt_field(&root, "deadline_ms")
        .map(|v| as_usize(v, "deadline_ms").map(|x| x as u64))
        .transpose()?;
    let return_field = match opt_field(&root, "return_field") {
        None => false,
        Some(v) => v.as_bool().map_err(|e| format!("return_field: {e}"))?,
    };
    let trace_id = opt_field(&root, "trace_id")
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .map_err(|e| format!("trace_id: {e}"))
        })
        .transpose()?;
    let parent_span = opt_field(&root, "parent_span")
        .map(|v| as_usize(v, "parent_span").map(|x| x as u64))
        .transpose()?;

    let specs = match job {
        JobKind::Solve => {
            let omega = parse_omega(root.field("omega").map_err(|e| e.to_string())?)?;
            vec![SolveSpec {
                omega,
                kind: parse_kind(opt_field(&root, "kind"))?,
                source: parse_source(opt_field(&root, "source"), grid)?,
            }]
        }
        JobKind::Batch => {
            let requests = root
                .field("requests")
                .map_err(|e| e.to_string())?
                .as_arr()
                .map_err(|e| format!("requests: {e}"))?;
            if requests.is_empty() {
                return Err("requests: at least one excitation required".into());
            }
            if requests.len() > MAX_SPECS {
                return Err(format!("requests: more than {MAX_SPECS} excitations"));
            }
            let mut specs = Vec::with_capacity(requests.len());
            for (i, req) in requests.iter().enumerate() {
                let omega = parse_omega(
                    req.field("omega")
                        .map_err(|e| format!("requests[{i}].{e}"))?,
                )
                .map_err(|e| format!("requests[{i}].{e}"))?;
                specs.push(SolveSpec {
                    omega,
                    kind: parse_kind(opt_field(req, "kind"))
                        .map_err(|e| format!("requests[{i}].{e}"))?,
                    source: parse_source(opt_field(req, "source"), grid)
                        .map_err(|e| format!("requests[{i}].{e}"))?,
                });
            }
            specs
        }
        JobKind::Label => {
            let omegas = root
                .field("omegas")
                .map_err(|e| e.to_string())?
                .as_arr()
                .map_err(|e| format!("omegas: {e}"))?;
            if omegas.is_empty() {
                return Err("omegas: at least one frequency required".into());
            }
            if omegas.len() > MAX_SPECS {
                return Err(format!("omegas: more than {MAX_SPECS} frequencies"));
            }
            let source = parse_source(opt_field(&root, "source"), grid)?;
            omegas
                .iter()
                .enumerate()
                .map(|(i, w)| {
                    Ok(SolveSpec {
                        omega: parse_omega(w).map_err(|e| format!("omegas[{i}]: {e}"))?,
                        kind: SolveKind::Forward,
                        source: source.clone(),
                    })
                })
                .collect::<Result<Vec<_>, String>>()?
        }
    };

    Ok(Envelope {
        id,
        job,
        eps,
        specs,
        deadline_ms,
        return_field,
        trace_id,
        parent_span,
    })
}

/// Machine-readable failure class of one solve, mapped to an HTTP status
/// for single-excitation requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The caller's deadline passed (→ 408).
    Deadline,
    /// The inputs are permanently invalid (→ 400).
    Invalid,
    /// Every fidelity rung failed numerically (→ 500).
    Numerical,
}

impl ErrorKind {
    /// Wire name of this error class.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorKind::Deadline => "deadline_exceeded",
            ErrorKind::Invalid => "invalid_input",
            ErrorKind::Numerical => "numerical",
        }
    }

    /// HTTP status for a single-excitation request failing with this class.
    pub fn http_status(&self) -> u16 {
        match self {
            ErrorKind::Deadline => 408,
            ErrorKind::Invalid => 400,
            ErrorKind::Numerical => 500,
        }
    }
}

/// Server-side timing breakdown of one request, microseconds. Echoed in
/// the response (`"timings"`) so clients see where their latency went
/// without needing access to the daemon's trace plane.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Timings {
    /// Queued before a worker picked the job up.
    pub queue_us: f64,
    /// Obtaining factorizations (cache hits cost ~0 here).
    pub factorize_us: f64,
    /// Solving against the factors (sum over excitations).
    pub solve_us: f64,
    /// Admission to response write, as seen by the daemon.
    pub total_us: f64,
}

/// Outcome of one excitation.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The served field's L2 norm (present on success).
    pub field_norm: Option<f64>,
    /// Full complex field, interleaved `[re, im, re, im, ...]`, when the
    /// envelope asked for it.
    pub field: Option<Vec<f64>>,
    /// Fidelity rung that produced the answer: `direct`, `relaxed`, or
    /// `fallback`.
    pub fidelity: Option<&'static str>,
    /// Name of the solver that produced the answer.
    pub served_by: Option<String>,
    /// How the factorization was obtained: `hit`, `leader`, `follower`.
    pub coalesce: Option<&'static str>,
    /// Wall-clock time obtaining this excitation's factorization, ms
    /// (0 when the fidelity ladder bypassed the prewarmed factor path).
    pub factorize_ms: f64,
    /// Wall-clock solve time in milliseconds.
    pub solve_ms: f64,
    /// Failure class, when the excitation failed.
    pub error_kind: Option<ErrorKind>,
    /// Failure description, when the excitation failed.
    pub error: Option<String>,
}

impl SolveResult {
    /// True when the excitation produced a field.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    /// A failure result with the given class and message.
    pub fn failed(kind: ErrorKind, error: impl Into<String>, solve_ms: f64) -> Self {
        SolveResult {
            field_norm: None,
            field: None,
            fidelity: None,
            served_by: None,
            coalesce: None,
            factorize_ms: 0.0,
            solve_ms,
            error_kind: Some(kind),
            error: Some(error.into()),
        }
    }
}

/// The complete answer to one request envelope.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Echo of the envelope's `id`.
    pub id: Option<String>,
    /// HTTP status the connection handler should send.
    pub status: u16,
    /// Time spent queued before a worker picked the job up, milliseconds.
    pub queue_ms: f64,
    /// One entry per excitation, in request order. Empty only when the
    /// whole job was dropped (e.g. deadline passed at dequeue), in which
    /// case `error` says why.
    pub results: Vec<SolveResult>,
    /// Whole-job failure description (deadline at dequeue, drain).
    pub error: Option<String>,
    /// Trace id of the request (client-supplied or daemon-minted),
    /// echoed in the response body.
    pub trace_id: Option<String>,
    /// Server-side timing breakdown (total_us is filled in by the
    /// connection handler, which sees the full admission-to-write window).
    pub timings: Timings,
    /// Fidelity-ladder retries spent serving this request.
    pub retries: u64,
}

impl JobResult {
    /// A whole-job failure (no per-excitation results).
    pub fn rejected(id: Option<String>, status: u16, queue_ms: f64, error: String) -> Self {
        JobResult {
            id,
            status,
            queue_ms,
            results: Vec::new(),
            error: Some(error),
            trace_id: None,
            timings: Timings {
                queue_us: queue_ms * 1e3,
                ..Timings::default()
            },
            retries: 0,
        }
    }
}

fn num(x: f64) -> Value {
    Value::Num(x)
}

/// Renders a [`JobResult`] as the response JSON body.
pub fn render_job_result(result: &JobResult) -> String {
    let mut root: Vec<(String, Value)> = Vec::new();
    if let Some(id) = &result.id {
        root.push(("id".into(), Value::Str(id.clone())));
    }
    if let Some(trace) = &result.trace_id {
        root.push(("trace_id".into(), Value::Str(trace.clone())));
    }
    let all_ok = result.error.is_none() && result.results.iter().all(SolveResult::is_ok);
    root.push((
        "status".into(),
        Value::Str(if all_ok { "ok" } else { "error" }.into()),
    ));
    root.push(("queue_ms".into(), num(result.queue_ms)));
    root.push((
        "timings".into(),
        Value::Obj(vec![
            ("queue_us".into(), num(result.timings.queue_us)),
            ("factorize_us".into(), num(result.timings.factorize_us)),
            ("solve_us".into(), num(result.timings.solve_us)),
            ("total_us".into(), num(result.timings.total_us)),
        ]),
    ));
    if result.retries > 0 {
        root.push(("retries".into(), num(result.retries as f64)));
    }
    if let Some(err) = &result.error {
        root.push(("error".into(), Value::Str(err.clone())));
    }
    let results = result
        .results
        .iter()
        .map(|r| {
            let mut obj: Vec<(String, Value)> = Vec::new();
            obj.push(("ok".into(), Value::Bool(r.is_ok())));
            obj.push(("solve_ms".into(), num(r.solve_ms)));
            if r.factorize_ms > 0.0 {
                obj.push(("factorize_ms".into(), num(r.factorize_ms)));
            }
            if let Some(n) = r.field_norm {
                obj.push(("field_norm".into(), num(n)));
            }
            if let Some(f) = &r.fidelity {
                obj.push(("fidelity".into(), Value::Str((*f).into())));
            }
            if let Some(s) = &r.served_by {
                obj.push(("served_by".into(), Value::Str(s.clone())));
            }
            if let Some(c) = &r.coalesce {
                obj.push(("coalesce".into(), Value::Str((*c).into())));
            }
            if let Some(k) = r.error_kind {
                obj.push(("error_kind".into(), Value::Str(k.as_str().into())));
            }
            if let Some(e) = &r.error {
                obj.push(("error".into(), Value::Str(e.clone())));
            }
            if let Some(field) = &r.field {
                obj.push((
                    "field".into(),
                    Value::Arr(field.iter().map(|x| num(*x)).collect()),
                ));
            }
            Value::Obj(obj)
        })
        .collect();
    root.push(("results".into(), Value::Arr(results)));
    serde_json::to_string(&Value::Obj(root)).unwrap_or_else(|e| {
        format!("{{\"status\":\"error\",\"error\":\"response render failed: {e}\"}}")
    })
}

/// Renders a shed (admission-rejected) response body. The trace id, when
/// known, is echoed even on sheds so a client can correlate the rejection
/// with its own trace.
pub fn render_shed(reason: &str, trace_id: Option<&str>) -> String {
    let mut obj = vec![
        ("status".into(), Value::Str("shed".into())),
        ("reason".into(), Value::Str(reason.into())),
    ];
    if let Some(trace) = trace_id {
        obj.push(("trace_id".into(), Value::Str(trace.into())));
    }
    serde_json::to_string(&Value::Obj(obj)).expect("shed body renders")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_envelope_round_trips() {
        let body = r#"{
            "id": "t1", "nx": 8, "ny": 6, "dx": 0.1, "eps": 2.25,
            "omega": 4.0, "kind": "adjoint",
            "source": [[3, 2, 1.0, -0.5]],
            "deadline_ms": 250, "return_field": true
        }"#;
        let env = parse_envelope(JobKind::Solve, body).expect("parse");
        assert_eq!(env.id.as_deref(), Some("t1"));
        assert_eq!(env.eps.grid(), Grid2d::new(8, 6, 0.1));
        assert_eq!(env.eps.get(0, 0), 2.25);
        assert_eq!(env.specs.len(), 1);
        assert_eq!(env.specs[0].kind, SolveKind::Adjoint);
        assert_eq!(env.specs[0].source, vec![(3, 2, Complex64::new(1.0, -0.5))]);
        assert_eq!(env.deadline_ms, Some(250));
        assert!(env.return_field);
        let j = env.specs[0].source_field(env.eps.grid());
        assert_eq!(j.get(3, 2), Complex64::new(1.0, -0.5));
        assert_eq!(j.get(0, 0), Complex64::ZERO);
    }

    #[test]
    fn defaults_fill_in_kind_source_and_flags() {
        let body = r#"{"nx": 8, "ny": 8, "dx": 0.1, "eps": 1.0, "omega": 4.0}"#;
        let env = parse_envelope(JobKind::Solve, body).expect("parse");
        assert_eq!(env.specs[0].kind, SolveKind::Forward);
        assert_eq!(env.specs[0].source, vec![(4, 4, Complex64::ONE)]);
        assert_eq!(env.deadline_ms, None);
        assert!(!env.return_field);
        assert!(env.id.is_none());
        assert!(env.trace_id.is_none());
        assert!(env.parent_span.is_none());
    }

    #[test]
    fn trace_context_round_trips_through_the_envelope() {
        let body = r#"{
            "nx": 8, "ny": 8, "dx": 0.1, "eps": 1.0, "omega": 4.0,
            "trace_id": "client-trace-7", "parent_span": 12345
        }"#;
        let env = parse_envelope(JobKind::Solve, body).expect("parse");
        assert_eq!(env.trace_id.as_deref(), Some("client-trace-7"));
        assert_eq!(env.parent_span, Some(12345));

        let err = parse_envelope(
            JobKind::Solve,
            r#"{"nx":8,"ny":8,"dx":0.1,"eps":1.0,"omega":4.0,"trace_id":42}"#,
        )
        .unwrap_err();
        assert!(err.contains("trace_id"), "{err}");
    }

    #[test]
    fn eps_array_is_validated_against_the_grid() {
        let body = r#"{"nx": 4, "ny": 4, "dx": 0.1, "eps": [1,1,1], "omega": 4.0}"#;
        let err = parse_envelope(JobKind::Solve, body).unwrap_err();
        assert!(err.contains("expected 16 values"), "{err}");

        let vals = vec!["1.5"; 16].join(",");
        let body = format!(r#"{{"nx": 4, "ny": 4, "dx": 0.1, "eps": [{vals}], "omega": 4.0}}"#);
        let env = parse_envelope(JobKind::Solve, &body).expect("parse");
        assert_eq!(env.eps.get(3, 3), 1.5);
    }

    #[test]
    fn malformed_inputs_are_rejected_with_context() {
        for (body, needle) in [
            (r#"not json"#, "invalid JSON"),
            (r#"{"ny":8,"dx":0.1,"eps":1.0,"omega":4.0}"#, "nx"),
            (
                r#"{"nx":8,"ny":8,"dx":0.1,"eps":1.0,"omega":-1.0}"#,
                "omega",
            ),
            (r#"{"nx":8,"ny":8,"dx":0.1,"eps":-2.0,"omega":4.0}"#, "eps"),
            (
                r#"{"nx":2,"ny":8,"dx":0.1,"eps":1.0,"omega":4.0}"#,
                "at least 4",
            ),
            (
                r#"{"nx":8,"ny":8,"dx":0.1,"eps":1.0,"omega":4.0,"source":[[9,0,1,0]]}"#,
                "outside",
            ),
            (
                r#"{"nx":8,"ny":8,"dx":0.1,"eps":1.0,"omega":4.0,"kind":"sideways"}"#,
                "kind",
            ),
        ] {
            let err = parse_envelope(JobKind::Solve, body).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }

    #[test]
    fn batch_and_label_envelopes_expand_to_specs() {
        let body = r#"{
            "nx": 8, "ny": 8, "dx": 0.1, "eps": 1.0,
            "requests": [
                {"omega": 4.0},
                {"omega": 4.1, "kind": "adjoint", "source": [[1, 1, 0.0, 1.0]]}
            ]
        }"#;
        let env = parse_envelope(JobKind::Batch, body).expect("batch");
        assert_eq!(env.specs.len(), 2);
        assert_eq!(env.specs[1].kind, SolveKind::Adjoint);

        let body = r#"{"nx": 8, "ny": 8, "dx": 0.1, "eps": 1.0, "omegas": [4.0, 4.1, 4.2]}"#;
        let env = parse_envelope(JobKind::Label, body).expect("label");
        assert_eq!(env.specs.len(), 3);
        assert!(env.specs.iter().all(|s| s.kind == SolveKind::Forward));
        assert_eq!(env.specs[0].source, env.specs[2].source);
    }

    #[test]
    fn job_result_renders_status_and_fields() {
        let jr = JobResult {
            id: Some("t9".into()),
            status: 200,
            queue_ms: 1.25,
            results: vec![
                SolveResult {
                    field_norm: Some(0.5),
                    field: None,
                    fidelity: Some("direct"),
                    served_by: Some("fdfd-direct".into()),
                    coalesce: Some("leader"),
                    factorize_ms: 2.5,
                    solve_ms: 3.0,
                    error_kind: None,
                    error: None,
                },
                SolveResult::failed(ErrorKind::Deadline, "too slow", 0.1),
            ],
            error: None,
            trace_id: Some("trace-t9".into()),
            timings: Timings {
                queue_us: 1250.0,
                factorize_us: 2500.0,
                solve_us: 3100.0,
                total_us: 7000.0,
            },
            retries: 2,
        };
        let body = render_job_result(&jr);
        assert!(body.contains("\"id\":\"t9\""), "{body}");
        assert!(body.contains("\"trace_id\":\"trace-t9\""), "{body}");
        assert!(body.contains("\"status\":\"error\""), "{body}");
        assert!(body.contains("\"fidelity\":\"direct\""), "{body}");
        assert!(body.contains("\"coalesce\":\"leader\""), "{body}");
        assert!(body.contains("\"factorize_ms\":2.5"), "{body}");
        assert!(body.contains("\"retries\":2"), "{body}");
        assert!(
            body.contains("\"error_kind\":\"deadline_exceeded\""),
            "{body}"
        );
        // And it parses back as JSON, with the timings breakdown intact.
        let parsed: Value = serde_json::from_str(&body).expect("valid JSON");
        assert_eq!(parsed.field("results").unwrap().as_arr().unwrap().len(), 2);
        let timings = parsed.field("timings").expect("timings object");
        assert_eq!(timings.field("queue_us").unwrap().as_f64().unwrap(), 1250.0);
        assert_eq!(timings.field("total_us").unwrap().as_f64().unwrap(), 7000.0);
    }

    #[test]
    fn shed_body_names_the_reason() {
        let body = render_shed("queue_full", None);
        assert!(body.contains("\"status\":\"shed\""), "{body}");
        assert!(body.contains("\"reason\":\"queue_full\""), "{body}");
        assert!(!body.contains("trace_id"), "{body}");
        let body = render_shed("client_quota", Some("trace-s1"));
        assert!(body.contains("\"trace_id\":\"trace-s1\""), "{body}");
    }
}
