//! Per-request distributed tracing end to end: trace ids round-trip
//! through `/solve` into the exported Chrome trace, tail sampling keeps
//! slow trees and discards fast unsampled ones, and `GET /requests` never
//! tears under a concurrent hammer.
//!
//! These tests own the global flight recorder and the wide-event ring, so
//! they serialize on a lock.

use maps_core::{
    ComplexField2d, FieldSolver, RealField2d, RetryPolicy, RobustSolver, SolveFieldError,
};
use maps_fdfd::FdfdSolver;
use maps_mapsd::{
    http_get, http_post, serve_with, Breaker, DaemonConfig, QueueConfig, ServiceFactory,
    SolveService, TailConfig,
};
use maps_obs::recorder;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// A solver whose latency is the request's ω in milliseconds — the tool
/// for making one request slow and another fast through the same daemon.
struct OmegaDelaySolver;

impl FieldSolver for OmegaDelaySolver {
    fn solve_ez(
        &self,
        _eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        std::thread::sleep(Duration::from_millis(omega as u64));
        Ok(source.clone())
    }

    fn name(&self) -> &str {
        "omega-delay"
    }
}

fn delay_factory() -> ServiceFactory {
    Arc::new(|| {
        let ladder = RobustSolver::new(FdfdSolver::new(), RetryPolicy::default());
        SolveService::with_parts(Box::new(OmegaDelaySolver), ladder, Breaker::new(5), false)
    })
}

fn config(tail: TailConfig) -> DaemonConfig {
    DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        max_body: 4 << 20,
        queue: QueueConfig::default(),
        tail,
    }
}

fn body(omega: f64, trace_id: &str) -> String {
    format!(
        r#"{{"nx":30,"ny":26,"dx":0.05,"eps":1.0,"omega":{omega},"trace_id":"{trace_id}","deadline_ms":60000}}"#
    )
}

#[test]
fn trace_id_round_trips_into_the_exported_chrome_trace() {
    let _guard = OBS_LOCK.lock().unwrap();
    recorder::enable();

    // slow_ms 0: every request is "slow", so its span tree is retained.
    let daemon = serve_with(
        config(TailConfig {
            slow_ms: 0.0,
            per_endpoint: Vec::new(),
            sample: 0,
        }),
        delay_factory(),
    )
    .expect("serve");
    let addr = daemon.local_addr().to_string();

    let (status, resp) = http_post(&addr, "/solve", &body(1.0, "cli-trace-77")).expect("post");
    assert_eq!(status, 200, "body: {resp}");
    // The response echoes the caller's trace id and a timing breakdown.
    assert!(resp.contains("\"trace_id\":\"cli-trace-77\""), "{resp}");
    assert!(resp.contains("\"timings\""), "{resp}");
    assert!(resp.contains("\"total_us\":"), "{resp}");

    daemon.stop();

    // The retained tree is in the recorder ring: the root span carries the
    // trace id, and the worker-side spans share its flow.
    let spans = recorder::snapshot();
    let root = spans
        .iter()
        .find(|s| s.name == "mapsd.request" && s.field("trace") == Some("cli-trace-77"))
        .expect("root span retained with the trace id");
    assert_ne!(root.flow, 0);
    assert!(
        spans
            .iter()
            .any(|s| s.flow == root.flow && s.name != "mapsd.request"),
        "worker spans joined the request flow: {:?}",
        spans.iter().map(|s| &s.name).collect::<Vec<_>>()
    );

    // And the Chrome trace export carries the id, so chrome://tracing can
    // find the request by searching for it.
    let trace = maps_obs::chrome_trace(&spans);
    assert!(trace.contains("cli-trace-77"), "chrome trace has the id");

    recorder::disable();
}

#[test]
fn tail_sampling_keeps_the_slow_tree_and_drops_the_fast_one() {
    let _guard = OBS_LOCK.lock().unwrap();
    recorder::enable();

    // Threshold 100 ms; ω is the solver delay in ms, so ω=1 is far under
    // and ω=250 far over.
    let daemon = serve_with(
        config(TailConfig {
            slow_ms: 100.0,
            per_endpoint: Vec::new(),
            sample: 0,
        }),
        delay_factory(),
    )
    .expect("serve");
    let addr = daemon.local_addr().to_string();

    let (status, _) = http_post(&addr, "/solve", &body(1.0, "fast-req")).expect("post");
    assert_eq!(status, 200);
    let (status, _) = http_post(&addr, "/solve", &body(250.0, "slow-req")).expect("post");
    assert_eq!(status, 200);

    daemon.stop();

    let spans = recorder::snapshot();
    assert!(
        spans.iter().any(|s| s.field("trace") == Some("slow-req")),
        "slow request's tree is retained"
    );
    assert!(
        !spans.iter().any(|s| s.field("trace") == Some("fast-req")),
        "fast unsampled request's tree is discarded"
    );
    // No flow leaks: every begin_flow met its close_flow.
    assert_eq!(recorder::pending_flows(), 0, "pending flow set drained");
    assert_eq!(recorder::pending_spans(), 0);

    recorder::disable();
}

#[test]
fn requests_endpoint_never_tears_under_a_concurrent_hammer() {
    let _guard = OBS_LOCK.lock().unwrap();
    maps_obs::reqlog::reset();

    let daemon = serve_with(config(TailConfig::default()), delay_factory()).expect("serve");
    let addr = daemon.local_addr().to_string();

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut polls = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (status, body) = http_get(&addr, "/requests?last=50").expect("get");
                    assert_eq!(status, 200);
                    // Every observed body is complete, parseable JSON —
                    // half-written events would fail here.
                    let parsed: serde::Value =
                        serde_json::from_str(&body).expect("requests body parses");
                    let events = parsed.as_arr().expect("array body");
                    for ev in events {
                        assert!(ev.field("endpoint").is_ok(), "event has an endpoint");
                    }
                    polls += 1;
                }
                polls
            })
        })
        .collect();

    let writers: Vec<_> = (0..4)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                for i in 0..10 {
                    let _ = http_post(&addr, "/solve", &body(1.0, &format!("hammer-{c}-{i}")));
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer");
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().expect("reader") > 0, "readers actually polled");
    }

    // Reconciliation: 40 solves → exactly 40 wide events, all live.
    let (status, resp) = http_get(&addr, "/requests?last=100").expect("get");
    assert_eq!(status, 200);
    let parsed: serde::Value = serde_json::from_str(&resp).expect("parses");
    assert_eq!(parsed.as_arr().expect("array").len(), 40, "{resp}");

    daemon.stop();
    maps_obs::reqlog::reset();
}
