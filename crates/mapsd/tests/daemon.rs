//! End-to-end daemon tests: every request admitted gets an answer — a
//! result, a degraded result, a shed, or a deadline rejection — and the
//! daemon survives bursts, faults, and shutdown without a panic.

use maps_core::fault::{FaultInjectingSolver, FaultPlan, InjectedFault};
use maps_core::{
    ComplexField2d, FieldSolver, RealField2d, RetryPolicy, RobustSolver, SolveFieldError,
};
use maps_fdfd::{Backend, FdfdSolver};
use maps_linalg::IterativeOptions;
use maps_mapsd::{
    http_get, http_post, serve, serve_with, Breaker, DaemonConfig, QueueConfig, SolveService,
};
use std::sync::Arc;
use std::time::Duration;

fn ephemeral(queue: QueueConfig, workers: usize) -> DaemonConfig {
    DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        max_body: 4 << 20,
        queue,
        tail: maps_mapsd::TailConfig::default(),
    }
}

const SOLVE_BODY: &str = r#"{"nx":30,"ny":26,"dx":0.05,"eps":1.0,"omega":4.0}"#;

#[test]
fn solve_round_trips_and_matches_a_local_solve() {
    let daemon = serve(ephemeral(QueueConfig::default(), 2)).expect("serve");
    let addr = daemon.local_addr().to_string();

    let body =
        r#"{"nx":30,"ny":26,"dx":0.05,"eps":1.0,"omega":4.0,"return_field":true,"id":"rt-1"}"#;
    let (status, resp) = http_post(&addr, "/solve", body).expect("post");
    assert_eq!(status, 200, "body: {resp}");
    assert!(resp.contains("\"id\":\"rt-1\""));
    assert!(resp.contains("\"status\":\"ok\""));
    assert!(resp.contains("\"fidelity\":\"direct\""));

    // The served field matches a local direct solve bit-for-bit modulo
    // JSON float round-tripping.
    let grid = maps_core::Grid2d::new(30, 26, 0.05);
    let eps = RealField2d::constant(grid, 1.0);
    let mut j = ComplexField2d::zeros(grid);
    j.set(15, 13, maps_linalg::Complex64::ONE);
    let local = FdfdSolver::new().solve_ez(&eps, &j, 4.0).expect("local");
    let norm_tag = "\"field_norm\":";
    let idx = resp.find(norm_tag).expect("field_norm present") + norm_tag.len();
    let norm: f64 = resp[idx..]
        .split([',', '}'])
        .next()
        .unwrap()
        .parse()
        .expect("norm parses");
    assert!(
        (norm - local.norm()).abs() < 1e-9 * local.norm(),
        "daemon norm {norm} vs local {}",
        local.norm()
    );

    daemon.stop();
}

#[test]
fn malformed_and_unknown_requests_are_answered() {
    let daemon = serve(ephemeral(QueueConfig::default(), 1)).expect("serve");
    let addr = daemon.local_addr().to_string();

    let (status, body) = http_post(&addr, "/solve", "{\"nx\":").expect("post");
    assert_eq!(status, 400);
    assert!(body.contains("invalid request"));

    let (status, _) = http_post(&addr, "/solve", r#"{"nx":4,"ny":4,"dx":0.1}"#).expect("post");
    assert_eq!(status, 400, "missing omega");

    // A grid the PML cannot fit in is a 400, not a worker panic.
    let (status, body) = http_post(
        &addr,
        "/solve",
        r#"{"nx":8,"ny":8,"dx":0.1,"eps":1.0,"omega":4.0}"#,
    )
    .expect("post");
    assert_eq!(status, 400, "body: {body}");
    assert!(body.contains("pml"));

    let (status, _) = http_get(&addr, "/nope").expect("get");
    assert_eq!(status, 404);

    let (status, _) = http_post(&addr, "/metrics", "").expect("post to GET route");
    assert_eq!(status, 405);

    daemon.stop();
}

/// A solver that sleeps before answering — the tool for filling the queue.
struct SlowSolver(Duration);

impl FieldSolver for SlowSolver {
    fn solve_ez(
        &self,
        _eps_r: &RealField2d,
        source: &ComplexField2d,
        _omega: f64,
    ) -> Result<ComplexField2d, SolveFieldError> {
        std::thread::sleep(self.0);
        Ok(source.clone())
    }

    fn name(&self) -> &str {
        "slow-echo"
    }
}

fn slow_factory(delay: Duration) -> maps_mapsd::ServiceFactory {
    Arc::new(move || {
        let ladder = RobustSolver::new(FdfdSolver::new(), RetryPolicy::default());
        SolveService::with_parts(Box::new(SlowSolver(delay)), ladder, Breaker::new(5), false)
    })
}

#[test]
fn oversubscribed_queue_sheds_with_429_and_draining_with_503() {
    let daemon = serve_with(
        ephemeral(
            QueueConfig {
                depth: 1,
                client_quota: 64,
            },
            1,
        ),
        slow_factory(Duration::from_millis(150)),
    )
    .expect("serve");
    let addr = daemon.local_addr().to_string();

    // Burst: 1 worker busy + 1 queued; the rest of the burst must shed.
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || http_post(&addr, "/solve", SOLVE_BODY).expect("post"))
        })
        .collect();
    let mut ok = 0;
    let mut shed = 0;
    for h in handles {
        let (status, body) = h.join().expect("join");
        match status {
            200 => ok += 1,
            429 => {
                shed += 1;
                assert!(body.contains("\"status\":\"shed\""), "body: {body}");
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert!(ok >= 1, "at least the in-flight request succeeds");
    assert!(shed >= 1, "the burst overflows depth 1 and sheds");

    // Shed accounting is visible on /metrics.
    let (_, metrics) = http_get(&addr, "/metrics").expect("metrics");
    assert!(metrics.contains("mapsd_shed"), "metrics: {metrics}");

    daemon.stop();
}

#[test]
fn client_quota_bounds_one_clients_concurrency() {
    let daemon = serve_with(
        ephemeral(
            QueueConfig {
                depth: 64,
                client_quota: 1,
            },
            1,
        ),
        slow_factory(Duration::from_millis(150)),
    )
    .expect("serve");
    let addr = daemon.local_addr().to_string();

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || http_post(&addr, "/solve", SOLVE_BODY).expect("post"))
        })
        .collect();
    let statuses: Vec<u16> = handles
        .into_iter()
        .map(|h| h.join().expect("join").0)
        .collect();
    assert!(statuses.contains(&200));
    assert!(
        statuses.contains(&429),
        "all requests share one client IP, so quota 1 sheds: {statuses:?}"
    );

    daemon.stop();
}

#[test]
fn expired_deadline_is_rejected_not_solved() {
    let daemon = serve(ephemeral(QueueConfig::default(), 1)).expect("serve");
    let addr = daemon.local_addr().to_string();

    let body = r#"{"nx":30,"ny":26,"dx":0.05,"eps":1.0,"omega":4.0,"deadline_ms":0}"#;
    let (status, resp) = http_post(&addr, "/solve", body).expect("post");
    assert_eq!(status, 408, "body: {resp}");
    assert!(resp.contains("deadline"), "body: {resp}");

    daemon.stop();
}

#[test]
fn sick_direct_rung_serves_degraded_results() {
    // Direct rung always faults; the iterative primary is starved so the
    // ladder must retry/fall back — the response says which rung answered.
    let factory: maps_mapsd::ServiceFactory = Arc::new(|| {
        let direct = FaultInjectingSolver::new(
            FdfdSolver::new(),
            FaultPlan::new().always(InjectedFault::Error),
        )
        .with_name("chaos-direct");
        let ladder = RobustSolver::new(
            FdfdSolver::new().backend(Backend::Iterative(IterativeOptions {
                tolerance: 1e-30,
                max_iterations: 1,
            })),
            RetryPolicy::default(),
        )
        .with_fallback(Box::new(FdfdSolver::new()));
        SolveService::with_parts(Box::new(direct), ladder, Breaker::new(1000), true)
    });
    let daemon = serve_with(ephemeral(QueueConfig::default(), 2), factory).expect("serve");
    let addr = daemon.local_addr().to_string();

    let (status, resp) = http_post(&addr, "/solve", SOLVE_BODY).expect("post");
    assert_eq!(status, 200, "degraded but served: {resp}");
    assert!(
        resp.contains("\"fidelity\":\"fallback\"") || resp.contains("\"fidelity\":\"relaxed\""),
        "response tags the degraded fidelity: {resp}"
    );

    daemon.stop();
}

#[test]
fn batch_and_label_routes_answer_per_spec() {
    let daemon = serve(ephemeral(QueueConfig::default(), 2)).expect("serve");
    let addr = daemon.local_addr().to_string();

    let batch = r#"{"nx":30,"ny":26,"dx":0.05,"eps":1.0,
        "requests":[{"omega":4.0},{"omega":4.2,"kind":"adjoint"}]}"#;
    let (status, resp) = http_post(&addr, "/batch", batch).expect("post");
    assert_eq!(status, 200, "body: {resp}");
    assert_eq!(resp.matches("\"ok\":true").count(), 2, "body: {resp}");

    let label = r#"{"nx":30,"ny":26,"dx":0.05,"eps":1.0,"omegas":[4.0,4.1,4.2]}"#;
    let (status, resp) = http_post(&addr, "/label", label).expect("post");
    assert_eq!(status, 200, "body: {resp}");
    assert_eq!(resp.matches("\"ok\":true").count(), 3, "body: {resp}");

    daemon.stop();
}

#[test]
fn readyz_reflects_lifecycle_and_shutdown_drains() {
    let daemon = serve(ephemeral(QueueConfig::default(), 1)).expect("serve");
    let addr = daemon.local_addr().to_string();

    let (status, body) = http_get(&addr, "/readyz").expect("readyz");
    assert_eq!(status, 200, "fresh daemon is ready: {body}");

    let (status, body) = http_post(&addr, "/shutdown", "").expect("shutdown");
    assert_eq!(status, 202);
    assert!(body.contains("draining"));

    // wait_for_shutdown must have been signaled.
    daemon.wait_for_shutdown();
    daemon.queue().drain();

    let (status, body) = http_get(&addr, "/readyz").expect("readyz while draining");
    assert_eq!(status, 503, "draining daemon is not ready: {body}");
    assert!(body.contains("draining"), "body: {body}");

    // New work is refused while draining.
    let (status, _) = http_post(&addr, "/solve", SOLVE_BODY).expect("post");
    assert_eq!(status, 503);

    daemon.stop();
}
