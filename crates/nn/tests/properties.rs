//! Property-based tests of the model zoo.

use maps_nn::{
    Ffno, FfnoConfig, Fno, FnoConfig, Model, NeurOLight, NeurOLightConfig, UNet, UNetConfig,
};
use maps_tensor::{tape_nodes_recorded, Params, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every baseline maps [N, Cin, H, W] → [N, 2, H, W] for sizes the UNet
    /// supports (multiples of 4).
    #[test]
    fn models_preserve_spatial_shape(
        n in 1usize..3,
        h4 in 2usize..5,
        w4 in 2usize..5,
        seed in 0u64..50,
    ) {
        let (h, w) = (h4 * 4, w4 * 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Params::new();
        let models: Vec<Box<dyn Model>> = vec![
            Box::new(Fno::new(&mut params, &mut rng, FnoConfig {
                in_channels: 4, out_channels: 2, width: 4, modes: 2, depth: 1,
            })),
            Box::new(Ffno::new(&mut params, &mut rng, FfnoConfig {
                in_channels: 4, out_channels: 2, width: 4, modes: 2, depth: 1,
            })),
            Box::new(UNet::new(&mut params, &mut rng, UNetConfig {
                in_channels: 4, out_channels: 2, width: 2,
            })),
            Box::new(NeurOLight::new(&mut params, &mut rng, NeurOLightConfig {
                in_channels: 6, out_channels: 2, width: 4, modes: 2, depth: 1,
            })),
        ];
        for model in &models {
            let x = Tensor::zeros(&[n, model.in_channels(), h, w]);
            let y = model.infer(&params, x);
            prop_assert_eq!(y.shape(), &[n, 2, h, w], "{}", model.name());
        }
    }

    /// Model outputs are deterministic functions of input and parameters.
    #[test]
    fn forward_is_deterministic(seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Params::new();
        let model = Fno::new(&mut params, &mut rng, FnoConfig {
            in_channels: 2, out_channels: 1, width: 4, modes: 2, depth: 2,
        });
        let x = Tensor::from_vec(
            &[1, 2, 8, 8],
            (0..128).map(|k| ((k * 31 % 23) as f64 - 11.0) * 0.1).collect(),
        );
        let y1 = model.infer(&params, x.clone());
        let y2 = model.infer(&params, x);
        prop_assert_eq!(y1.as_slice(), y2.as_slice());
    }

    /// Batch independence: processing two samples in a batch equals
    /// processing them separately (no cross-batch leakage).
    #[test]
    fn batch_independence(seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Params::new();
        let model = Fno::new(&mut params, &mut rng, FnoConfig {
            in_channels: 1, out_channels: 1, width: 4, modes: 2, depth: 1,
        });
        let a = Tensor::from_vec(&[1, 1, 8, 8], (0..64).map(|k| (k as f64 * 0.1).sin()).collect());
        let b = Tensor::from_vec(&[1, 1, 8, 8], (0..64).map(|k| (k as f64 * 0.2).cos()).collect());
        let mut batch = Tensor::zeros(&[2, 1, 8, 8]);
        batch.as_mut_slice()[..64].copy_from_slice(a.as_slice());
        batch.as_mut_slice()[64..].copy_from_slice(b.as_slice());
        let y_batch = model.infer(&params, batch);
        let ya = model.infer(&params, a);
        let yb = model.infer(&params, b);
        for (k, v) in ya.as_slice().iter().enumerate() {
            prop_assert!((y_batch.as_slice()[k] - v).abs() < 1e-10);
        }
        for (k, v) in yb.as_slice().iter().enumerate() {
            prop_assert!((y_batch.as_slice()[64 + k] - v).abs() < 1e-10);
        }
    }

    /// Model inference through the `Model` trait records zero tape nodes,
    /// in both dtypes — the typestate guarantee holds end to end.
    #[test]
    fn model_inference_is_tape_free(seed in 0u64..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Params::new();
        let model = Fno::new(&mut params, &mut rng, FnoConfig {
            in_channels: 2, out_channels: 1, width: 4, modes: 2, depth: 2,
        });
        let params32 = params.cast::<f32>();
        let x = Tensor::from_vec(
            &[1, 2, 8, 8],
            (0..128).map(|k| (k as f64 * 0.07).sin()).collect(),
        );
        let before = tape_nodes_recorded();
        let y64 = model.infer(&params, x.clone());
        let y32 = model.infer_f32(&params32, x.cast::<f32>());
        prop_assert_eq!(tape_nodes_recorded(), before);
        // And the f32 path tracks the f64 one.
        for (a, b) in y64.as_slice().iter().zip(y32.as_slice()) {
            prop_assert!((a - *b as f64).abs() < 1e-3, "{} vs {}", a, b);
        }
    }
}
