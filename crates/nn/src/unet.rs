//! UNet (Ronneberger et al., MICCAI 2015) adapted to field regression.

use crate::layers::Conv2d;
use crate::model::Model;
use maps_tensor::{Conv2dSpec, Dtype, Params, Tape, Tensor};
use rand::Rng;

/// Configuration of the [`UNet`] baseline.
#[derive(Debug, Clone, Copy)]
pub struct UNetConfig {
    /// Input feature channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Base width (doubled per encoder level).
    pub width: usize,
}

impl Default for UNetConfig {
    fn default() -> Self {
        UNetConfig {
            in_channels: 4,
            out_channels: 2,
            width: 8,
        }
    }
}

struct ConvBlock {
    c1: Conv2d,
    c2: Conv2d,
}

impl ConvBlock {
    fn new(params: &mut Params, rng: &mut impl Rng, cin: usize, cout: usize) -> Self {
        let spec = Conv2dSpec {
            padding: 1,
            stride: 1,
        };
        ConvBlock {
            c1: Conv2d::new(params, rng, cin, cout, 3, spec),
            c2: Conv2d::new(params, rng, cout, cout, 3, spec),
        }
    }

    fn forward<E: Dtype, T: Tape<E>>(&self, params: &Params<E>, x: Tensor<E, T>) -> Tensor<E, T> {
        let h = self.c1.forward(params, x).gelu();
        self.c2.forward(params, h).gelu()
    }
}

/// A two-level encoder/decoder UNet with skip connections.
///
/// Input spatial extents must be divisible by 4.
pub struct UNet {
    config: UNetConfig,
    enc1: ConvBlock,
    enc2: ConvBlock,
    bottleneck: ConvBlock,
    dec2: ConvBlock,
    dec1: ConvBlock,
    head: Conv2d,
}

impl UNet {
    /// Allocates the model's parameters.
    pub fn new(params: &mut Params, rng: &mut impl Rng, config: UNetConfig) -> Self {
        let w = config.width;
        let enc1 = ConvBlock::new(params, rng, config.in_channels, w);
        let enc2 = ConvBlock::new(params, rng, w, 2 * w);
        let bottleneck = ConvBlock::new(params, rng, 2 * w, 4 * w);
        let dec2 = ConvBlock::new(params, rng, 4 * w + 2 * w, 2 * w);
        let dec1 = ConvBlock::new(params, rng, 2 * w + w, w);
        let head = Conv2d::new(
            params,
            rng,
            w,
            config.out_channels,
            1,
            Conv2dSpec {
                padding: 0,
                stride: 1,
            },
        );
        UNet {
            config,
            enc1,
            enc2,
            bottleneck,
            dec2,
            dec1,
            head,
        }
    }

    fn fwd<E: Dtype, T: Tape<E>>(&self, params: &Params<E>, x: Tensor<E, T>) -> Tensor<E, T> {
        // Skip tensors keep empty tapes; the downstream concat merges each
        // encoder sub-graph back into the main tape exactly once.
        let e1 = self.enc1.forward(params, x);
        let p1 = e1.with_empty_tape().avg_pool2();
        let e2 = self.enc2.forward(params, p1);
        let b = self
            .bottleneck
            .forward(params, e2.with_empty_tape().avg_pool2());
        let d2 = self.dec2.forward(params, b.upsample2().concat_channels(e2));
        let d1 = self
            .dec1
            .forward(params, d2.upsample2().concat_channels(e1));
        self.head.forward(params, d1)
    }
}

impl Model for UNet {
    crate::impl_model_forward!();

    fn in_channels(&self) -> usize {
        self.config.in_channels
    }

    fn name(&self) -> &str {
        "UNet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_preserved() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(0);
        let model = UNet::new(
            &mut params,
            &mut rng,
            UNetConfig {
                in_channels: 4,
                out_channels: 2,
                width: 4,
            },
        );
        let y = model.infer(&params, Tensor::zeros(&[1, 4, 16, 24]));
        assert_eq!(y.shape(), &[1, 2, 16, 24]);
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(3);
        let model = UNet::new(
            &mut params,
            &mut rng,
            UNetConfig {
                in_channels: 1,
                out_channels: 1,
                width: 2,
            },
        );
        let x = Tensor::from_vec(
            &[1, 1, 8, 8],
            (0..64).map(|k| (k as f64 * 0.2).sin()).collect(),
        );
        let loss = model.forward(&params, x.trace()).mean();
        let grads = loss.backward();
        let reached: std::collections::HashSet<_> =
            grads.param_grads(&params).map(|(id, _)| id).collect();
        assert_eq!(reached.len(), params.len(), "all parameters must get grads");
    }
}
