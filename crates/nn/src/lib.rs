//! # maps-nn
//!
//! The neural-operator model zoo of MAPS-Train: FNO, Factorized-FNO, UNet,
//! and NeurOLight field predictors, a black-box response regressor, weight
//! initializers, and SGD/Adam optimizers — all built on the `maps-tensor`
//! typestate autodiff tensors.
//!
//! Every model exposes three entry points via the [`Model`] trait:
//! `forward` (training, `f64` on an `OwnedTape`), `infer` (`f64`, no tape),
//! and `infer_f32` (`f32` storage, no tape):
//!
//! ```
//! use maps_nn::{Fno, FnoConfig, Model};
//! use maps_tensor::{Params, Tensor};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut params = Params::new();
//! let mut rng = StdRng::seed_from_u64(0);
//! let model = Fno::new(&mut params, &mut rng, FnoConfig::default());
//!
//! // Training: traced input, gradients via backward().
//! let x = Tensor::zeros(&[1, 4, 16, 16]);
//! let field = model.forward(&params, x.trace());
//! assert_eq!(field.shape(), &[1, 2, 16, 16]);
//!
//! // Inference: no tape, optionally f32 end to end.
//! let field64 = model.infer(&params, x.clone());
//! let params32 = params.cast::<f32>();
//! let field32 = model.infer_f32(&params32, x.cast::<f32>());
//! assert_eq!(field64.shape(), field32.shape());
//! ```

pub mod blackbox;
pub mod ffno;
pub mod fno;
pub mod init;
pub mod layers;
pub mod model;
pub mod neurolight;
pub mod optim;
pub mod schedule;
pub mod tandem;
pub mod unet;

pub use blackbox::{BlackBoxConfig, BlackBoxNet};
pub use ffno::{Ffno, FfnoConfig};
pub use fno::{Fno, FnoConfig};
pub use layers::{Conv2d, Linear, SpectralConv2d};
pub use model::Model;
pub use neurolight::{NeurOLight, NeurOLightConfig};
pub use optim::{collect_param_grads, Adam, Sgd};
pub use schedule::LrSchedule;
pub use tandem::{Generator, GeneratorConfig, Tandem};
pub use unet::{UNet, UNetConfig};
