//! Learning-rate schedules for the customizable training procedures of
//! MAPS-Train (§III-B: pretraining/fine-tuning and multi-stage learning
//! all lean on LR scheduling).

/// A learning-rate schedule: maps a step index to a multiplier of the base
/// learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant multiplier 1.
    Constant,
    /// Linear warmup over `warmup_steps`, then constant.
    Warmup {
        /// Steps to ramp from 0 to 1.
        warmup_steps: usize,
    },
    /// Cosine decay from 1 to `floor` over `total_steps`.
    Cosine {
        /// Total steps of the decay.
        total_steps: usize,
        /// Final multiplier.
        floor: f64,
    },
    /// Step decay: multiply by `gamma` every `every` steps.
    Step {
        /// Steps between decays.
        every: usize,
        /// Decay factor per stage.
        gamma: f64,
    },
}

impl LrSchedule {
    /// The multiplier at `step` (0-based).
    pub fn multiplier(&self, step: usize) -> f64 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Warmup { warmup_steps } => {
                if warmup_steps == 0 || step >= warmup_steps {
                    1.0
                } else {
                    (step + 1) as f64 / warmup_steps as f64
                }
            }
            LrSchedule::Cosine { total_steps, floor } => {
                if total_steps == 0 || step >= total_steps {
                    floor
                } else {
                    let progress = step as f64 / total_steps as f64;
                    floor + (1.0 - floor) * 0.5 * (1.0 + (std::f64::consts::PI * progress).cos())
                }
            }
            LrSchedule::Step { every, gamma } => gamma.powi((step / every.max(1)) as i32),
        }
    }

    /// Effective learning rate for a base rate.
    pub fn lr(&self, base: f64, step: usize) -> f64 {
        base * self.multiplier(step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_ramps_then_holds() {
        let s = LrSchedule::Warmup { warmup_steps: 4 };
        assert!((s.multiplier(0) - 0.25).abs() < 1e-12);
        assert!((s.multiplier(3) - 1.0).abs() < 1e-12);
        assert_eq!(s.multiplier(100), 1.0);
    }

    #[test]
    fn cosine_decays_to_floor() {
        let s = LrSchedule::Cosine {
            total_steps: 10,
            floor: 0.1,
        };
        assert!((s.multiplier(0) - 1.0).abs() < 0.05);
        assert!(s.multiplier(5) < s.multiplier(1));
        assert!((s.multiplier(10) - 0.1).abs() < 1e-12);
        assert_eq!(s.multiplier(50), 0.1);
    }

    #[test]
    fn step_decay_is_piecewise_constant() {
        let s = LrSchedule::Step {
            every: 3,
            gamma: 0.5,
        };
        assert_eq!(s.multiplier(0), 1.0);
        assert_eq!(s.multiplier(2), 1.0);
        assert_eq!(s.multiplier(3), 0.5);
        assert_eq!(s.multiplier(6), 0.25);
    }

    #[test]
    fn lr_scales_base() {
        let s = LrSchedule::Constant;
        assert_eq!(s.lr(3e-3, 7), 3e-3);
    }
}
