//! Tandem networks (paper §III-B feature 2: "multi-model setups, e.g.
//! Tandem neural networks, for both forward prediction and inverse
//! generation").
//!
//! A tandem couples an *inverse generator* (target response → design
//! density) with a **frozen** pretrained forward model (design → response):
//! training minimizes the response error through the forward model, which
//! sidesteps the one-to-many ambiguity of direct inverse regression.

use crate::layers::Conv2d;
use crate::model::Model;
use maps_tensor::{Conv2dSpec, Dtype, OwnedTape, Params, Tape, Tensor};
use rand::Rng;

/// Configuration of the inverse generator head.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Channels of the target-specification map fed to the generator.
    pub in_channels: usize,
    /// Design-density output channels (usually 1).
    pub out_channels: usize,
    /// Hidden width.
    pub width: usize,
    /// Number of hidden conv layers.
    pub depth: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            in_channels: 2,
            out_channels: 1,
            width: 8,
            depth: 3,
        }
    }
}

/// A convolutional inverse generator with a sigmoid-bounded density output.
pub struct Generator {
    config: GeneratorConfig,
    layers: Vec<Conv2d>,
    head: Conv2d,
}

impl Generator {
    /// Allocates the generator's parameters.
    pub fn new(params: &mut Params, rng: &mut impl Rng, config: GeneratorConfig) -> Self {
        let spec = Conv2dSpec {
            padding: 1,
            stride: 1,
        };
        let mut layers = Vec::new();
        let mut cin = config.in_channels;
        for _ in 0..config.depth {
            layers.push(Conv2d::new(params, rng, cin, config.width, 3, spec));
            cin = config.width;
        }
        let head = Conv2d::new(
            params,
            rng,
            cin,
            config.out_channels,
            1,
            Conv2dSpec {
                padding: 0,
                stride: 1,
            },
        );
        Generator {
            config,
            layers,
            head,
        }
    }

    /// Produces a density in `(0, 1)` via `0.5·(tanh + 1)`.
    pub fn forward<E: Dtype, T: Tape<E>>(
        &self,
        params: &Params<E>,
        x: Tensor<E, T>,
    ) -> Tensor<E, T> {
        let mut h = x;
        for layer in &self.layers {
            h = layer.forward(params, h).gelu();
        }
        self.head
            .forward(params, h)
            .tanh()
            .add_scalar(E::ONE)
            .scale(E::from_f64(0.5))
    }

    /// The configuration used at construction.
    pub fn config(&self) -> GeneratorConfig {
        self.config
    }
}

/// A tandem: generator (trainable) chained into a frozen forward model.
///
/// The generator's parameters live in *its own* store so the optimizer can
/// step them without touching the pretrained forward weights.
pub struct Tandem<F: Model> {
    /// The trainable inverse generator.
    pub generator: Generator,
    /// The frozen pretrained forward model.
    pub forward_model: F,
}

impl<F: Model> Tandem<F> {
    /// Couples a generator with a pretrained forward model.
    pub fn new(generator: Generator, forward_model: F) -> Self {
        Tandem {
            generator,
            forward_model,
        }
    }

    /// Runs target-spec → generated density → predicted response, with the
    /// target spec traced as the graph root.
    ///
    /// `assemble` maps the generated (taped) density plus the target spec
    /// into the forward model's input encoding (e.g. painting the density
    /// into a permittivity channel); it must be built from tensor ops so
    /// gradients keep flowing.
    ///
    /// Returns `(density value, taped response)`.
    pub fn forward(
        &self,
        gen_params: &Params,
        fwd_params: &Params,
        target_spec: &Tensor,
        assemble: impl FnOnce(Tensor<f64, OwnedTape<f64>>, &Tensor) -> Tensor<f64, OwnedTape<f64>>,
    ) -> (Tensor, Tensor<f64, OwnedTape<f64>>) {
        let density = self.generator.forward(gen_params, target_spec.trace());
        let density_value = density.no_tape();
        let fwd_input = assemble(density, target_spec);
        let response = self.forward_model.forward(fwd_params, fwd_input);
        (density_value, response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fno::{Fno, FnoConfig};
    use crate::optim::Adam;
    use maps_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generator_output_is_a_density() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(0);
        let gen = Generator::new(&mut params, &mut rng, GeneratorConfig::default());
        let x = Tensor::from_vec(
            &[1, 2, 8, 8],
            (0..128).map(|k| ((k % 9) as f64 - 4.0) * 0.3).collect(),
        );
        let d = gen.forward(&params, x);
        assert_eq!(d.shape(), &[1, 1, 8, 8]);
        for v in d.as_slice() {
            assert!((0.0..=1.0).contains(v), "density out of range: {v}");
        }
    }

    /// Training the tandem updates only the generator: the frozen forward
    /// model's parameters receive no gradients because they live in a
    /// separate store that is never stepped.
    #[test]
    fn tandem_trains_generator_against_frozen_forward() {
        let mut gen_params = Params::new();
        let mut fwd_params = Params::new();
        let mut rng = StdRng::seed_from_u64(1);
        let gen = Generator::new(
            &mut gen_params,
            &mut rng,
            GeneratorConfig {
                in_channels: 1,
                out_channels: 1,
                width: 4,
                depth: 2,
            },
        );
        let fwd = Fno::new(
            &mut fwd_params,
            &mut rng,
            FnoConfig {
                in_channels: 1,
                out_channels: 1,
                width: 4,
                modes: 2,
                depth: 1,
            },
        );
        // Target the frozen model's response to a known reference density:
        // that target is achievable by construction (the reference density
        // attains it exactly), so the loss floor is zero regardless of how
        // the random forward weights fall for a given RNG stream.
        let reference_density = Tensor::from_vec(
            &[1, 1, 8, 8],
            (0..64)
                .map(|k| 0.5 + 0.4 * (k as f64 * 0.7).sin())
                .collect(),
        );
        let target_response = fwd.infer(&fwd_params, reference_density);
        let tandem = Tandem::new(gen, fwd);
        let fwd_snapshot: Vec<Vec<f64>> = fwd_params
            .ids()
            .map(|id| fwd_params.get(id).as_slice().to_vec())
            .collect();

        let spec = Tensor::from_vec(
            &[1, 1, 8, 8],
            (0..64).map(|k| (k as f64 * 0.3).sin() * 0.5).collect(),
        );
        let mut adam = Adam::new(2e-2);
        let mut losses = Vec::new();
        for _ in 0..40 {
            let (_density, response) =
                tandem.forward(&gen_params, &fwd_params, &spec, |density, _spec| density);
            let loss = response.mse(target_response.clone());
            losses.push(loss.item());
            let grads = loss.backward();
            adam.step(&mut gen_params, &grads);
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.9),
            "tandem loss should drop: {:?}",
            (losses[0], losses.last().unwrap())
        );
        // Forward model untouched.
        for (id, snap) in fwd_params.ids().zip(&fwd_snapshot) {
            assert_eq!(fwd_params.get(id).as_slice(), snap.as_slice());
        }
    }
}
