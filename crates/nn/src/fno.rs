//! Fourier Neural Operator (Li et al., ICLR 2021).

use crate::layers::{Conv2d, SpectralConv2d};
use crate::model::Model;
use maps_tensor::{Conv2dSpec, Dtype, Params, Tape, Tensor};
use rand::Rng;

/// Configuration of the [`Fno`] baseline.
#[derive(Debug, Clone, Copy)]
pub struct FnoConfig {
    /// Input feature channels.
    pub in_channels: usize,
    /// Output channels (2 for an `Ez` phasor).
    pub out_channels: usize,
    /// Hidden width.
    pub width: usize,
    /// Retained Fourier modes per spatial dimension.
    pub modes: usize,
    /// Number of spectral layers.
    pub depth: usize,
}

impl Default for FnoConfig {
    fn default() -> Self {
        FnoConfig {
            in_channels: 4,
            out_channels: 2,
            width: 12,
            modes: 6,
            depth: 4,
        }
    }
}

/// The FNO baseline: pointwise lifting, `depth` spectral blocks with 1×1
/// convolution bypasses, and a two-layer pointwise projection head.
#[derive(Debug, Clone)]
pub struct Fno {
    config: FnoConfig,
    lift: Conv2d,
    blocks: Vec<(SpectralConv2d, Conv2d)>,
    proj1: Conv2d,
    proj2: Conv2d,
}

impl Fno {
    /// Allocates the model's parameters.
    pub fn new(params: &mut Params, rng: &mut impl Rng, config: FnoConfig) -> Self {
        let pw = Conv2dSpec {
            padding: 0,
            stride: 1,
        };
        let lift = Conv2d::new(params, rng, config.in_channels, config.width, 1, pw);
        let blocks = (0..config.depth)
            .map(|_| {
                (
                    SpectralConv2d::new(
                        params,
                        rng,
                        config.width,
                        config.width,
                        config.modes,
                        config.modes,
                    ),
                    Conv2d::new(params, rng, config.width, config.width, 1, pw),
                )
            })
            .collect();
        let proj1 = Conv2d::new(params, rng, config.width, config.width, 1, pw);
        let proj2 = Conv2d::new(params, rng, config.width, config.out_channels, 1, pw);
        Fno {
            config,
            lift,
            blocks,
            proj1,
            proj2,
        }
    }

    /// The configuration used at construction.
    pub fn config(&self) -> FnoConfig {
        self.config
    }

    fn fwd<E: Dtype, T: Tape<E>>(&self, params: &Params<E>, x: Tensor<E, T>) -> Tensor<E, T> {
        let mut h = self.lift.forward(params, x);
        let depth = self.blocks.len();
        for (i, (spec, bypass)) in self.blocks.iter().enumerate() {
            // One branch takes an empty tape; the merge in `add` splices
            // both sub-graphs back together in sequence order.
            let s = spec.forward(params, h.with_empty_tape());
            let b = bypass.forward(params, h);
            let sum = b.add(s);
            h = if i + 1 < depth { sum.gelu() } else { sum };
        }
        let p = self.proj1.forward(params, h).gelu();
        self.proj2.forward(params, p)
    }
}

impl Model for Fno {
    crate::impl_model_forward!();

    fn in_channels(&self) -> usize {
        self.config.in_channels
    }

    fn name(&self) -> &str {
        "FNO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(0);
        let model = Fno::new(
            &mut params,
            &mut rng,
            FnoConfig {
                in_channels: 4,
                out_channels: 2,
                width: 6,
                modes: 3,
                depth: 2,
            },
        );
        let y = model.infer(&params, Tensor::zeros(&[2, 4, 16, 16]));
        assert_eq!(y.shape(), &[2, 2, 16, 16]);
    }

    #[test]
    fn infer_matches_forward_and_tracks_f32() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(7);
        let model = Fno::new(
            &mut params,
            &mut rng,
            FnoConfig {
                in_channels: 2,
                out_channels: 1,
                width: 4,
                modes: 2,
                depth: 2,
            },
        );
        let x = Tensor::from_vec(
            &[1, 2, 8, 8],
            (0..128).map(|k| (k as f64 * 0.13).sin()).collect(),
        );
        let taped = model.forward(&params, x.trace()).no_tape();
        let plain = model.infer(&params, x.clone());
        assert_eq!(taped.as_slice(), plain.as_slice());
        let p32 = params.cast::<f32>();
        let y32 = model.infer_f32(&p32, x.cast::<f32>());
        for (a, b) in plain.as_slice().iter().zip(y32.as_slice()) {
            assert!((a - *b as f64).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn one_training_step_reduces_loss() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(1);
        let model = Fno::new(
            &mut params,
            &mut rng,
            FnoConfig {
                in_channels: 2,
                out_channels: 1,
                width: 4,
                modes: 2,
                depth: 2,
            },
        );
        let x_data = Tensor::from_vec(
            &[1, 2, 8, 8],
            (0..128)
                .map(|k| ((k * 13 % 7) as f64 - 3.0) * 0.1)
                .collect(),
        );
        let target = Tensor::from_vec(
            &[1, 1, 8, 8],
            (0..64).map(|k| (k as f64 * 0.1).sin()).collect(),
        );
        let eval = |params: &Params| -> (f64, Vec<(maps_tensor::ParamId, Tensor)>) {
            let loss = model.forward(params, x_data.trace()).mse(target.clone());
            let value = loss.item();
            let grads = loss.backward();
            (
                value,
                grads
                    .param_grads(params)
                    .map(|(i, g)| (i, g.clone()))
                    .collect(),
            )
        };
        let (l0, grads) = eval(&params);
        for (id, g) in grads {
            let p = params.get_mut(id);
            for (pv, gv) in p.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *pv -= 0.05 * gv;
            }
        }
        let (l1, _) = eval(&params);
        assert!(l1 < l0, "FNO step should reduce loss: {l0} -> {l1}");
    }
}
