//! Factorized Fourier Neural Operator (Tran et al., ICLR 2023).
//!
//! Each block applies two axis-factorized spectral convolutions (one
//! retaining only row modes, one retaining only column modes), sums them,
//! and feeds the result through a pointwise two-layer MLP with a residual
//! connection — far fewer spectral parameters than a full 2-D FNO block.

use crate::layers::{Conv2d, SpectralConv2d};
use crate::model::Model;
use maps_tensor::{Conv2dSpec, Dtype, Params, Tape, Tensor};
use rand::Rng;

/// Configuration of the [`Ffno`] baseline.
#[derive(Debug, Clone, Copy)]
pub struct FfnoConfig {
    /// Input feature channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Hidden width.
    pub width: usize,
    /// Retained Fourier modes along the factorized axis.
    pub modes: usize,
    /// Number of factorized blocks.
    pub depth: usize,
}

impl Default for FfnoConfig {
    fn default() -> Self {
        FfnoConfig {
            in_channels: 4,
            out_channels: 2,
            width: 12,
            modes: 6,
            depth: 4,
        }
    }
}

struct FfnoBlock {
    spec_h: SpectralConv2d,
    spec_w: SpectralConv2d,
    mlp1: Conv2d,
    mlp2: Conv2d,
}

/// The Factorized-FNO baseline.
pub struct Ffno {
    config: FfnoConfig,
    lift: Conv2d,
    blocks: Vec<FfnoBlock>,
    proj: Conv2d,
}

impl Ffno {
    /// Allocates the model's parameters.
    pub fn new(params: &mut Params, rng: &mut impl Rng, config: FfnoConfig) -> Self {
        let pw = Conv2dSpec {
            padding: 0,
            stride: 1,
        };
        let lift = Conv2d::new(params, rng, config.in_channels, config.width, 1, pw);
        let blocks = (0..config.depth)
            .map(|_| FfnoBlock {
                // Row-factorized: full mode budget along H, minimal along W.
                spec_h: SpectralConv2d::new(
                    params,
                    rng,
                    config.width,
                    config.width,
                    config.modes,
                    1,
                ),
                // Column-factorized: minimal along H, full along W.
                spec_w: SpectralConv2d::new(
                    params,
                    rng,
                    config.width,
                    config.width,
                    1,
                    config.modes,
                ),
                mlp1: Conv2d::new(params, rng, config.width, config.width, 1, pw),
                mlp2: Conv2d::new(params, rng, config.width, config.width, 1, pw),
            })
            .collect();
        let proj = Conv2d::new(params, rng, config.width, config.out_channels, 1, pw);
        Ffno {
            config,
            lift,
            blocks,
            proj,
        }
    }

    fn fwd<E: Dtype, T: Tape<E>>(&self, params: &Params<E>, x: Tensor<E, T>) -> Tensor<E, T> {
        let mut h = self.lift.forward(params, x);
        for block in &self.blocks {
            let sh = block.spec_h.forward(params, h.with_empty_tape());
            let sw = block.spec_w.forward(params, h.with_empty_tape());
            let s = sh.add(sw);
            let m = block.mlp1.forward(params, s).gelu();
            let m = block.mlp2.forward(params, m);
            h = h.add(m); // residual
        }
        self.proj.forward(params, h)
    }
}

impl Model for Ffno {
    crate::impl_model_forward!();

    fn in_channels(&self) -> usize {
        self.config.in_channels
    }

    fn name(&self) -> &str {
        "F-FNO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(0);
        let model = Ffno::new(
            &mut params,
            &mut rng,
            FfnoConfig {
                in_channels: 4,
                out_channels: 2,
                width: 6,
                modes: 3,
                depth: 2,
            },
        );
        let y = model.infer(&params, Tensor::zeros(&[1, 4, 16, 16]));
        assert_eq!(y.shape(), &[1, 2, 16, 16]);
    }

    #[test]
    fn factorized_has_fewer_params_than_full_fno() {
        let mut p1 = Params::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = FfnoConfig {
            in_channels: 4,
            out_channels: 2,
            width: 8,
            modes: 4,
            depth: 3,
        };
        let _ = Ffno::new(&mut p1, &mut rng, cfg);
        let mut p2 = Params::new();
        let _ = crate::fno::Fno::new(
            &mut p2,
            &mut rng,
            crate::fno::FnoConfig {
                in_channels: 4,
                out_channels: 2,
                width: 8,
                modes: 4,
                depth: 3,
            },
        );
        assert!(
            p1.total_elements() < p2.total_elements(),
            "F-FNO {} should be smaller than FNO {}",
            p1.total_elements(),
            p2.total_elements()
        );
    }
}
