//! A black-box response regressor: design in, scalar figure-of-merit out.
//!
//! This is the "AD-Black Box" baseline of the paper's Table II — gradients
//! for inverse design are obtained by differentiating *through* the network
//! with respect to its input, with no field information at all.

use crate::layers::Conv2d;
use crate::model::Model;
use maps_tensor::{Conv2dSpec, Dtype, Params, Tape, Tensor};
use rand::Rng;

/// Configuration of the [`BlackBoxNet`].
#[derive(Debug, Clone, Copy)]
pub struct BlackBoxConfig {
    /// Input feature channels.
    pub in_channels: usize,
    /// Base width.
    pub width: usize,
    /// Number of stride-free conv + pool stages (each halves H and W).
    pub stages: usize,
}

impl Default for BlackBoxConfig {
    fn default() -> Self {
        BlackBoxConfig {
            in_channels: 4,
            width: 8,
            stages: 2,
        }
    }
}

/// CNN encoder with global pooling and a sigmoid-free scalar head.
/// Output shape is `[N, 1]`.
pub struct BlackBoxNet {
    config: BlackBoxConfig,
    convs: Vec<Conv2d>,
    head: Conv2d,
}

impl BlackBoxNet {
    /// Allocates the model's parameters.
    pub fn new(params: &mut Params, rng: &mut impl Rng, config: BlackBoxConfig) -> Self {
        let spec = Conv2dSpec {
            padding: 1,
            stride: 1,
        };
        let mut convs = Vec::new();
        let mut cin = config.in_channels;
        let mut cout = config.width;
        for _ in 0..config.stages {
            convs.push(Conv2d::new(params, rng, cin, cout, 3, spec));
            cin = cout;
            cout *= 2;
        }
        let head = Conv2d::new(
            params,
            rng,
            cin,
            1,
            1,
            Conv2dSpec {
                padding: 0,
                stride: 1,
            },
        );
        BlackBoxNet {
            config,
            convs,
            head,
        }
    }

    fn fwd<E: Dtype, T: Tape<E>>(&self, params: &Params<E>, x: Tensor<E, T>) -> Tensor<E, T> {
        let mut h = x;
        for conv in &self.convs {
            h = conv.forward(params, h).gelu().avg_pool2();
        }
        self.head.forward(params, h).global_avg_pool() // [N, 1]
    }
}

impl Model for BlackBoxNet {
    crate::impl_model_forward!();

    fn in_channels(&self) -> usize {
        self.config.in_channels
    }

    fn name(&self) -> &str {
        "BlackBox"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scalar_output_and_input_gradients() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(0);
        let model = BlackBoxNet::new(
            &mut params,
            &mut rng,
            BlackBoxConfig {
                in_channels: 1,
                width: 4,
                stages: 2,
            },
        );
        let x = Tensor::from_vec(
            &[1, 1, 16, 16],
            (0..256).map(|k| (k as f64 * 0.05).cos()).collect(),
        );
        let y = model.forward(&params, x.trace());
        assert_eq!(y.shape(), &[1, 1]);
        // The whole point of the black-box baseline: d(output)/d(input).
        let grads = y.sum().backward();
        let gx = grads.wrt(&x).expect("input gradient must exist");
        assert_eq!(gx.shape(), &[1, 1, 16, 16]);
        assert!(gx.norm_sqr() > 0.0);
    }
}
