//! NeurOLight (Gu et al., NeurIPS 2022): a physics-aware neural operator.
//!
//! Two ingredients distinguish it from a vanilla FNO here, following the
//! paper's description: (1) the input encoding carries a *wave prior* —
//! cos/sin of the accumulated optical path `ω·∫√ε·dx` — computed by the
//! MAPS-Train featurizer when [`Model::wants_wave_prior`] is set, and
//! (2) each block pairs the global spectral path with a local 3×3
//! convolution branch that restores high-frequency detail the mode-truncated
//! spectral kernel discards.

use crate::layers::{Conv2d, SpectralConv2d};
use crate::model::Model;
use maps_tensor::{Conv2dSpec, Dtype, Params, Tape, Tensor};
use rand::Rng;

/// Configuration of the [`NeurOLight`] baseline.
#[derive(Debug, Clone, Copy)]
pub struct NeurOLightConfig {
    /// Input feature channels **including** the two wave-prior channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Hidden width.
    pub width: usize,
    /// Retained Fourier modes per dimension.
    pub modes: usize,
    /// Number of blocks.
    pub depth: usize,
}

impl Default for NeurOLightConfig {
    fn default() -> Self {
        NeurOLightConfig {
            in_channels: 6, // 4 standard + 2 wave-prior channels
            out_channels: 2,
            width: 12,
            modes: 6,
            depth: 4,
        }
    }
}

struct NolBlock {
    spectral: SpectralConv2d,
    local: Conv2d,
    bypass: Conv2d,
}

/// The NeurOLight baseline.
pub struct NeurOLight {
    config: NeurOLightConfig,
    lift: Conv2d,
    blocks: Vec<NolBlock>,
    proj1: Conv2d,
    proj2: Conv2d,
}

impl NeurOLight {
    /// Allocates the model's parameters.
    pub fn new(params: &mut Params, rng: &mut impl Rng, config: NeurOLightConfig) -> Self {
        let pw = Conv2dSpec {
            padding: 0,
            stride: 1,
        };
        let local_spec = Conv2dSpec {
            padding: 1,
            stride: 1,
        };
        let lift = Conv2d::new(params, rng, config.in_channels, config.width, 1, pw);
        let blocks = (0..config.depth)
            .map(|_| NolBlock {
                spectral: SpectralConv2d::new(
                    params,
                    rng,
                    config.width,
                    config.width,
                    config.modes,
                    config.modes,
                ),
                local: Conv2d::new(params, rng, config.width, config.width, 3, local_spec),
                bypass: Conv2d::new(params, rng, config.width, config.width, 1, pw),
            })
            .collect();
        let proj1 = Conv2d::new(params, rng, config.width, config.width, 1, pw);
        let proj2 = Conv2d::new(params, rng, config.width, config.out_channels, 1, pw);
        NeurOLight {
            config,
            lift,
            blocks,
            proj1,
            proj2,
        }
    }

    fn fwd<E: Dtype, T: Tape<E>>(&self, params: &Params<E>, x: Tensor<E, T>) -> Tensor<E, T> {
        let mut h = self.lift.forward(params, x);
        for block in &self.blocks {
            let s = block.spectral.forward(params, h.with_empty_tape());
            let l = block.local.forward(params, h.with_empty_tape());
            let b = block.bypass.forward(params, h.with_empty_tape());
            let act = s.add(l).add(b).gelu();
            h = h.add(act); // residual keeps the wave prior flowing
        }
        let p = self.proj1.forward(params, h).gelu();
        self.proj2.forward(params, p)
    }
}

impl Model for NeurOLight {
    crate::impl_model_forward!();

    fn in_channels(&self) -> usize {
        self.config.in_channels
    }

    fn name(&self) -> &str {
        "NeurOLight"
    }

    fn wants_wave_prior(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(0);
        let model = NeurOLight::new(
            &mut params,
            &mut rng,
            NeurOLightConfig {
                in_channels: 6,
                out_channels: 2,
                width: 4,
                modes: 2,
                depth: 2,
            },
        );
        let y = model.infer(&params, Tensor::zeros(&[1, 6, 16, 16]));
        assert_eq!(y.shape(), &[1, 2, 16, 16]);
        assert!(model.wants_wave_prior());
    }
}
