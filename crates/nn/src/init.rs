//! Weight initializers.

use maps_tensor::Tensor;
use rand::Rng;

/// Kaiming/He-style uniform initialization with the given fan-in.
pub fn kaiming_uniform(rng: &mut impl Rng, shape: &[usize], fan_in: usize) -> Tensor {
    let bound = (1.0 / fan_in.max(1) as f64).sqrt();
    let n: usize = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..n).map(|_| rng.gen_range(-bound..bound)).collect(),
    )
}

/// Scaled initialization for complex spectral weights: FNO convention is
/// `scale = 1/(cin·cout)` uniform.
pub fn spectral_uniform(rng: &mut impl Rng, shape: &[usize], cin: usize, cout: usize) -> Tensor {
    let scale = 1.0 / (cin * cout) as f64;
    let n: usize = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..n).map(|_| rng.gen_range(-scale..scale)).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = kaiming_uniform(&mut rng, &[16, 8, 3, 3], 8 * 9);
        let bound = (1.0 / 72.0f64).sqrt();
        assert!(t.as_slice().iter().all(|v| v.abs() <= bound));
        // Not all zero.
        assert!(t.norm_sqr() > 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(
            kaiming_uniform(&mut a, &[4, 4], 4),
            kaiming_uniform(&mut b, &[4, 4], 4)
        );
    }
}
