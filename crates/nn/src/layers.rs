//! Reusable layers, generic over dtype and tape.
//!
//! A layer's `forward` takes the parameter store *of the matching dtype*
//! (`Params<f64>` for training, a [`maps_tensor::Params::cast`] twin for
//! `f32` inference) and any tape: on `OwnedTape` each op records its
//! backward closure, on `NoneTape` the same code compiles down to pure
//! value arithmetic.

use crate::init::{kaiming_uniform, spectral_uniform};
use maps_tensor::{Conv2dSpec, Dtype, ParamId, Params, Tape, Tensor};
use rand::Rng;

/// A 2-D convolution layer with bias.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: ParamId,
    bias: ParamId,
    spec: Conv2dSpec,
}

impl Conv2d {
    /// Allocates a `cin → cout` convolution with a `k × k` kernel.
    pub fn new(
        params: &mut Params,
        rng: &mut impl Rng,
        cin: usize,
        cout: usize,
        k: usize,
        spec: Conv2dSpec,
    ) -> Self {
        let weight = params.alloc(kaiming_uniform(rng, &[cout, cin, k, k], cin * k * k));
        let bias = params.alloc(Tensor::zeros(&[cout]));
        Conv2d { weight, bias, spec }
    }

    /// Applies the layer.
    pub fn forward<E: Dtype, T: Tape<E>>(
        &self,
        params: &Params<E>,
        x: Tensor<E, T>,
    ) -> Tensor<E, T> {
        let w = params.get(self.weight).clone();
        let b = params.get(self.bias).clone();
        x.conv2d(w, self.spec).add_bias_channel(b)
    }
}

/// A fully connected layer with bias, acting on `[N, K]` matrices.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: ParamId,
    bias: ParamId,
}

impl Linear {
    /// Allocates a `k_in → k_out` dense layer.
    pub fn new(params: &mut Params, rng: &mut impl Rng, k_in: usize, k_out: usize) -> Self {
        let weight = params.alloc(kaiming_uniform(rng, &[k_in, k_out], k_in));
        let bias = params.alloc(Tensor::zeros(&[k_out]));
        Linear { weight, bias }
    }

    /// Applies the layer.
    pub fn forward<E: Dtype, T: Tape<E>>(
        &self,
        params: &Params<E>,
        x: Tensor<E, T>,
    ) -> Tensor<E, T> {
        let w = params.get(self.weight).clone();
        let b = params.get(self.bias).clone();
        x.matmul(w).add_bias_cols(b)
    }
}

/// A Fourier-space convolution layer (FNO building block).
#[derive(Debug, Clone)]
pub struct SpectralConv2d {
    w_re: ParamId,
    w_im: ParamId,
    /// Retained modes along H.
    pub modes_h: usize,
    /// Retained modes along W.
    pub modes_w: usize,
}

impl SpectralConv2d {
    /// Allocates a spectral layer keeping `2·mh × 2·mw` corner modes.
    pub fn new(
        params: &mut Params,
        rng: &mut impl Rng,
        cin: usize,
        cout: usize,
        mh: usize,
        mw: usize,
    ) -> Self {
        let shape = [cin, cout, 2 * mh, 2 * mw];
        SpectralConv2d {
            w_re: params.alloc(spectral_uniform(rng, &shape, cin, cout)),
            w_im: params.alloc(spectral_uniform(rng, &shape, cin, cout)),
            modes_h: mh,
            modes_w: mw,
        }
    }

    /// Applies the layer.
    pub fn forward<E: Dtype, T: Tape<E>>(
        &self,
        params: &Params<E>,
        x: Tensor<E, T>,
    ) -> Tensor<E, T> {
        let wr = params.get(self.w_re).clone();
        let wi = params.get(self.w_im).clone();
        x.spectral_conv(wr, wi, self.modes_h, self.modes_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv_layer_shapes() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Conv2d::new(&mut params, &mut rng, 3, 8, 3, Conv2dSpec::default());
        let y = layer.forward(&params, Tensor::zeros(&[2, 3, 16, 16]));
        assert_eq!(y.shape(), &[2, 8, 16, 16]);
    }

    #[test]
    fn linear_layer_shapes() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Linear::new(&mut params, &mut rng, 10, 4);
        let y = layer.forward(&params, Tensor::zeros(&[5, 10]));
        assert_eq!(y.shape(), &[5, 4]);
    }

    #[test]
    fn spectral_layer_shapes() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(3);
        let layer = SpectralConv2d::new(&mut params, &mut rng, 4, 6, 3, 3);
        let y = layer.forward(&params, Tensor::zeros(&[1, 4, 16, 16]));
        assert_eq!(y.shape(), &[1, 6, 16, 16]);
    }

    #[test]
    fn f32_layer_matches_f64() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(5);
        let layer = Conv2d::new(&mut params, &mut rng, 2, 3, 3, Conv2dSpec::default());
        let p32 = params.cast::<f32>();
        let x = Tensor::from_vec(
            &[1, 2, 8, 8],
            (0..128).map(|k| (k as f64 * 0.11).sin()).collect(),
        );
        let y64 = layer.forward(&params, x.clone());
        let y32 = layer.forward(&p32, x.cast::<f32>());
        for (a, b) in y64.as_slice().iter().zip(y32.as_slice()) {
            assert!((a - *b as f64).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn layers_are_trainable_end_to_end() {
        // One SGD step on a conv layer must reduce a simple loss.
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(4);
        let layer = Conv2d::new(&mut params, &mut rng, 1, 1, 3, Conv2dSpec::default());
        let x_data = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|k| k as f64 * 0.1).collect());
        let target = Tensor::full(&[1, 1, 4, 4], 1.0);
        let loss_of = |params: &Params| -> (f64, Vec<(ParamId, Tensor)>) {
            let loss = layer.forward(params, x_data.trace()).mse(target.clone());
            let value = loss.item();
            let grads = loss.backward();
            let pg = grads
                .param_grads(params)
                .map(|(id, g)| (id, g.clone()))
                .collect();
            (value, pg)
        };
        let (l0, grads) = loss_of(&params);
        for (id, g) in grads {
            let p = params.get_mut(id);
            for (pv, gv) in p.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *pv -= 0.1 * gv;
            }
        }
        let (l1, _) = loss_of(&params);
        assert!(l1 < l0, "loss should drop: {l0} -> {l1}");
    }
}
