//! First-order optimizers over a [`Params`] store.

use maps_tensor::{Gradients, ParamId, Params, Tensor};
use std::collections::HashMap;

/// Collects the accumulated gradient of every parameter of `params` that
/// participated in the backward pass, keyed by [`ParamId`].
pub fn collect_param_grads(grads: &Gradients, params: &Params) -> HashMap<ParamId, Tensor> {
    grads
        .param_grads(params)
        .map(|(id, g)| (id, g.clone()))
        .collect()
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient (0 disables).
    pub momentum: f64,
    velocity: HashMap<ParamId, Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f64, momentum: f64) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }

    /// Applies one update step. Gradients for parameters of *other* stores
    /// (e.g. a frozen forward model in a tandem) are ignored because
    /// [`Gradients::param_grads`] only yields this store's leaves.
    pub fn step(&mut self, params: &mut Params, grads: &Gradients) {
        for (id, g) in collect_param_grads(grads, params) {
            let update = if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(id)
                    .or_insert_with(|| Tensor::zeros(g.shape()));
                for (vv, gv) in v.as_mut_slice().iter_mut().zip(g.as_slice()) {
                    *vv = self.momentum * *vv + gv;
                }
                v.clone()
            } else {
                g
            };
            let p = params.get_mut(id);
            for (pv, uv) in p.as_mut_slice().iter_mut().zip(update.as_slice()) {
                *pv -= self.lr * uv;
            }
        }
    }
}

/// Adam (Kingma & Ba, 2015).
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor.
    pub eps: f64,
    t: u64,
    m: HashMap<ParamId, Tensor>,
    v: HashMap<ParamId, Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Applies one update step.
    pub fn step(&mut self, params: &mut Params, grads: &Gradients) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, g) in collect_param_grads(grads, params) {
            let m = self.m.entry(id).or_insert_with(|| Tensor::zeros(g.shape()));
            let v = self.v.entry(id).or_insert_with(|| Tensor::zeros(g.shape()));
            let p = params.get_mut(id);
            for k in 0..g.len() {
                let gv = g.as_slice()[k];
                let mv = self.beta1 * m.as_slice()[k] + (1.0 - self.beta1) * gv;
                let vv = self.beta2 * v.as_slice()[k] + (1.0 - self.beta2) * gv * gv;
                m.as_mut_slice()[k] = mv;
                v.as_mut_slice()[k] = vv;
                let mhat = mv / bc1;
                let vhat = vv / bc2;
                p.as_mut_slice()[k] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_step(
        params: &mut Params,
        id: ParamId,
        opt: &mut dyn FnMut(&mut Params, &Gradients),
    ) -> f64 {
        // loss = Σ (p − 3)²
        let target = Tensor::full(params.get(id).shape(), 3.0);
        let d = params.get(id).trace().sub(target);
        let loss = d.with_empty_tape().mul(d).sum();
        let l = loss.item();
        let grads = loss.backward();
        opt(params, &grads);
        l
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut params = Params::new();
        let id = params.alloc(Tensor::from_vec(&[2], vec![0.0, 10.0]));
        let mut sgd = Sgd::new(0.1, 0.0);
        let mut last = f64::INFINITY;
        for _ in 0..50 {
            last = quadratic_step(&mut params, id, &mut |p, g| sgd.step(p, g));
        }
        assert!(last < 1e-4, "final loss {last}");
        assert!((params.get(id).as_slice()[0] - 3.0).abs() < 0.02);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut params = Params::new();
        let id = params.alloc(Tensor::from_vec(&[3], vec![-5.0, 0.0, 8.0]));
        let mut adam = Adam::new(0.3);
        let mut last = f64::INFINITY;
        for _ in 0..200 {
            last = quadratic_step(&mut params, id, &mut |p, g| adam.step(p, g));
        }
        assert!(last < 1e-3, "final loss {last}");
    }

    #[test]
    fn momentum_accelerates_sgd() {
        let run = |momentum: f64| -> f64 {
            let mut params = Params::new();
            let id = params.alloc(Tensor::from_vec(&[1], vec![10.0]));
            let mut sgd = Sgd::new(0.02, momentum);
            let mut last = 0.0;
            for _ in 0..30 {
                last = quadratic_step(&mut params, id, &mut |p, g| sgd.step(p, g));
            }
            last
        };
        assert!(run(0.9) < run(0.0), "momentum should converge faster here");
    }

    #[test]
    fn duplicate_leaves_accumulate() {
        // The same parameter used twice in the graph must receive the
        // sum of both branch gradients.
        let mut params = Params::new();
        let id = params.alloc(Tensor::from_vec(&[1], vec![2.0]));
        let p = params.get(id).trace();
        let loss = p.with_empty_tape().add(p).sum(); // 2p → d/dp = 2
        let grads = loss.backward();
        let collected = collect_param_grads(&grads, &params);
        assert_eq!(collected[&id].item(), 2.0);
    }

    #[test]
    fn frozen_store_is_untouched() {
        // Gradients flowing through a *different* store's parameters must
        // not be applied when stepping this store.
        let mut trainable = Params::new();
        let mut frozen = Params::new();
        let a = trainable.alloc(Tensor::from_vec(&[1], vec![1.0]));
        let b = frozen.alloc(Tensor::from_vec(&[1], vec![5.0]));
        let loss = trainable.get(a).trace().mul(frozen.get(b).clone()).sum();
        let grads = loss.backward();
        let mut sgd = Sgd::new(0.1, 0.0);
        sgd.step(&mut trainable, &grads);
        assert!((trainable.get(a).item() - 0.5).abs() < 1e-12);
        assert_eq!(frozen.get(b).item(), 5.0);
    }
}
