//! The model abstraction shared by all predictive baselines.

use maps_tensor::{Params, Tape, Var};

/// A neural field/response predictor usable by MAPS-Train.
///
/// Inputs are `[N, in_channels, H, W]` feature maps (permittivity, source,
/// wavelength encoding, optional physics priors); outputs are either
/// `[N, 2, H, W]` field phasors (re/im of `Ez`) or `[N, 1]` scalar responses
/// for black-box models.
pub trait Model {
    /// Runs the forward pass on the tape.
    fn forward(&self, tape: &mut Tape, params: &Params, x: Var) -> Var;
    /// Number of expected input channels.
    fn in_channels(&self) -> usize;
    /// Short name used in benchmark tables (e.g. `"FNO"`).
    fn name(&self) -> &str;
    /// Whether the model consumes the physics wave-prior channels
    /// (NeurOLight does; the others use the plain encoding).
    fn wants_wave_prior(&self) -> bool {
        false
    }
}
