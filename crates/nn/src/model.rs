//! The model abstraction shared by all predictive baselines.

use maps_tensor::{OwnedTape, Params, Tensor};

/// A neural field/response predictor usable by MAPS-Train.
///
/// Inputs are `[N, in_channels, H, W]` feature maps (permittivity, source,
/// wavelength encoding, optional physics priors); outputs are either
/// `[N, 2, H, W]` field phasors (re/im of `Ez`) or `[N, 1]` scalar responses
/// for black-box models.
///
/// The trait is object-safe, so it exposes three concrete entry points
/// instead of one generic method:
///
/// * [`Model::forward`] — training: `f64` values on an [`OwnedTape`],
///   every op recording its backward closure.
/// * [`Model::infer`] — inference at training precision: `f64`, no tape,
///   zero autodiff overhead.
/// * [`Model::infer_f32`] — the hot path: `f32` storage (half the memory
///   bandwidth) and no tape; pair with [`Params::cast`].
///
/// Implementors write a single dtype- and tape-generic inherent method
/// `fwd` and derive all three entry points with [`impl_model_forward!`].
///
/// [`impl_model_forward!`]: crate::impl_model_forward
pub trait Model {
    /// Runs the forward pass recording on an autodiff tape (training).
    fn forward(
        &self,
        params: &Params,
        x: Tensor<f64, OwnedTape<f64>>,
    ) -> Tensor<f64, OwnedTape<f64>>;
    /// Runs the forward pass tape-free in `f64` (inference).
    fn infer(&self, params: &Params, x: Tensor<f64>) -> Tensor<f64>;
    /// Runs the forward pass tape-free in `f32` (fast inference).
    fn infer_f32(&self, params: &Params<f32>, x: Tensor<f32>) -> Tensor<f32>;
    /// Number of expected input channels.
    fn in_channels(&self) -> usize;
    /// Short name used in benchmark tables (e.g. `"FNO"`).
    fn name(&self) -> &str;
    /// Whether the model consumes the physics wave-prior channels
    /// (NeurOLight does; the others use the plain encoding).
    fn wants_wave_prior(&self) -> bool {
        false
    }
}

/// Expands to the three [`Model`] entry points (`forward`, `infer`,
/// `infer_f32`), each delegating to an inherent generic method on the
/// implementing type:
///
/// ```ignore
/// fn fwd<E: Dtype, T: Tape<E>>(&self, params: &Params<E>, x: Tensor<E, T>) -> Tensor<E, T>
/// ```
///
/// Invoke inside the `impl Model for …` block.
#[macro_export]
macro_rules! impl_model_forward {
    () => {
        fn forward(
            &self,
            params: &::maps_tensor::Params<f64>,
            x: ::maps_tensor::Tensor<f64, ::maps_tensor::OwnedTape<f64>>,
        ) -> ::maps_tensor::Tensor<f64, ::maps_tensor::OwnedTape<f64>> {
            self.fwd(params, x)
        }

        fn infer(
            &self,
            params: &::maps_tensor::Params<f64>,
            x: ::maps_tensor::Tensor<f64>,
        ) -> ::maps_tensor::Tensor<f64> {
            self.fwd(params, x)
        }

        fn infer_f32(
            &self,
            params: &::maps_tensor::Params<f32>,
            x: ::maps_tensor::Tensor<f32>,
        ) -> ::maps_tensor::Tensor<f32> {
            self.fwd(params, x)
        }
    };
}
