//! Gradient backends: how `dF/dε` is obtained.
//!
//! The exact path factorizes the FDFD operator once per design — through
//! the process-wide `maps_fdfd::factor_cache`, so the forward and
//! transposed (adjoint) solves share one banded LU, and re-evaluations of
//! the same design skip the factorization entirely. The generic path works
//! with *any* [`FieldSolver`] —
//! including a trained neural operator — using two solves and the
//! reciprocity-based default adjoint, which is how the paper drives inverse
//! design from NN-predicted forward and adjoint fields (§IV-D, Fig. 6).

use maps_core::{ComplexField2d, FieldSolver, RealField2d, SolveFieldError, SolveRequest};
use maps_fdfd::{gradient_from_fields, solve_with_adjoint, FdfdSolver, PowerObjective};

/// One excitation of a batched gradient evaluation: a source, its angular
/// frequency, and the objective differentiated under that excitation.
#[derive(Debug, Clone, Copy)]
pub struct GradientRequest<'a> {
    /// Source current density of this excitation.
    pub source: &'a ComplexField2d,
    /// Angular frequency of this excitation.
    pub omega: f64,
    /// Objective evaluated and differentiated under this excitation.
    pub objective: &'a PowerObjective,
}

/// Produces the objective value, its permittivity gradient, and the forward
/// field for a candidate design.
pub trait GradientSolver {
    /// Evaluates `F` and `dF/dε` at a permittivity map.
    ///
    /// # Errors
    ///
    /// Returns [`SolveFieldError`] when the underlying solves fail.
    fn objective_and_gradient(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
        objective: &PowerObjective,
    ) -> Result<GradientEvaluation, SolveFieldError>;

    /// Evaluates a batch of excitations against one permittivity map,
    /// returning one result per request in input order.
    ///
    /// The default implementation calls
    /// [`GradientSolver::objective_and_gradient`] sequentially. Backends
    /// built on a [`FieldSolver`] override this to issue all forward solves
    /// as one `solve_ez_batch` and all adjoint solves as a second batch, so
    /// a K-excitation design iteration factorizes once per distinct ω
    /// instead of once per solve.
    fn objective_and_gradient_batch(
        &self,
        eps_r: &RealField2d,
        requests: &[GradientRequest<'_>],
    ) -> Vec<Result<GradientEvaluation, SolveFieldError>> {
        requests
            .iter()
            .map(|r| self.objective_and_gradient(eps_r, r.source, r.omega, r.objective))
            .collect()
    }

    /// Backend name for logs and tables.
    fn name(&self) -> &str;
}

/// The shared two-phase batch: all forward solves in one
/// [`FieldSolver::solve_ez_batch`], objective evaluation and adjoint RHS
/// assembly in between, then all adjoint solves in a second batch. A failed
/// forward drops only its own request from the adjoint phase.
fn batch_via_field_solver(
    solver: &dyn FieldSolver,
    eps_r: &RealField2d,
    requests: &[GradientRequest<'_>],
) -> Vec<Result<GradientEvaluation, SolveFieldError>> {
    let forward_reqs: Vec<SolveRequest<'_>> = requests
        .iter()
        .map(|r| SolveRequest::forward(r.source, r.omega))
        .collect();
    let forwards = solver.solve_ez_batch(eps_r, &forward_reqs);
    let mut slots: Vec<Option<Result<GradientEvaluation, SolveFieldError>>> =
        requests.iter().map(|_| None).collect();
    // Survivors of the forward phase, with their objective values and
    // adjoint right-hand sides (kept alive for the adjoint batch borrows).
    let mut survivors: Vec<(usize, ComplexField2d, f64)> = Vec::new();
    let mut adjoint_rhs: Vec<ComplexField2d> = Vec::new();
    for (i, result) in forwards.into_iter().enumerate() {
        // Defense in depth: the objective and rhs only sample the field at
        // the port monitors, so a solver returning Ok with poisoned values
        // elsewhere would otherwise corrupt the gradient silently.
        let checked = result.and_then(|f| maps_core::ensure_finite(&f, solver.name()).map(|()| f));
        match checked {
            Ok(forward) => {
                let objective_value = requests[i].objective.eval(&forward);
                adjoint_rhs.push(ComplexField2d::from_vec(
                    eps_r.grid(),
                    requests[i].objective.adjoint_rhs(&forward),
                ));
                survivors.push((i, forward, objective_value));
            }
            Err(e) => slots[i] = Some(Err(e)),
        }
    }
    let adjoint_reqs: Vec<SolveRequest<'_>> = adjoint_rhs
        .iter()
        .zip(&survivors)
        .map(|(rhs, (i, _, _))| SolveRequest::adjoint(rhs, requests[*i].omega))
        .collect();
    let adjoints = solver.solve_ez_batch(eps_r, &adjoint_reqs);
    for ((i, forward, objective_value), result) in survivors.into_iter().zip(adjoints) {
        let evaluated = result
            .and_then(|a| maps_core::ensure_finite(&a, solver.name()).map(|()| a))
            .map(|adjoint| {
                let grad_eps = gradient_from_fields(&forward, &adjoint, requests[i].omega);
                GradientEvaluation {
                    objective: objective_value,
                    grad_eps,
                    forward,
                    adjoint,
                }
            });
        slots[i] = Some(evaluated);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every gradient request must be answered"))
        .collect()
}

/// The output of one gradient evaluation.
#[derive(Debug, Clone)]
pub struct GradientEvaluation {
    /// Objective value `F(e)`.
    pub objective: f64,
    /// Full-grid `dF/dε_r`.
    pub grad_eps: RealField2d,
    /// The forward field (kept for monitors, labels, plots).
    pub forward: ComplexField2d,
    /// The adjoint field.
    pub adjoint: ComplexField2d,
}

/// Exact adjoint via the FDFD direct solver (one LU, two substitutions).
#[derive(Debug, Clone)]
pub struct ExactAdjoint {
    solver: FdfdSolver,
}

impl ExactAdjoint {
    /// Wraps an FDFD solver.
    pub fn new(solver: FdfdSolver) -> Self {
        ExactAdjoint { solver }
    }

    /// The wrapped solver.
    pub fn solver(&self) -> &FdfdSolver {
        &self.solver
    }
}

impl Default for ExactAdjoint {
    fn default() -> Self {
        ExactAdjoint::new(FdfdSolver::new())
    }
}

impl GradientSolver for ExactAdjoint {
    fn objective_and_gradient(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
        objective: &PowerObjective,
    ) -> Result<GradientEvaluation, SolveFieldError> {
        let sol = solve_with_adjoint(&self.solver, eps_r, source, omega, objective)?;
        Ok(GradientEvaluation {
            objective: sol.objective,
            grad_eps: sol.gradient,
            forward: sol.forward,
            adjoint: sol.adjoint,
        })
    }

    fn objective_and_gradient_batch(
        &self,
        eps_r: &RealField2d,
        requests: &[GradientRequest<'_>],
    ) -> Vec<Result<GradientEvaluation, SolveFieldError>> {
        batch_via_field_solver(&self.solver, eps_r, requests)
    }

    fn name(&self) -> &str {
        "exact-adjoint"
    }
}

/// Gradient through any [`FieldSolver`]: a forward solve plus an adjoint
/// solve (exact transpose when the solver provides it, reciprocity
/// approximation otherwise — e.g. for neural surrogates).
pub struct FieldGradient<'a> {
    solver: &'a dyn FieldSolver,
}

impl<'a> FieldGradient<'a> {
    /// Wraps a field solver by reference.
    pub fn new(solver: &'a dyn FieldSolver) -> Self {
        FieldGradient { solver }
    }
}

impl std::fmt::Debug for FieldGradient<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FieldGradient({})", self.solver.name())
    }
}

impl GradientSolver for FieldGradient<'_> {
    fn objective_and_gradient(
        &self,
        eps_r: &RealField2d,
        source: &ComplexField2d,
        omega: f64,
        objective: &PowerObjective,
    ) -> Result<GradientEvaluation, SolveFieldError> {
        let forward = self.solver.solve_ez(eps_r, source, omega)?;
        // Defense in depth: the objective and rhs only sample the field at
        // the port monitors, so a solver returning Ok with poisoned values
        // elsewhere would otherwise corrupt the gradient silently.
        maps_core::ensure_finite(&forward, self.solver.name())?;
        let objective_value = objective.eval(&forward);
        let rhs = ComplexField2d::from_vec(eps_r.grid(), objective.adjoint_rhs(&forward));
        let adjoint = self.solver.solve_adjoint_ez(eps_r, &rhs, omega)?;
        maps_core::ensure_finite(&adjoint, self.solver.name())?;
        let grad_eps = gradient_from_fields(&forward, &adjoint, omega);
        Ok(GradientEvaluation {
            objective: objective_value,
            grad_eps,
            forward,
            adjoint,
        })
    }

    fn objective_and_gradient_batch(
        &self,
        eps_r: &RealField2d,
        requests: &[GradientRequest<'_>],
    ) -> Vec<Result<GradientEvaluation, SolveFieldError>> {
        batch_via_field_solver(self.solver, eps_r, requests)
    }

    fn name(&self) -> &str {
        "field-gradient"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_core::{Grid2d, Port, Rect, Shape};
    use maps_fdfd::{ModeMonitor, ModeSource};

    /// Batched evaluation through the FDFD batch plane must reproduce the
    /// scalar trait path bit-for-bit: the same LU answers both, and the
    /// substitution sweeps are the same operations.
    #[test]
    fn batched_gradients_match_scalar_bitwise() {
        let grid = Grid2d::new(56, 40, 0.08);
        let omega = maps_core::omega_for_wavelength(1.55);
        let yc = grid.height() / 2.0;
        let mut eps = RealField2d::constant(grid, 2.07);
        maps_core::paint(
            &mut eps,
            &Shape::Rect(Rect::new(0.0, yc - 0.24, grid.width(), yc + 0.24)),
            12.11,
        );
        let in_port = Port::new(
            (1.2, yc),
            0.48,
            maps_core::Axis::X,
            maps_core::Direction::Positive,
        );
        let out_port = Port::new(
            (grid.width() - 1.2, yc),
            0.48,
            maps_core::Axis::X,
            maps_core::Direction::Positive,
        );
        let j = ModeSource::new(&eps, &in_port, omega)
            .unwrap()
            .current_density(grid);
        let monitor = ModeMonitor::new(&eps, &out_port, omega).unwrap();
        let obj_fwd = PowerObjective::new().with_term(monitor.outgoing_functional(), 1.0);
        let obj_neg = PowerObjective::new().with_term(monitor.outgoing_functional(), -0.5);

        let fdfd = FdfdSolver::new();
        let generic = FieldGradient::new(&fdfd);
        let requests = [
            GradientRequest {
                source: &j,
                omega,
                objective: &obj_fwd,
            },
            GradientRequest {
                source: &j,
                omega,
                objective: &obj_neg,
            },
        ];
        let batch = generic.objective_and_gradient_batch(&eps, &requests);
        assert_eq!(batch.len(), 2);
        for (b, r) in batch.iter().zip(&requests) {
            let b = b.as_ref().unwrap();
            let s = generic
                .objective_and_gradient(&eps, r.source, r.omega, r.objective)
                .unwrap();
            assert_eq!(b.objective.to_bits(), s.objective.to_bits());
            for (a, e) in b.grad_eps.as_slice().iter().zip(s.grad_eps.as_slice()) {
                assert_eq!(a.to_bits(), e.to_bits());
            }
            for (a, e) in b.forward.as_slice().iter().zip(s.forward.as_slice()) {
                assert_eq!(a.re.to_bits(), e.re.to_bits());
                assert_eq!(a.im.to_bits(), e.im.to_bits());
            }
        }
    }

    /// The exact adjoint and the trait-based gradient (with the FDFD's
    /// exact transpose override) must agree to rounding.
    #[test]
    fn exact_and_trait_gradients_agree() {
        let grid = Grid2d::new(56, 40, 0.08);
        let omega = maps_core::omega_for_wavelength(1.55);
        let yc = grid.height() / 2.0;
        let mut eps = RealField2d::constant(grid, 2.07);
        maps_core::paint(
            &mut eps,
            &Shape::Rect(Rect::new(0.0, yc - 0.24, grid.width(), yc + 0.24)),
            12.11,
        );
        let in_port = Port::new(
            (1.2, yc),
            0.48,
            maps_core::Axis::X,
            maps_core::Direction::Positive,
        );
        let out_port = Port::new(
            (grid.width() - 1.2, yc),
            0.48,
            maps_core::Axis::X,
            maps_core::Direction::Positive,
        );
        let j = ModeSource::new(&eps, &in_port, omega)
            .unwrap()
            .current_density(grid);
        let monitor = ModeMonitor::new(&eps, &out_port, omega).unwrap();
        let obj = PowerObjective::new().with_term(monitor.outgoing_functional(), 1.0);

        let exact = ExactAdjoint::default();
        let e1 = exact.objective_and_gradient(&eps, &j, omega, &obj).unwrap();
        let fdfd = FdfdSolver::new();
        let generic = FieldGradient::new(&fdfd);
        let e2 = generic
            .objective_and_gradient(&eps, &j, omega, &obj)
            .unwrap();
        assert!((e1.objective - e2.objective).abs() < 1e-9 * (1.0 + e1.objective.abs()));
        let mut max_diff: f64 = 0.0;
        let mut max_mag: f64 = 0.0;
        for (a, b) in e1.grad_eps.as_slice().iter().zip(e2.grad_eps.as_slice()) {
            max_diff = max_diff.max((a - b).abs());
            max_mag = max_mag.max(a.abs());
        }
        assert!(
            max_diff < 1e-9 * max_mag.max(1.0),
            "diff {max_diff} vs mag {max_mag}"
        );
    }
}
