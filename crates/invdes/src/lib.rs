//! # maps-invdes
//!
//! MAPS-InvDes: an AI-assisted, fabrication-aware adjoint inverse-design
//! toolkit. It layers differentiable reparametrizations (symmetry, cone
//! density filters, tanh binarization projections, a lithography/etch
//! variation model) over an adjoint gradient engine, and drives Adam ascent
//! on the design variables. Any [`maps_core::FieldSolver`] — the exact FDFD
//! solver or a trained neural operator — can supply the fields.
//!
//! The core loop (paper Eq. 1): `θ → P → G → ρ̄ → ε(ρ̄) → F(ε)`, with the
//! adjoint gradient pulled back through every stage.

pub mod checkpoint;
pub mod gradient;
pub mod init;
pub mod litho;
pub mod mfs;
pub mod multi;
pub mod optimizer;
pub mod patch;
pub mod problem;
pub mod reparam;
pub mod robust;

pub use checkpoint::{OptimCheckpoint, RecoveryRecord};
pub use gradient::{
    ExactAdjoint, FieldGradient, GradientEvaluation, GradientRequest, GradientSolver,
};
pub use init::InitStrategy;
pub use litho::{LithoCorner, LithoModel};
pub use mfs::{minimum_feature_size, opening_loss};
pub use multi::{Combine, Excitation, MultiExcitationDesigner};
pub use optimizer::{InverseDesigner, IterationRecord, OptimConfig, OptimError, OptimResult};
pub use patch::Patch;
pub use problem::{DesignProblem, ObjectiveTerm};
pub use reparam::{ConeFilter, Reparam, ReparamChain, Symmetry, TanhProjection};
pub use robust::RobustDesigner;
