//! Predefined design-variable initializations (§III-C1 of the paper).

use crate::patch::Patch;

/// How the raw design variables θ are initialized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitStrategy {
    /// Uniform gray fill — the smooth-convergence default.
    Uniform(f64),
    /// Deterministic pseudo-random fill around `mean ± amplitude`
    /// (seeded; useful for diversity studies and dataset generation).
    Random {
        /// RNG seed.
        seed: u64,
        /// Mean density.
        mean: f64,
        /// Half-range of the perturbation.
        amplitude: f64,
    },
    /// A horizontal core strip through the window centre on a gray
    /// background — the "encourage light transmission" manual prior.
    TransmissionStrip {
        /// Background density.
        background: f64,
        /// Strip density.
        strip: f64,
        /// Strip half-height as a fraction of the window height.
        half_height_frac: f64,
    },
}

impl InitStrategy {
    /// Materializes the strategy into a θ patch.
    pub fn build(&self, nx: usize, ny: usize) -> Patch {
        match *self {
            InitStrategy::Uniform(v) => Patch::constant(nx, ny, v),
            InitStrategy::Random {
                seed,
                mean,
                amplitude,
            } => {
                let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
                let mut next = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state >> 11) as f64 / (1u64 << 53) as f64
                };
                let data = (0..nx * ny)
                    .map(|_| (mean + amplitude * (2.0 * next() - 1.0)).clamp(0.0, 1.0))
                    .collect();
                Patch::from_vec(nx, ny, data)
            }
            InitStrategy::TransmissionStrip {
                background,
                strip,
                half_height_frac,
            } => {
                let mut p = Patch::constant(nx, ny, background);
                let cy = ny as f64 / 2.0;
                let half = half_height_frac * ny as f64;
                for iy in 0..ny {
                    if (iy as f64 + 0.5 - cy).abs() <= half {
                        for ix in 0..nx {
                            p.set(ix, iy, strip);
                        }
                    }
                }
                p
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_fill() {
        let p = InitStrategy::Uniform(0.5).build(4, 4);
        assert!(p.as_slice().iter().all(|v| *v == 0.5));
    }

    #[test]
    fn random_is_seeded_and_bounded() {
        let a = InitStrategy::Random {
            seed: 3,
            mean: 0.5,
            amplitude: 0.3,
        }
        .build(8, 8);
        let b = InitStrategy::Random {
            seed: 3,
            mean: 0.5,
            amplitude: 0.3,
        }
        .build(8, 8);
        assert_eq!(a, b, "same seed → same init");
        assert!(a.as_slice().iter().all(|v| (0.2..=0.8).contains(v)));
        let c = InitStrategy::Random {
            seed: 4,
            mean: 0.5,
            amplitude: 0.3,
        }
        .build(8, 8);
        assert_ne!(a, c, "different seed → different init");
    }

    #[test]
    fn strip_runs_through_center() {
        let p = InitStrategy::TransmissionStrip {
            background: 0.3,
            strip: 0.9,
            half_height_frac: 0.2,
        }
        .build(10, 10);
        assert_eq!(p.get(0, 5), 0.9);
        assert_eq!(p.get(9, 0), 0.3);
    }
}
