//! Checkpoint/resume of optimizer state.
//!
//! A long inverse-design run (the opt-traj sweeps of MAPS-Data run many of
//! them back to back) should survive a crash or preemption. An
//! [`OptimCheckpoint`] captures everything the loop needs to continue
//! deterministically — raw design variables, Adam moments, the projection-β
//! schedule position, the learning rate (which recovery backoff may have
//! reduced), and the full history — and round-trips through JSON via the
//! vendored serde.
//!
//! A run resumed from a checkpoint reproduces the uninterrupted run's
//! remaining iterations bit-for-bit when the solver is deterministic.

use crate::optimizer::IterationRecord;
use crate::patch::Patch;
use serde::{Deserialize, Serialize};

/// One recovered solve failure inside an optimization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryRecord {
    /// Iteration at which the solve failed.
    pub iteration: usize,
    /// The failure, stringified.
    pub error: String,
}

/// Serializable optimizer state at an iteration boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimCheckpoint {
    /// Next iteration to execute (iterations `0..iteration` are done).
    pub iteration: usize,
    /// Raw design variables θ.
    pub theta: Patch,
    /// Projection sharpness at `iteration`.
    pub beta: f64,
    /// Adam first moments.
    pub adam_m: Vec<f64>,
    /// Adam second moments.
    pub adam_v: Vec<f64>,
    /// Adam step counter.
    pub adam_t: u64,
    /// Current learning rate (recovery backoff halves it per failure).
    pub adam_lr: f64,
    /// History of iterations completed so far.
    pub history: Vec<IterationRecord>,
    /// Solve failures recovered so far (counts against the failure budget
    /// after resume too).
    pub recoveries: Vec<RecoveryRecord>,
}

impl OptimCheckpoint {
    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns a message when serialization fails (it does not for this
    /// type).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }

    /// Parses a checkpoint from JSON.
    ///
    /// # Errors
    ///
    /// Returns a message when the JSON is malformed or fields are missing.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// Writes the checkpoint to a file as JSON.
    ///
    /// # Errors
    ///
    /// Returns a message on serialization or I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), String> {
        let json = self.to_json()?;
        std::fs::write(path.as_ref(), json).map_err(|e| e.to_string())
    }

    /// Reads a checkpoint from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O or parse failure.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, String> {
        let json = std::fs::read_to_string(path.as_ref()).map_err(|e| e.to_string())?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_roundtrips_through_json() {
        let cp = OptimCheckpoint {
            iteration: 7,
            theta: Patch::constant(3, 2, 0.25),
            beta: 2.5,
            adam_m: vec![0.1, -0.2, 0.0, 0.5, 1.0, -1.0],
            adam_v: vec![0.01; 6],
            adam_t: 7,
            adam_lr: 0.04,
            history: vec![IterationRecord {
                iteration: 6,
                objective: 0.62,
                gray_level: 0.11,
                beta: 2.3,
                recovered: false,
            }],
            recoveries: vec![RecoveryRecord {
                iteration: 3,
                error: "numerical failure: injected".into(),
            }],
        };
        let json = cp.to_json().unwrap();
        let back = OptimCheckpoint::from_json(&json).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn checkpoint_file_roundtrip() {
        let cp = OptimCheckpoint {
            iteration: 1,
            theta: Patch::constant(2, 2, 0.5),
            beta: 1.5,
            adam_m: vec![0.0; 4],
            adam_v: vec![0.0; 4],
            adam_t: 1,
            adam_lr: 0.08,
            history: Vec::new(),
            recoveries: Vec::new(),
        };
        let dir = std::env::temp_dir();
        let path = dir.join(format!("maps-ckpt-test-{}.json", std::process::id()));
        cp.save(&path).unwrap();
        let back = OptimCheckpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, cp);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(OptimCheckpoint::from_json("{not json").is_err());
        assert!(OptimCheckpoint::from_json("{}").is_err());
    }
}
