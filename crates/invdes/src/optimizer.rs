//! The adjoint topology-optimization loop.
//!
//! Per iteration: θ → (symmetry → filter → projection [→ lithography]) →
//! ρ̄ → ε → forward+adjoint solve → dF/dε → chain-rule back to θ → Adam
//! ascent. The projection sharpness β follows a growth schedule so designs
//! binarize as the optimization converges, exactly the soft-to-hard
//! trajectory MAPS-Data samples from.

use crate::checkpoint::{OptimCheckpoint, RecoveryRecord};
use crate::gradient::GradientSolver;
use crate::init::InitStrategy;
use crate::litho::LithoModel;
use crate::patch::Patch;
use crate::problem::DesignProblem;
use crate::reparam::{ConeFilter, ReparamChain, Symmetry, TanhProjection};
use maps_core::{ComplexField2d, SolveFieldError};
use maps_fdfd::ModeError;
use serde::{Deserialize, Serialize};

/// Configuration of the optimization loop.
#[derive(Debug, Clone)]
pub struct OptimConfig {
    /// Number of iterations.
    pub iterations: usize,
    /// Adam learning rate on θ.
    pub learning_rate: f64,
    /// Initial projection sharpness.
    pub beta_start: f64,
    /// Multiplicative β growth per iteration.
    pub beta_growth: f64,
    /// Density-filter radius in cells (minimum-feature-size control);
    /// zero disables filtering.
    pub filter_radius: f64,
    /// Optional mirror/diagonal symmetry constraint.
    pub symmetry: Option<Symmetry>,
    /// Optional lithography model applied after projection (the printed
    /// pattern is what gets simulated).
    pub litho: Option<LithoModel>,
    /// θ initialization.
    pub init: InitStrategy,
    /// Solve failures tolerated per run before aborting. Each failure is
    /// recovered by reverting to the last feasible θ and halving the
    /// learning rate (see [`InverseDesigner::run_resumable`]).
    pub max_solve_failures: usize,
    /// Emit a checkpoint every N iterations through the `on_checkpoint`
    /// callback of [`InverseDesigner::run_resumable`]; 0 disables.
    pub checkpoint_every: usize,
}

impl Default for OptimConfig {
    fn default() -> Self {
        OptimConfig {
            iterations: 40,
            learning_rate: 0.08,
            beta_start: 1.5,
            beta_growth: 1.08,
            filter_radius: 1.5,
            symmetry: None,
            litho: None,
            init: InitStrategy::Uniform(0.5),
            max_solve_failures: 3,
            checkpoint_every: 0,
        }
    }
}

/// One recorded optimization step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Objective (normalized transmission) at this step's design.
    pub objective: f64,
    /// Gray level of the projected density (0 = binary).
    pub gray_level: f64,
    /// Projection β used this step.
    pub beta: f64,
    /// True when this iteration's solve failed and the loop recovered by
    /// reverting to the last feasible design (the recorded objective and
    /// gray level are carried forward from that design).
    pub recovered: bool,
}

/// The result of an optimization run.
#[derive(Debug, Clone)]
pub struct OptimResult {
    /// Final raw design variables.
    pub theta: Patch,
    /// Final projected density ρ̄.
    pub density: Patch,
    /// Per-iteration history (recovered iterations carry
    /// [`IterationRecord::recovered`]).
    pub history: Vec<IterationRecord>,
    /// Solve failures that were recovered during the run.
    pub recoveries: Vec<RecoveryRecord>,
    /// Forward field of the final design.
    pub final_field: ComplexField2d,
}

impl OptimResult {
    /// Best finite objective reached over the run, or `None` when the
    /// history is empty (or holds no finite objective).
    pub fn best_objective(&self) -> Option<f64> {
        self.history
            .iter()
            .map(|r| r.objective)
            .filter(|o| o.is_finite())
            .fold(None, |acc, o| Some(acc.map_or(o, |a: f64| a.max(o))))
    }
}

/// Errors from the optimization loop.
#[derive(Debug)]
#[non_exhaustive]
pub enum OptimError {
    /// A port guided no eigenmode.
    Mode(ModeError),
    /// A field solve failed (carries any [`SolveFieldError`] variant,
    /// including `NonFinite` output-validation rejections).
    Solve(SolveFieldError),
    /// The per-run failure budget ([`OptimConfig::max_solve_failures`]) was
    /// exhausted.
    TooManyFailures {
        /// Total failed solves in the run.
        failures: usize,
        /// The failure that broke the budget.
        last: SolveFieldError,
    },
    /// A resume checkpoint is inconsistent with the problem/configuration.
    Checkpoint {
        /// Description of the inconsistency.
        detail: String,
    },
}

impl std::fmt::Display for OptimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimError::Mode(e) => write!(f, "mode solver: {e}"),
            OptimError::Solve(e) => write!(f, "field solver: {e}"),
            OptimError::TooManyFailures { failures, last } => {
                write!(f, "aborted after {failures} solve failures (last: {last})")
            }
            OptimError::Checkpoint { detail } => write!(f, "bad checkpoint: {detail}"),
        }
    }
}

impl std::error::Error for OptimError {}

impl From<ModeError> for OptimError {
    fn from(e: ModeError) -> Self {
        OptimError::Mode(e)
    }
}

impl From<SolveFieldError> for OptimError {
    fn from(e: SolveFieldError) -> Self {
        OptimError::Solve(e)
    }
}

/// A simple Adam state over a flat θ vector.
#[derive(Debug, Clone)]
struct PatchAdam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
    lr: f64,
}

impl PatchAdam {
    fn new(n: usize, lr: f64) -> Self {
        PatchAdam {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
            lr,
        }
    }

    /// Restores optimizer state from a checkpoint.
    fn from_checkpoint(cp: &OptimCheckpoint) -> Self {
        PatchAdam {
            m: cp.adam_m.clone(),
            v: cp.adam_v.clone(),
            t: cp.adam_t,
            lr: cp.adam_lr,
        }
    }

    /// Halves the learning rate after a recovered solve failure, so the
    /// retried step from the reverted θ explores a smaller move.
    fn backoff(&mut self) {
        self.lr *= 0.5;
    }

    /// Ascent step (we maximize the FoM).
    fn ascend(&mut self, theta: &mut Patch, grad: &Patch) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t as i32);
        let bc2 = 1.0 - B2.powi(self.t as i32);
        for (k, g) in grad.as_slice().iter().enumerate() {
            self.m[k] = B1 * self.m[k] + (1.0 - B1) * g;
            self.v[k] = B2 * self.v[k] + (1.0 - B2) * g * g;
            let mhat = self.m[k] / bc1;
            let vhat = self.v[k] / bc2;
            theta.as_mut_slice()[k] += self.lr * mhat / (vhat.sqrt() + EPS);
        }
        theta.clamp01();
    }
}

/// The inverse-design driver.
#[derive(Debug)]
pub struct InverseDesigner {
    config: OptimConfig,
}

impl InverseDesigner {
    /// Creates a driver with the given configuration.
    pub fn new(config: OptimConfig) -> Self {
        InverseDesigner { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &OptimConfig {
        &self.config
    }

    /// Builds the reparametrization chain for a given β.
    pub fn chain(&self, beta: f64) -> ReparamChain {
        let mut chain = ReparamChain::new();
        if let Some(sym) = self.config.symmetry {
            chain = chain.then(sym);
        }
        if self.config.filter_radius > 0.0 {
            chain = chain.then(ConeFilter::new(self.config.filter_radius));
        }
        chain = chain.then(TanhProjection::new(beta));
        if let Some(litho) = self.config.litho {
            chain = chain.then(litho);
        }
        chain
    }

    /// Runs the optimization with a callback invoked after every iteration
    /// (used by MAPS-Data's trajectory sampler).
    ///
    /// # Errors
    ///
    /// Returns [`OptimError`] when mode solving fails or the solve-failure
    /// budget is exhausted.
    pub fn run_with_callback(
        &self,
        problem: &DesignProblem,
        solver: &dyn GradientSolver,
        on_iteration: impl FnMut(&IterationRecord, &Patch, &ComplexField2d),
    ) -> Result<OptimResult, OptimError> {
        self.run_resumable(problem, solver, None, on_iteration, |_| {})
    }

    /// Builds a checkpoint capturing the loop state before `iteration`.
    #[allow(clippy::too_many_arguments)]
    fn checkpoint_at(
        iteration: usize,
        theta: &Patch,
        beta: f64,
        adam: &PatchAdam,
        history: &[IterationRecord],
        recoveries: &[RecoveryRecord],
    ) -> OptimCheckpoint {
        OptimCheckpoint {
            iteration,
            theta: theta.clone(),
            beta,
            adam_m: adam.m.clone(),
            adam_v: adam.v.clone(),
            adam_t: adam.t,
            adam_lr: adam.lr,
            history: history.to_vec(),
            recoveries: recoveries.to_vec(),
        }
    }

    /// Runs the optimization with fault tolerance and checkpoint/resume.
    ///
    /// Per-iteration solve failures are *recovered*, not fatal: the failure
    /// is recorded in [`OptimResult::recoveries`] (and as a
    /// `recovered: true` history entry), θ reverts to the last design whose
    /// solve succeeded, the learning rate is halved, and the loop continues.
    /// The run aborts with [`OptimError::TooManyFailures`] once more than
    /// [`OptimConfig::max_solve_failures`] failures accumulate.
    ///
    /// When `resume` is given, the loop continues from that checkpoint and —
    /// with a deterministic solver — reproduces the uninterrupted run's
    /// remaining iterations exactly. When
    /// [`OptimConfig::checkpoint_every`] is nonzero, `on_checkpoint` is
    /// invoked at every N-th iteration boundary with the state needed to
    /// resume there.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError`] when mode solving fails, the failure budget is
    /// exhausted, or `resume` is inconsistent with the problem.
    ///
    /// # Panics
    ///
    /// Panics if no iteration completes successfully (e.g. resuming a
    /// checkpoint whose `iteration` already equals `config.iterations` and
    /// an empty remaining schedule).
    pub fn run_resumable(
        &self,
        problem: &DesignProblem,
        solver: &dyn GradientSolver,
        resume: Option<&OptimCheckpoint>,
        mut on_iteration: impl FnMut(&IterationRecord, &Patch, &ComplexField2d),
        mut on_checkpoint: impl FnMut(&OptimCheckpoint),
    ) -> Result<OptimResult, OptimError> {
        let (nx, ny) = problem.design_size;
        let _span = maps_obs::span("invdes.run")
            .field("design", format!("{nx}x{ny}"))
            .field("iterations", self.config.iterations);
        let (mut theta, mut adam, mut beta, start, mut history, mut recoveries) = match resume {
            Some(cp) => {
                if (cp.theta.nx(), cp.theta.ny()) != (nx, ny) {
                    return Err(OptimError::Checkpoint {
                        detail: format!(
                            "checkpoint design is {}x{}, problem wants {nx}x{ny}",
                            cp.theta.nx(),
                            cp.theta.ny()
                        ),
                    });
                }
                if cp.iteration > self.config.iterations
                    || cp.adam_m.len() != cp.theta.len()
                    || cp.adam_v.len() != cp.theta.len()
                {
                    return Err(OptimError::Checkpoint {
                        detail: "iteration or Adam state inconsistent with design size".into(),
                    });
                }
                maps_obs::info!(
                    "resuming inverse design at iteration {} of {}",
                    cp.iteration,
                    self.config.iterations
                );
                (
                    cp.theta.clone(),
                    PatchAdam::from_checkpoint(cp),
                    cp.beta,
                    cp.iteration,
                    cp.history.clone(),
                    cp.recoveries.clone(),
                )
            }
            None => {
                let theta = self.config.init.build(nx, ny);
                let adam = PatchAdam::new(theta.len(), self.config.learning_rate);
                (
                    theta,
                    adam,
                    self.config.beta_start,
                    0,
                    Vec::with_capacity(self.config.iterations),
                    Vec::new(),
                )
            }
        };
        let omega = problem.omega();
        let source = problem.source()?;
        let objective = problem.objective()?;
        // Convergence trajectories: one row per iteration (recovered
        // iterations repeat the last feasible values so rows stay dense).
        let objective_series = maps_obs::series("invdes.objective");
        let gray_series = maps_obs::series("invdes.gray_level");
        let lr_series = maps_obs::series("invdes.lr");
        let recovery_series = maps_obs::series("invdes.recoveries");
        let mut last_field = None;
        let mut last_density = theta.clone();
        // The last θ whose solve succeeded — the revert target on failure.
        let mut feasible_theta: Option<Patch> = None;
        for iteration in start..self.config.iterations {
            let iter_span = maps_obs::span("invdes.iteration").field("iteration", iteration);
            let chain = self.chain(beta);
            let inter = chain.forward_all(&theta);
            let density = inter.last().expect("chain output").clone();
            let eps = problem.eps_for(&density);
            match solver.objective_and_gradient(&eps, &source, omega, &objective) {
                Ok(eval) => {
                    let grad_patch = problem.gradient_to_patch(&eval.grad_eps);
                    let grad_theta = chain.backward(&inter, &grad_patch);
                    let grad_norm = grad_theta
                        .as_slice()
                        .iter()
                        .map(|g| g * g)
                        .sum::<f64>()
                        .sqrt();
                    let record = IterationRecord {
                        iteration,
                        objective: eval.objective,
                        gray_level: density.gray_level(),
                        beta,
                        recovered: false,
                    };
                    maps_obs::counter("invdes.iterations").inc();
                    maps_obs::gauge("invdes.objective").set(record.objective);
                    maps_obs::gauge("invdes.gray_level").set(record.gray_level);
                    maps_obs::histogram("invdes.grad_norm").record(grad_norm);
                    let step = iteration as u64;
                    objective_series.push(step, record.objective);
                    gray_series.push(step, record.gray_level);
                    lr_series.push(step, adam.lr);
                    maps_obs::info!(
                        "invdes iter {iteration}: objective {:.4} gray {:.3} |grad| {grad_norm:.3e} \
                         beta {beta:.2} ({:.2}s)",
                        record.objective,
                        record.gray_level,
                        iter_span.elapsed().as_secs_f64()
                    );
                    on_iteration(&record, &density, &eval.forward);
                    history.push(record);
                    feasible_theta = Some(theta.clone());
                    adam.ascend(&mut theta, &grad_theta);
                    beta *= self.config.beta_growth;
                    last_field = Some(eval.forward);
                    last_density = density;
                }
                Err(e) if e.is_retryable() => {
                    maps_obs::counter("invdes.solve_failures").inc();
                    maps_obs::error!(
                        "invdes iter {iteration}: solve failed ({e}); reverting to last \
                         feasible design"
                    );
                    recoveries.push(RecoveryRecord {
                        iteration,
                        error: e.to_string(),
                    });
                    if recoveries.len() > self.config.max_solve_failures {
                        return Err(OptimError::TooManyFailures {
                            failures: recoveries.len(),
                            last: e,
                        });
                    }
                    // Fall back to the previous feasible design and take a
                    // smaller step from there; β does not advance (the
                    // design made no progress this iteration).
                    if let Some(prev) = &feasible_theta {
                        theta = prev.clone();
                    }
                    adam.backoff();
                    if let Some(prev_rec) = history.last().copied() {
                        let record = IterationRecord {
                            iteration,
                            objective: prev_rec.objective,
                            gray_level: prev_rec.gray_level,
                            beta,
                            recovered: true,
                        };
                        history.push(record);
                        let step = iteration as u64;
                        objective_series.push(step, prev_rec.objective);
                        gray_series.push(step, prev_rec.gray_level);
                        lr_series.push(step, adam.lr);
                    }
                    recovery_series.push(iteration as u64, recoveries.len() as f64);
                    maps_obs::counter("invdes.recoveries").inc();
                }
                Err(other) => return Err(other.into()),
            }
            if self.config.checkpoint_every > 0
                && (iteration + 1) % self.config.checkpoint_every == 0
                && iteration + 1 < self.config.iterations
            {
                on_checkpoint(&Self::checkpoint_at(
                    iteration + 1,
                    &theta,
                    beta,
                    &adam,
                    &history,
                    &recoveries,
                ));
            }
        }
        Ok(OptimResult {
            theta,
            density: last_density,
            history,
            recoveries,
            final_field: last_field.expect("at least one successful iteration"),
        })
    }

    /// Runs the optimization without a callback.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError`] when mode solving or a field solve fails.
    pub fn run(
        &self,
        problem: &DesignProblem,
        solver: &dyn GradientSolver,
    ) -> Result<OptimResult, OptimError> {
        self.run_with_callback(problem, solver, |_, _, _| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::ExactAdjoint;
    use maps_core::{Axis, Direction, Grid2d, Port, RealField2d};

    /// A tiny straight-through coupler: the design region interrupts a
    /// waveguide; optimization must learn to bridge it.
    fn bridge_problem() -> DesignProblem {
        let grid = Grid2d::new(56, 40, 0.08);
        let yc = grid.height() / 2.0;
        let mut base = RealField2d::constant(grid, 2.07);
        maps_core::paint(
            &mut base,
            &maps_core::Shape::Rect(maps_core::Rect::new(0.0, yc - 0.24, 1.9, yc + 0.24)),
            12.11,
        );
        maps_core::paint(
            &mut base,
            &maps_core::Shape::Rect(maps_core::Rect::new(
                grid.width() - 1.9,
                yc - 0.24,
                grid.width(),
                yc + 0.24,
            )),
            12.11,
        );
        DesignProblem {
            base_eps: base,
            design_origin: (24, 14),
            design_size: (9, 12),
            eps_min: 2.07,
            eps_max: 12.11,
            wavelength: 1.55,
            input_port: Port::new((1.1, yc), 0.48, Axis::X, Direction::Positive),
            terms: vec![crate::problem::ObjectiveTerm {
                port: Port::new((grid.width() - 1.1, yc), 0.48, Axis::X, Direction::Positive),
                weight: 1.0,
            }],
            normalization: 1.0,
        }
    }

    #[test]
    fn optimization_improves_transmission() {
        let mut problem = bridge_problem();
        let exact = ExactAdjoint::default();
        problem.calibrate(exact.solver()).unwrap();
        let designer = InverseDesigner::new(OptimConfig {
            iterations: 12,
            learning_rate: 0.12,
            beta_start: 1.5,
            beta_growth: 1.15,
            filter_radius: 1.0,
            symmetry: Some(Symmetry::MirrorY),
            litho: None,
            init: InitStrategy::Uniform(0.5),
            ..OptimConfig::default()
        });
        let result = designer.run(&problem, &exact).unwrap();
        let first = result.history.first().unwrap().objective;
        let best = result.best_objective().unwrap();
        assert!(
            best > first * 1.2,
            "optimization should improve transmission: {first:.4} -> {best:.4}"
        );
        assert_eq!(result.history.len(), 12);
        // β grew along the schedule.
        assert!(result.history.last().unwrap().beta > result.history[0].beta);
    }

    #[test]
    fn callback_sees_every_iteration() {
        let mut problem = bridge_problem();
        let exact = ExactAdjoint::default();
        problem.calibrate(exact.solver()).unwrap();
        let designer = InverseDesigner::new(OptimConfig {
            iterations: 3,
            ..OptimConfig::default()
        });
        let mut seen = Vec::new();
        designer
            .run_with_callback(&problem, &exact, |rec, density, field| {
                seen.push(rec.iteration);
                assert_eq!((density.nx(), density.ny()), problem.design_size);
                assert_eq!(field.grid(), problem.grid());
            })
            .unwrap();
        assert_eq!(seen, vec![0, 1, 2]);
    }
}
