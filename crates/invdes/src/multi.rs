//! Multi-excitation inverse design.
//!
//! Multiplexing devices (WDM, MDM, switches) are specified by *several*
//! excitations at once — e.g. "λ₁ from the input routes to port A **and**
//! λ₂ routes to port B". Each excitation is a (frequency, source, objective)
//! triple; the design maximizes the weighted sum (or the soft minimum) of
//! the per-excitation figures of merit, with adjoint gradients accumulated
//! across excitations.

use crate::gradient::{GradientRequest, GradientSolver};
use crate::optimizer::{IterationRecord, OptimConfig, OptimError, OptimResult};
use crate::patch::Patch;
use crate::problem::DesignProblem;
use maps_core::ComplexField2d;
use maps_fdfd::PowerObjective;

/// One excitation of a multi-objective design.
pub struct Excitation {
    /// Human-readable label (printed in logs).
    pub label: String,
    /// Angular frequency of this excitation.
    pub omega: f64,
    /// Source current density.
    pub source: ComplexField2d,
    /// Differentiable power objective evaluated under this excitation.
    pub objective: PowerObjective,
    /// Weight in the combined figure of merit.
    pub weight: f64,
}

impl std::fmt::Debug for Excitation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Excitation({}, omega={:.3}, weight={})",
            self.label, self.omega, self.weight
        )
    }
}

/// How per-excitation objectives combine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Combine {
    /// Weighted sum `Σ wᵢ·Fᵢ` — maximizes average performance.
    WeightedSum,
    /// Soft minimum `−(1/τ)·ln Σ wᵢ·e^{−τ·Fᵢ}` — pushes up the worst
    /// excitation (balanced multiplexers).
    SoftMin {
        /// Sharpness τ; larger values approximate `min` more closely.
        tau: f64,
    },
}

/// A multi-excitation topology optimizer sharing the reparametrization
/// pipeline of [`crate::InverseDesigner`].
#[derive(Debug)]
pub struct MultiExcitationDesigner {
    base: crate::optimizer::InverseDesigner,
    combine: Combine,
}

impl MultiExcitationDesigner {
    /// Creates a designer with the given per-iteration configuration and
    /// combination rule.
    pub fn new(config: OptimConfig, combine: Combine) -> Self {
        MultiExcitationDesigner {
            base: crate::optimizer::InverseDesigner::new(config),
            combine,
        }
    }

    /// Evaluates the combined objective and θ-gradient at raw variables.
    ///
    /// Returns `(combined, grad_theta, per_excitation)`.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError`] if any excitation's solve fails.
    #[allow(clippy::type_complexity)]
    pub fn evaluate(
        &self,
        problem: &DesignProblem,
        excitations: &[Excitation],
        solver: &dyn GradientSolver,
        theta: &Patch,
        beta: f64,
    ) -> Result<(f64, Patch, Vec<f64>), OptimError> {
        assert!(!excitations.is_empty(), "at least one excitation required");
        let chain = self.base.chain(beta);
        let inter = chain.forward_all(theta);
        let density = inter.last().expect("chain output");
        let eps = problem.eps_for(density);
        // All excitations go down as one batch: a backend on the FDFD batch
        // plane issues every forward solve together and every adjoint solve
        // together, factorizing once per distinct ω for the whole iteration.
        let requests: Vec<GradientRequest<'_>> = excitations
            .iter()
            .map(|exc| GradientRequest {
                source: &exc.source,
                omega: exc.omega,
                objective: &exc.objective,
            })
            .collect();
        let mut evals = Vec::with_capacity(excitations.len());
        {
            // Flow root for the whole gradient batch: the FDFD batch plane
            // fans the ω-buckets across workers under this span, so the
            // exported trace shows one stitched tree per iteration.
            let _span =
                maps_obs::span("invdes.gradient_batch").field("excitations", excitations.len());
            for result in solver.objective_and_gradient_batch(&eps, &requests) {
                evals.push(result?);
            }
        }
        let per: Vec<f64> = evals.iter().map(|e| e.objective).collect();
        // Combined value and per-excitation chain weights dC/dFᵢ.
        let (combined, dc_df): (f64, Vec<f64>) = match self.combine {
            Combine::WeightedSum => {
                let c = per.iter().zip(excitations).map(|(f, e)| e.weight * f).sum();
                (c, excitations.iter().map(|e| e.weight).collect())
            }
            Combine::SoftMin { tau } => {
                let z: f64 = per
                    .iter()
                    .zip(excitations)
                    .map(|(f, e)| e.weight * (-tau * f).exp())
                    .sum();
                let c = -z.ln() / tau;
                let d = per
                    .iter()
                    .zip(excitations)
                    .map(|(f, e)| e.weight * (-tau * f).exp() / z)
                    .collect();
                (c, d)
            }
        };
        // Accumulate the weighted density gradient into one scratch patch
        // (no per-excitation patch allocation), then pull back.
        let mut grad_density = Patch::zeros(density.nx(), density.ny());
        for (eval, w) in evals.iter().zip(&dc_df) {
            problem.accumulate_gradient_patch(&eval.grad_eps, *w, &mut grad_density);
        }
        let grad_theta = chain.backward(&inter, &grad_density);
        Ok((combined, grad_theta, per))
    }

    /// Runs the multi-excitation optimization (Adam ascent on the combined
    /// figure of merit) with a per-iteration callback receiving the
    /// per-excitation objectives.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError`] if any solve fails.
    pub fn run_with_callback(
        &self,
        problem: &DesignProblem,
        excitations: &[Excitation],
        solver: &dyn GradientSolver,
        mut on_iteration: impl FnMut(&IterationRecord, &[f64]),
    ) -> Result<OptimResult, OptimError> {
        let cfg = self.base.config();
        let (nx, ny) = problem.design_size;
        let mut theta = cfg.init.build(nx, ny);
        let mut m = vec![0.0; theta.len()];
        let mut v = vec![0.0; theta.len()];
        let mut beta = cfg.beta_start;
        let mut history = Vec::with_capacity(cfg.iterations);
        let mut last_density = theta.clone();
        let objective_series = maps_obs::series("invdes.multi.objective");
        let gray_series = maps_obs::series("invdes.multi.gray_level");
        for iteration in 0..cfg.iterations {
            let (combined, grad, per) =
                self.evaluate(problem, excitations, solver, &theta, beta)?;
            last_density = self.base.chain(beta).forward(&theta);
            let record = IterationRecord {
                iteration,
                objective: combined,
                gray_level: last_density.gray_level(),
                beta,
                recovered: false,
            };
            objective_series.push(iteration as u64, combined);
            gray_series.push(iteration as u64, record.gray_level);
            on_iteration(&record, &per);
            history.push(record);
            let t = (iteration + 1) as i32;
            let bc1 = 1.0 - 0.9f64.powi(t);
            let bc2 = 1.0 - 0.999f64.powi(t);
            for (k, g) in grad.as_slice().iter().enumerate() {
                m[k] = 0.9 * m[k] + 0.1 * g;
                v[k] = 0.999 * v[k] + 0.001 * g * g;
                theta.as_mut_slice()[k] +=
                    cfg.learning_rate * (m[k] / bc1) / ((v[k] / bc2).sqrt() + 1e-8);
            }
            theta.clamp01();
            beta *= cfg.beta_growth;
        }
        // Final forward field under the first excitation (for inspection).
        let eps = problem.eps_for(&last_density);
        let eval = solver.objective_and_gradient(
            &eps,
            &excitations[0].source,
            excitations[0].omega,
            &excitations[0].objective,
        )?;
        Ok(OptimResult {
            theta,
            density: last_density,
            history,
            final_field: eval.forward,
            recoveries: Vec::new(),
        })
    }

    /// Runs without a callback.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError`] if any solve fails.
    pub fn run(
        &self,
        problem: &DesignProblem,
        excitations: &[Excitation],
        solver: &dyn GradientSolver,
    ) -> Result<OptimResult, OptimError> {
        self.run_with_callback(problem, excitations, solver, |_, _| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::ExactAdjoint;
    use crate::init::InitStrategy;
    use maps_core::{Axis, Direction, Grid2d, Port, RealField2d};
    use maps_fdfd::{FdfdSolver, ModeMonitor, ModeSource, PmlConfig};

    /// A splitter-style problem: input left, two outputs right (top and
    /// bottom); two objectives reward power in each arm respectively.
    fn splitter() -> (DesignProblem, Vec<Excitation>) {
        let grid = Grid2d::new(50, 44, 0.08);
        let mut base = RealField2d::constant(grid, 2.07);
        let yc = grid.height() / 2.0;
        let (y_hi, y_lo) = (yc + 0.8, yc - 0.8);
        maps_core::paint(
            &mut base,
            &maps_core::Shape::Rect(maps_core::Rect::new(0.0, yc - 0.24, 1.7, yc + 0.24)),
            12.11,
        );
        for y in [y_hi, y_lo] {
            maps_core::paint(
                &mut base,
                &maps_core::Shape::Rect(maps_core::Rect::new(
                    grid.width() - 1.5,
                    y - 0.24,
                    grid.width(),
                    y + 0.24,
                )),
                12.11,
            );
        }
        let input = Port::new((1.1, yc), 0.48, Axis::X, Direction::Positive);
        let out_hi = Port::new(
            (grid.width() - 0.9, y_hi),
            0.48,
            Axis::X,
            Direction::Positive,
        );
        let out_lo = Port::new(
            (grid.width() - 0.9, y_lo),
            0.48,
            Axis::X,
            Direction::Positive,
        );
        let problem = DesignProblem {
            base_eps: base.clone(),
            design_origin: (21, 12),
            design_size: (10, 20),
            eps_min: 2.07,
            eps_max: 12.11,
            wavelength: 1.55,
            input_port: input,
            terms: vec![],
            normalization: 1.0,
        };
        let omega = problem.omega();
        let source = ModeSource::new(&base, &input, omega)
            .unwrap()
            .current_density(grid);
        let make_obj = |port: &Port| {
            PowerObjective::new().with_term(
                ModeMonitor::new(&base, port, omega)
                    .unwrap()
                    .outgoing_functional(),
                1.0,
            )
        };
        let excitations = vec![
            Excitation {
                label: "to-top".into(),
                omega,
                source: source.clone(),
                objective: make_obj(&out_hi),
                weight: 1.0,
            },
            Excitation {
                label: "to-bottom".into(),
                omega,
                source,
                objective: make_obj(&out_lo),
                weight: 1.0,
            },
        ];
        (problem, excitations)
    }

    #[test]
    fn weighted_sum_improves_both_arms() {
        let (problem, excitations) = splitter();
        let solver = ExactAdjoint::new(FdfdSolver::with_pml(PmlConfig::auto(problem.grid().dl)));
        let designer = MultiExcitationDesigner::new(
            OptimConfig {
                iterations: 10,
                learning_rate: 0.15,
                beta_start: 1.5,
                beta_growth: 1.15,
                filter_radius: 1.2,
                symmetry: Some(crate::reparam::Symmetry::MirrorY),
                litho: None,
                init: InitStrategy::Uniform(0.5),
                ..OptimConfig::default()
            },
            Combine::WeightedSum,
        );
        let mut first_per = Vec::new();
        let mut last_per = Vec::new();
        designer
            .run_with_callback(&problem, &excitations, &solver, |rec, per| {
                if rec.iteration == 0 {
                    first_per = per.to_vec();
                }
                last_per = per.to_vec();
            })
            .unwrap();
        let first: f64 = first_per.iter().sum();
        let last: f64 = last_per.iter().sum();
        assert!(
            last > first,
            "combined objective should improve: {first} -> {last}"
        );
        // With mirror symmetry, both arms receive comparable power.
        let ratio = last_per[0] / last_per[1].max(1e-30);
        assert!((0.5..2.0).contains(&ratio), "arm balance {ratio}");
    }

    #[test]
    fn softmin_tracks_worst_excitation() {
        let (problem, excitations) = splitter();
        let solver = ExactAdjoint::new(FdfdSolver::with_pml(PmlConfig::auto(problem.grid().dl)));
        let designer = MultiExcitationDesigner::new(
            OptimConfig {
                iterations: 1,
                ..OptimConfig::default()
            },
            Combine::SoftMin { tau: 50.0 },
        );
        let theta = InitStrategy::Uniform(0.5).build(10, 20);
        let (combined, _, per) = designer
            .evaluate(&problem, &excitations, &solver, &theta, 2.0)
            .unwrap();
        let worst = per.iter().cloned().fold(f64::INFINITY, f64::min);
        // The log-sum-exp softmin underestimates the true minimum by at
        // most ln(Σ wᵢ)/τ.
        let bound = (2.0f64).ln() / 50.0 + 1e-9;
        assert!(
            combined <= worst + 1e-12 && combined >= worst - bound,
            "soft-min {combined} should lie within [{}, {worst}]",
            worst - bound
        );
    }

    #[test]
    #[should_panic(expected = "at least one excitation")]
    fn rejects_empty_excitations() {
        let (problem, _) = splitter();
        let solver = ExactAdjoint::default();
        let designer = MultiExcitationDesigner::new(OptimConfig::default(), Combine::WeightedSum);
        let theta = InitStrategy::Uniform(0.5).build(10, 20);
        let _ = designer.evaluate(&problem, &[], &solver, &theta, 2.0);
    }
}
