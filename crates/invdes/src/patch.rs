//! Design-region patches: small 2-D density arrays the optimizer works on.

use serde::{Deserialize, Serialize};

/// A rectangular density patch (row-major, `[ny][nx]`), values nominally in
/// `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Patch {
    nx: usize,
    ny: usize,
    data: Vec<f64>,
}

impl Patch {
    /// Creates a patch filled with `value`.
    pub fn constant(nx: usize, ny: usize, value: f64) -> Self {
        Patch {
            nx,
            ny,
            data: vec![value; nx * ny],
        }
    }

    /// Creates a patch of zeros.
    pub fn zeros(nx: usize, ny: usize) -> Self {
        Self::constant(nx, ny, 0.0)
    }

    /// Creates a patch from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != nx * ny`.
    pub fn from_vec(nx: usize, ny: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nx * ny, "patch data length mismatch");
        Patch { nx, ny, data }
    }

    /// Width in cells.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Height in cells.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the patch is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Value at `(ix, iy)`.
    #[inline]
    pub fn get(&self, ix: usize, iy: usize) -> f64 {
        self.data[iy * self.nx + ix]
    }

    /// Sets the value at `(ix, iy)`.
    #[inline]
    pub fn set(&mut self, ix: usize, iy: usize, v: f64) {
        self.data[iy * self.nx + ix] = v;
    }

    /// Clamps every value into `[0, 1]`.
    pub fn clamp01(&mut self) {
        for v in &mut self.data {
            *v = v.clamp(0.0, 1.0);
        }
    }

    /// Mean density (fill factor).
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Binarization level: `4·mean(ρ̄·(1−ρ̄))`, 0 for fully binary patterns
    /// and 1 for a uniform 0.5 gray patch.
    pub fn gray_level(&self) -> f64 {
        4.0 * self.data.iter().map(|r| r * (1.0 - r)).sum::<f64>() / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_level_extremes() {
        let binary = Patch::from_vec(2, 1, vec![0.0, 1.0]);
        assert_eq!(binary.gray_level(), 0.0);
        let gray = Patch::constant(3, 3, 0.5);
        assert!((gray.gray_level() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn clamp_bounds_values() {
        let mut p = Patch::from_vec(2, 1, vec![-0.5, 1.7]);
        p.clamp01();
        assert_eq!(p.as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn indexing_is_row_major() {
        let mut p = Patch::zeros(3, 2);
        p.set(2, 1, 9.0);
        assert_eq!(p.as_slice()[5], 9.0);
        assert_eq!(p.get(2, 1), 9.0);
    }
}
