//! Differentiable reparametrizations `G ∘ P` of the design density.
//!
//! Each transform maps a density [`Patch`] to another patch and provides a
//! vector–Jacobian product, so the adjoint gradient flows from the
//! permittivity map back to the raw design variables θ. Chaining blur
//! filters, binarization projections, symmetry constraints, and lithography
//! models reproduces the paper's "constraints and reparametrization" layer
//! (§III-C2).

use crate::patch::Patch;

/// A differentiable patch-to-patch transform.
pub trait Reparam {
    /// Applies the transform.
    fn forward(&self, input: &Patch) -> Patch;

    /// Vector–Jacobian product: gradient with respect to the input, given
    /// the gradient with respect to the output and the original input.
    fn vjp(&self, input: &Patch, grad_out: &Patch) -> Patch;

    /// Transform name used in logs.
    fn name(&self) -> &str;
}

/// A chain of transforms applied left to right.
#[derive(Default)]
pub struct ReparamChain {
    stages: Vec<Box<dyn Reparam>>,
}

impl std::fmt::Debug for ReparamChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.stages.iter().map(|s| s.name()).collect();
        write!(f, "ReparamChain({names:?})")
    }
}

impl ReparamChain {
    /// Creates an empty (identity) chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a stage, returning the chain.
    pub fn then(mut self, stage: impl Reparam + 'static) -> Self {
        self.stages.push(Box::new(stage));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Returns `true` when the chain is the identity.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Applies every stage, returning all intermediate patches
    /// (`result[0]` is the input, `result[last]` the final density).
    pub fn forward_all(&self, theta: &Patch) -> Vec<Patch> {
        let mut acc = vec![theta.clone()];
        for stage in &self.stages {
            let next = stage.forward(acc.last().expect("non-empty"));
            acc.push(next);
        }
        acc
    }

    /// Applies every stage, returning only the final density.
    pub fn forward(&self, theta: &Patch) -> Patch {
        self.forward_all(theta).pop().expect("non-empty")
    }

    /// Pulls a gradient on the final density back to θ.
    pub fn backward(&self, intermediates: &[Patch], grad_final: &Patch) -> Patch {
        assert_eq!(
            intermediates.len(),
            self.stages.len() + 1,
            "intermediate count mismatch"
        );
        let mut g = grad_final.clone();
        for (k, stage) in self.stages.iter().enumerate().rev() {
            g = stage.vjp(&intermediates[k], &g);
        }
        g
    }
}

/// Mirror symmetry constraint: averages the density with its reflection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symmetry {
    /// Mirror across the vertical centre line (x → nx−1−x).
    MirrorX,
    /// Mirror across the horizontal centre line (y → ny−1−y).
    MirrorY,
    /// Both mirrors (four-fold for square patches).
    Both,
    /// Mirror across the main diagonal (requires a square patch); used by
    /// 90°-rotation-symmetric devices like crossings.
    Diagonal,
}

impl Reparam for Symmetry {
    fn forward(&self, input: &Patch) -> Patch {
        let (nx, ny) = (input.nx(), input.ny());
        let mut out = input.clone();
        let apply_x = matches!(self, Symmetry::MirrorX | Symmetry::Both);
        let apply_y = matches!(self, Symmetry::MirrorY | Symmetry::Both);
        if apply_x {
            let prev = out.clone();
            for iy in 0..ny {
                for ix in 0..nx {
                    out.set(ix, iy, 0.5 * (prev.get(ix, iy) + prev.get(nx - 1 - ix, iy)));
                }
            }
        }
        if apply_y {
            let prev = out.clone();
            for iy in 0..ny {
                for ix in 0..nx {
                    out.set(ix, iy, 0.5 * (prev.get(ix, iy) + prev.get(ix, ny - 1 - iy)));
                }
            }
        }
        if matches!(self, Symmetry::Diagonal) {
            assert_eq!(nx, ny, "diagonal symmetry requires a square patch");
            let prev = out.clone();
            for iy in 0..ny {
                for ix in 0..nx {
                    out.set(ix, iy, 0.5 * (prev.get(ix, iy) + prev.get(iy, ix)));
                }
            }
        }
        out
    }

    fn vjp(&self, _input: &Patch, grad_out: &Patch) -> Patch {
        // Each symmetrization is a self-adjoint linear map.
        self.forward(grad_out)
    }

    fn name(&self) -> &str {
        "symmetry"
    }
}

/// Cone (linear hat) density filter enforcing a minimum length scale.
///
/// `out_i = Σ_j k(|i−j|)·in_j / Σ_j k(|i−j|)` with `k(r) = max(0, 1 − r/R)`.
#[derive(Debug, Clone, Copy)]
pub struct ConeFilter {
    /// Filter radius in cells; the induced minimum feature size is ≈ 2R·dl.
    pub radius: f64,
}

impl ConeFilter {
    /// Creates a cone filter with radius `radius` cells.
    pub fn new(radius: f64) -> Self {
        assert!(radius >= 0.0, "filter radius must be non-negative");
        ConeFilter { radius }
    }

    fn kernel_extent(&self) -> isize {
        self.radius.ceil() as isize
    }

    fn weight(&self, dx: isize, dy: isize) -> f64 {
        if self.radius == 0.0 {
            return if dx == 0 && dy == 0 { 1.0 } else { 0.0 };
        }
        let r = ((dx * dx + dy * dy) as f64).sqrt();
        (1.0 - r / self.radius).max(0.0)
    }

    fn normalizers(&self, nx: usize, ny: usize) -> Vec<f64> {
        let e = self.kernel_extent();
        let mut norms = vec![0.0; nx * ny];
        for iy in 0..ny as isize {
            for ix in 0..nx as isize {
                let mut acc = 0.0;
                for dy in -e..=e {
                    for dx in -e..=e {
                        let (jx, jy) = (ix + dx, iy + dy);
                        if jx >= 0 && jx < nx as isize && jy >= 0 && jy < ny as isize {
                            acc += self.weight(dx, dy);
                        }
                    }
                }
                norms[(iy * nx as isize + ix) as usize] = acc;
            }
        }
        norms
    }
}

impl Reparam for ConeFilter {
    fn forward(&self, input: &Patch) -> Patch {
        let (nx, ny) = (input.nx(), input.ny());
        let e = self.kernel_extent();
        let norms = self.normalizers(nx, ny);
        let mut out = Patch::zeros(nx, ny);
        for iy in 0..ny as isize {
            for ix in 0..nx as isize {
                let mut acc = 0.0;
                for dy in -e..=e {
                    for dx in -e..=e {
                        let (jx, jy) = (ix + dx, iy + dy);
                        if jx >= 0 && jx < nx as isize && jy >= 0 && jy < ny as isize {
                            acc += self.weight(dx, dy) * input.get(jx as usize, jy as usize);
                        }
                    }
                }
                let k = (iy * nx as isize + ix) as usize;
                out.as_mut_slice()[k] = acc / norms[k];
            }
        }
        out
    }

    fn vjp(&self, input: &Patch, grad_out: &Patch) -> Patch {
        // Transpose: scatter grad_out_i/norm_i through the kernel.
        let (nx, ny) = (input.nx(), input.ny());
        let e = self.kernel_extent();
        let norms = self.normalizers(nx, ny);
        let mut grad_in = Patch::zeros(nx, ny);
        for iy in 0..ny as isize {
            for ix in 0..nx as isize {
                let k = (iy * nx as isize + ix) as usize;
                let g = grad_out.as_slice()[k] / norms[k];
                if g == 0.0 {
                    continue;
                }
                for dy in -e..=e {
                    for dx in -e..=e {
                        let (jx, jy) = (ix + dx, iy + dy);
                        if jx >= 0 && jx < nx as isize && jy >= 0 && jy < ny as isize {
                            let kj = (jy * nx as isize + jx) as usize;
                            grad_in.as_mut_slice()[kj] += g * self.weight(dx, dy);
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn name(&self) -> &str {
        "cone-filter"
    }
}

/// Smoothed Heaviside binarization (the standard tanh projection):
///
/// `ρ̄ = (tanh(βη) + tanh(β(ρ−η))) / (tanh(βη) + tanh(β(1−η)))`.
#[derive(Debug, Clone, Copy)]
pub struct TanhProjection {
    /// Projection sharpness; binarization strengthens as β → ∞.
    pub beta: f64,
    /// Threshold level, usually 0.5.
    pub eta: f64,
}

impl TanhProjection {
    /// Creates a projection with the given sharpness and a 0.5 threshold.
    pub fn new(beta: f64) -> Self {
        TanhProjection { beta, eta: 0.5 }
    }

    fn denom(&self) -> f64 {
        (self.beta * self.eta).tanh() + (self.beta * (1.0 - self.eta)).tanh()
    }
}

impl Reparam for TanhProjection {
    fn forward(&self, input: &Patch) -> Patch {
        let d = self.denom();
        let t0 = (self.beta * self.eta).tanh();
        Patch::from_vec(
            input.nx(),
            input.ny(),
            input
                .as_slice()
                .iter()
                .map(|r| (t0 + (self.beta * (r - self.eta)).tanh()) / d)
                .collect(),
        )
    }

    fn vjp(&self, input: &Patch, grad_out: &Patch) -> Patch {
        let d = self.denom();
        Patch::from_vec(
            input.nx(),
            input.ny(),
            input
                .as_slice()
                .iter()
                .zip(grad_out.as_slice())
                .map(|(r, g)| {
                    let t = (self.beta * (r - self.eta)).tanh();
                    g * self.beta * (1.0 - t * t) / d
                })
                .collect(),
        )
    }

    fn name(&self) -> &str {
        "tanh-projection"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_patch(nx: usize, ny: usize) -> Patch {
        Patch::from_vec(
            nx,
            ny,
            (0..nx * ny)
                .map(|k| ((k * 29 % 13) as f64) / 13.0)
                .collect(),
        )
    }

    fn check_vjp(stage: &dyn Reparam, input: &Patch, probes: &[usize]) {
        // Compare VJP against finite differences of a random-ish loss
        // L = Σ c_i out_i.
        let out = stage.forward(input);
        let coeffs: Vec<f64> = (0..out.len())
            .map(|k| ((k * 7 % 5) as f64 - 2.0) * 0.3)
            .collect();
        let grad_out = Patch::from_vec(out.nx(), out.ny(), coeffs.clone());
        let grad_in = stage.vjp(input, &grad_out);
        let loss = |p: &Patch| -> f64 {
            stage
                .forward(p)
                .as_slice()
                .iter()
                .zip(&coeffs)
                .map(|(o, c)| o * c)
                .sum()
        };
        let h = 1e-6;
        for &probe in probes {
            let mut pp = input.clone();
            pp.as_mut_slice()[probe] += h;
            let mut pm = input.clone();
            pm.as_mut_slice()[probe] -= h;
            let fd = (loss(&pp) - loss(&pm)) / (2.0 * h);
            let ad = grad_in.as_slice()[probe];
            assert!(
                (fd - ad).abs() < 1e-6 * (1.0 + fd.abs()),
                "{} probe {probe}: fd {fd} vs vjp {ad}",
                stage.name()
            );
        }
    }

    #[test]
    fn symmetry_makes_patterns_symmetric() {
        let p = ramp_patch(6, 4);
        let s = Symmetry::MirrorX.forward(&p);
        for iy in 0..4 {
            for ix in 0..6 {
                assert!((s.get(ix, iy) - s.get(5 - ix, iy)).abs() < 1e-15);
            }
        }
        // Idempotent.
        let s2 = Symmetry::MirrorX.forward(&s);
        assert_eq!(s, s2);
    }

    #[test]
    fn diagonal_symmetry() {
        let p = ramp_patch(5, 5);
        let s = Symmetry::Diagonal.forward(&p);
        for iy in 0..5 {
            for ix in 0..5 {
                assert!((s.get(ix, iy) - s.get(iy, ix)).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn cone_filter_preserves_constants() {
        let p = Patch::constant(8, 8, 0.7);
        let f = ConeFilter::new(2.0).forward(&p);
        for v in f.as_slice() {
            assert!((v - 0.7).abs() < 1e-12);
        }
    }

    #[test]
    fn cone_filter_smooths_impulse() {
        let mut p = Patch::zeros(9, 9);
        p.set(4, 4, 1.0);
        let f = ConeFilter::new(2.0).forward(&p);
        assert!(f.get(4, 4) < 1.0);
        assert!(f.get(5, 4) > 0.0);
        assert_eq!(f.get(8, 8), 0.0);
    }

    #[test]
    fn projection_saturates_with_beta() {
        let p = Patch::from_vec(3, 1, vec![0.2, 0.5, 0.8]);
        let soft = TanhProjection::new(1.0).forward(&p);
        let hard = TanhProjection::new(50.0).forward(&p);
        assert!(hard.get(0, 0) < soft.get(0, 0));
        assert!(hard.get(2, 0) > soft.get(2, 0));
        assert!(hard.get(0, 0) < 1e-6);
        assert!(hard.get(2, 0) > 1.0 - 1e-6);
        // Threshold point maps to ~0.5 for symmetric eta.
        assert!((hard.get(1, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn vjp_matches_finite_difference() {
        let p = ramp_patch(7, 5);
        check_vjp(&Symmetry::MirrorX, &p, &[0, 12, 30]);
        check_vjp(&Symmetry::MirrorY, &p, &[3, 17, 33]);
        check_vjp(&ConeFilter::new(1.5), &p, &[0, 18, 34]);
        check_vjp(&TanhProjection::new(4.0), &p, &[1, 20, 31]);
        let sq = ramp_patch(5, 5);
        check_vjp(&Symmetry::Diagonal, &sq, &[2, 11, 24]);
    }

    #[test]
    fn chain_backward_composes() {
        let chain = ReparamChain::new()
            .then(Symmetry::MirrorX)
            .then(ConeFilter::new(1.5))
            .then(TanhProjection::new(3.0));
        let theta = ramp_patch(6, 6);
        let inter = chain.forward_all(&theta);
        assert_eq!(inter.len(), 4);
        // FD check through the whole chain.
        let coeffs: Vec<f64> = (0..36).map(|k| ((k % 4) as f64 - 1.5) * 0.25).collect();
        let grad_final = Patch::from_vec(6, 6, coeffs.clone());
        let grad_theta = chain.backward(&inter, &grad_final);
        let loss = |p: &Patch| -> f64 {
            chain
                .forward(p)
                .as_slice()
                .iter()
                .zip(&coeffs)
                .map(|(o, c)| o * c)
                .sum()
        };
        let h = 1e-6;
        for probe in [0usize, 14, 35] {
            let mut pp = theta.clone();
            pp.as_mut_slice()[probe] += h;
            let mut pm = theta.clone();
            pm.as_mut_slice()[probe] -= h;
            let fd = (loss(&pp) - loss(&pm)) / (2.0 * h);
            let ad = grad_theta.as_slice()[probe];
            assert!(
                (fd - ad).abs() < 1e-6 * (1.0 + fd.abs()),
                "probe {probe}: {fd} vs {ad}"
            );
        }
    }
}
