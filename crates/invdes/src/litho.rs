//! Differentiable lithography and etch variation model.
//!
//! Follows the standard abstraction of GPU inverse-lithography models
//! (Yang & Ren, ISPD 2025, cited by the paper): the mask density forms an
//! *aerial image* through a Gaussian point-spread function whose width grows
//! with defocus, and a smooth sigmoid resist threshold develops the image.
//! Dose (threshold shift) and etch bias move the effective threshold.
//! Optimizing across process corners yields fabrication-robust designs.

use crate::patch::Patch;
use crate::reparam::Reparam;

/// A lithography/etch process corner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LithoCorner {
    /// Defocus in µm; widens the aerial-image PSF.
    pub defocus: f64,
    /// Relative dose error: positive over-exposes (features grow).
    pub dose: f64,
    /// Etch bias in µm: positive over-etches (features shrink).
    pub etch_bias: f64,
}

impl LithoCorner {
    /// The nominal process corner.
    pub fn nominal() -> Self {
        LithoCorner {
            defocus: 0.0,
            dose: 0.0,
            etch_bias: 0.0,
        }
    }

    /// An over-etch / over-dose corner.
    pub fn over(defocus: f64, dose: f64, etch_bias: f64) -> Self {
        LithoCorner {
            defocus,
            dose,
            etch_bias,
        }
    }

    /// Standard ±corner triple `(nominal, over, under)` with symmetric
    /// excursions.
    pub fn triple(defocus: f64, dose: f64, etch_bias: f64) -> [LithoCorner; 3] {
        [
            LithoCorner::nominal(),
            LithoCorner {
                defocus,
                dose,
                etch_bias,
            },
            LithoCorner {
                defocus,
                dose: -dose,
                etch_bias: -etch_bias,
            },
        ]
    }
}

/// Differentiable lithography model: Gaussian aerial image + sigmoid resist.
#[derive(Debug, Clone, Copy)]
pub struct LithoModel {
    /// Nominal PSF standard deviation in cells.
    pub sigma_cells: f64,
    /// Extra PSF widening per µm of defocus, in cells/µm.
    pub defocus_broadening: f64,
    /// Resist sigmoid steepness.
    pub steepness: f64,
    /// Nominal resist threshold.
    pub threshold: f64,
    /// Cell size in µm (converts etch bias to threshold shift).
    pub dl: f64,
    /// Process corner being simulated.
    pub corner: LithoCorner,
}

impl LithoModel {
    /// Creates a model with typical defaults for a `dl`-µm grid.
    pub fn new(dl: f64) -> Self {
        LithoModel {
            sigma_cells: 1.0,
            defocus_broadening: 10.0,
            steepness: 8.0,
            threshold: 0.5,
            dl,
            corner: LithoCorner::nominal(),
        }
    }

    /// Returns a copy at a different process corner.
    pub fn at_corner(mut self, corner: LithoCorner) -> Self {
        self.corner = corner;
        self
    }

    fn sigma(&self) -> f64 {
        self.sigma_cells + self.defocus_broadening * self.corner.defocus.abs()
    }

    /// Effective threshold after dose and etch-bias shifts. Over-dose grows
    /// features (lower threshold); over-etch shrinks them (higher).
    fn effective_threshold(&self) -> f64 {
        self.threshold - 0.5 * self.corner.dose + 0.5 * self.corner.etch_bias / self.dl.max(1e-9)
    }

    fn gaussian_kernel(&self) -> (Vec<f64>, isize) {
        let sigma = self.sigma();
        let e = (3.0 * sigma).ceil().max(1.0) as isize;
        let mut k = Vec::with_capacity((2 * e + 1) as usize);
        let mut sum = 0.0;
        for d in -e..=e {
            let v = (-(d * d) as f64 / (2.0 * sigma * sigma)).exp();
            k.push(v);
            sum += v;
        }
        for v in &mut k {
            *v /= sum;
        }
        (k, e)
    }

    /// Separable Gaussian blur (the aerial image).
    pub fn aerial_image(&self, mask: &Patch) -> Patch {
        let (kernel, e) = self.gaussian_kernel();
        let (nx, ny) = (mask.nx(), mask.ny());
        // Horizontal pass with edge clamping.
        let mut tmp = Patch::zeros(nx, ny);
        for iy in 0..ny {
            for ix in 0..nx as isize {
                let mut acc = 0.0;
                for (ki, d) in (-e..=e).enumerate() {
                    let jx = (ix + d).clamp(0, nx as isize - 1) as usize;
                    acc += kernel[ki] * mask.get(jx, iy);
                }
                tmp.set(ix as usize, iy, acc);
            }
        }
        let mut out = Patch::zeros(nx, ny);
        for iy in 0..ny as isize {
            for ix in 0..nx {
                let mut acc = 0.0;
                for (ki, d) in (-e..=e).enumerate() {
                    let jy = (iy + d).clamp(0, ny as isize - 1) as usize;
                    acc += kernel[ki] * tmp.get(ix, jy);
                }
                out.set(ix, iy as usize, acc);
            }
        }
        out
    }

    fn aerial_vjp(&self, grad_out: &Patch) -> Patch {
        // The clamped separable blur's transpose: scatter instead of gather.
        let (kernel, e) = self.gaussian_kernel();
        let (nx, ny) = (grad_out.nx(), grad_out.ny());
        let mut tmp = Patch::zeros(nx, ny);
        for iy in 0..ny as isize {
            for ix in 0..nx {
                let g = grad_out.get(ix, iy as usize);
                if g == 0.0 {
                    continue;
                }
                for (ki, d) in (-e..=e).enumerate() {
                    let jy = (iy + d).clamp(0, ny as isize - 1) as usize;
                    let cur = tmp.get(ix, jy);
                    tmp.set(ix, jy, cur + kernel[ki] * g);
                }
            }
        }
        let mut out = Patch::zeros(nx, ny);
        for iy in 0..ny {
            for ix in 0..nx as isize {
                let g = tmp.get(ix as usize, iy);
                if g == 0.0 {
                    continue;
                }
                for (ki, d) in (-e..=e).enumerate() {
                    let jx = (ix + d).clamp(0, nx as isize - 1) as usize;
                    let cur = out.get(jx, iy);
                    out.set(jx, iy, cur + kernel[ki] * g);
                }
            }
        }
        out
    }
}

impl Reparam for LithoModel {
    fn forward(&self, input: &Patch) -> Patch {
        let aerial = self.aerial_image(input);
        let thr = self.effective_threshold();
        let k = self.steepness;
        Patch::from_vec(
            input.nx(),
            input.ny(),
            aerial
                .as_slice()
                .iter()
                .map(|a| 1.0 / (1.0 + (-k * (a - thr)).exp()))
                .collect(),
        )
    }

    fn vjp(&self, input: &Patch, grad_out: &Patch) -> Patch {
        let aerial = self.aerial_image(input);
        let thr = self.effective_threshold();
        let k = self.steepness;
        let grad_aerial = Patch::from_vec(
            input.nx(),
            input.ny(),
            aerial
                .as_slice()
                .iter()
                .zip(grad_out.as_slice())
                .map(|(a, g)| {
                    let s = 1.0 / (1.0 + (-k * (a - thr)).exp());
                    g * k * s * (1.0 - s)
                })
                .collect(),
        );
        self.aerial_vjp(&grad_aerial)
    }

    fn name(&self) -> &str {
        "lithography"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkerboard(n: usize) -> Patch {
        Patch::from_vec(
            n,
            n,
            (0..n * n)
                .map(|k| {
                    if (k / n + k % n).is_multiple_of(2) {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn nominal_litho_preserves_large_features() {
        // A half-filled patch survives lithography roughly intact.
        let mut mask = Patch::zeros(16, 16);
        for iy in 0..16 {
            for ix in 0..8 {
                mask.set(ix, iy, 1.0);
            }
        }
        let printed = LithoModel::new(0.05).forward(&mask);
        assert!(printed.get(2, 8) > 0.9, "core of feature prints");
        assert!(printed.get(13, 8) < 0.1, "empty area stays empty");
    }

    #[test]
    fn fine_checkerboard_washes_out() {
        // Sub-resolution features blur to mid-gray before the resist,
        // so the printed pattern loses the checkerboard contrast.
        let mask = checkerboard(12);
        let printed = LithoModel::new(0.05).forward(&mask);
        let contrast = printed
            .as_slice()
            .iter()
            .map(|v| (v - 0.5).abs())
            .fold(0.0f64, f64::max);
        assert!(
            contrast < 0.45,
            "checkerboard should lose contrast: {contrast}"
        );
    }

    #[test]
    fn defocus_blurs_more() {
        let mut mask = Patch::zeros(16, 16);
        for iy in 6..10 {
            for ix in 6..10 {
                mask.set(ix, iy, 1.0);
            }
        }
        let nominal = LithoModel::new(0.05).aerial_image(&mask);
        let defocused = LithoModel::new(0.05)
            .at_corner(LithoCorner {
                defocus: 0.2,
                dose: 0.0,
                etch_bias: 0.0,
            })
            .aerial_image(&mask);
        // Defocus spreads energy outward: the peak drops.
        assert!(defocused.get(8, 8) < nominal.get(8, 8));
    }

    #[test]
    fn dose_grows_and_shrinks_features() {
        let mut mask = Patch::zeros(16, 16);
        for iy in 5..11 {
            for ix in 5..11 {
                mask.set(ix, iy, 1.0);
            }
        }
        let area = |p: &Patch| p.as_slice().iter().sum::<f64>();
        let over = LithoModel::new(0.05)
            .at_corner(LithoCorner {
                defocus: 0.0,
                dose: 0.3,
                etch_bias: 0.0,
            })
            .forward(&mask);
        let under = LithoModel::new(0.05)
            .at_corner(LithoCorner {
                defocus: 0.0,
                dose: -0.3,
                etch_bias: 0.0,
            })
            .forward(&mask);
        let nom = LithoModel::new(0.05).forward(&mask);
        assert!(area(&over) > area(&nom), "over-dose grows features");
        assert!(area(&under) < area(&nom), "under-dose shrinks features");
    }

    #[test]
    fn litho_vjp_matches_finite_difference() {
        let mask = Patch::from_vec(
            8,
            8,
            (0..64).map(|k| ((k * 23 % 17) as f64) / 17.0).collect(),
        );
        let model = LithoModel::new(0.05);
        let coeffs: Vec<f64> = (0..64).map(|k| ((k % 5) as f64 - 2.0) * 0.2).collect();
        let grad_out = Patch::from_vec(8, 8, coeffs.clone());
        let grad_in = model.vjp(&mask, &grad_out);
        let loss = |p: &Patch| -> f64 {
            model
                .forward(p)
                .as_slice()
                .iter()
                .zip(&coeffs)
                .map(|(o, c)| o * c)
                .sum()
        };
        let h = 1e-6;
        for probe in [0usize, 27, 63] {
            let mut pp = mask.clone();
            pp.as_mut_slice()[probe] += h;
            let mut pm = mask.clone();
            pm.as_mut_slice()[probe] -= h;
            let fd = (loss(&pp) - loss(&pm)) / (2.0 * h);
            let ad = grad_in.as_slice()[probe];
            assert!(
                (fd - ad).abs() < 1e-6 * (1.0 + fd.abs()),
                "probe {probe}: {fd} vs {ad}"
            );
        }
    }

    #[test]
    fn corner_triple_is_symmetric() {
        let [nom, over, under] = LithoCorner::triple(0.1, 0.2, 0.01);
        assert_eq!(nom, LithoCorner::nominal());
        assert_eq!(over.dose, -under.dose);
        assert_eq!(over.etch_bias, -under.etch_bias);
    }
}
