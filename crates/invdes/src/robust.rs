//! Variation-aware (robust) inverse design.
//!
//! Optimizes the *expected* figure of merit over a set of lithography/etch
//! process corners: each corner prints a different structure from the same
//! mask, is simulated separately, and contributes its chain-ruled gradient.
//! This is the paper's §III-C3 variation-aware loop.

use crate::gradient::GradientSolver;
use crate::litho::{LithoCorner, LithoModel};
use crate::optimizer::{InverseDesigner, IterationRecord, OptimConfig, OptimError, OptimResult};
use crate::patch::Patch;
use crate::problem::DesignProblem;
use crate::reparam::ReparamChain;

/// Robust optimization over process corners.
#[derive(Debug)]
pub struct RobustDesigner {
    base: InverseDesigner,
    litho_template: LithoModel,
    corners: Vec<LithoCorner>,
}

impl RobustDesigner {
    /// Creates a robust designer. `config.litho` is ignored — the corner
    /// models are built from `litho_template` at each of `corners`.
    pub fn new(config: OptimConfig, litho_template: LithoModel, corners: Vec<LithoCorner>) -> Self {
        assert!(!corners.is_empty(), "at least one corner required");
        RobustDesigner {
            base: InverseDesigner::new(OptimConfig {
                litho: None,
                ..config
            }),
            litho_template,
            corners,
        }
    }

    /// The corner list being optimized over.
    pub fn corners(&self) -> &[LithoCorner] {
        &self.corners
    }

    /// Evaluates the corner-averaged objective and θ-gradient at given raw
    /// variables, returning per-corner objectives too.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError`] if any corner's solve fails.
    #[allow(clippy::type_complexity)]
    pub fn evaluate(
        &self,
        problem: &DesignProblem,
        solver: &dyn GradientSolver,
        theta: &Patch,
        beta: f64,
    ) -> Result<(f64, Patch, Vec<f64>), OptimError> {
        let omega = problem.omega();
        let source = problem.source()?;
        let objective = problem.objective()?;
        let mut mean_grad = Patch::zeros(theta.nx(), theta.ny());
        let mut mean_obj = 0.0;
        let mut per_corner = Vec::with_capacity(self.corners.len());
        let weight = 1.0 / self.corners.len() as f64;
        for corner in &self.corners {
            let chain: ReparamChain = self
                .base
                .chain(beta)
                .then(self.litho_template.at_corner(*corner));
            let inter = chain.forward_all(theta);
            let density = inter.last().expect("chain output");
            let eps = problem.eps_for(density);
            let eval = solver.objective_and_gradient(&eps, &source, omega, &objective)?;
            let grad_patch = problem.gradient_to_patch(&eval.grad_eps);
            let grad_theta = chain.backward(&inter, &grad_patch);
            per_corner.push(eval.objective);
            mean_obj += weight * eval.objective;
            for (m, g) in mean_grad
                .as_mut_slice()
                .iter_mut()
                .zip(grad_theta.as_slice())
            {
                *m += weight * g;
            }
        }
        Ok((mean_obj, mean_grad, per_corner))
    }

    /// Runs the robust optimization loop (Adam ascent on the corner mean).
    ///
    /// # Errors
    ///
    /// Returns [`OptimError`] if any solve fails.
    pub fn run(
        &self,
        problem: &DesignProblem,
        solver: &dyn GradientSolver,
    ) -> Result<OptimResult, OptimError> {
        let cfg = self.base.config();
        let (nx, ny) = problem.design_size;
        let mut theta = cfg.init.build(nx, ny);
        // Flat Adam state.
        let mut m = vec![0.0; theta.len()];
        let mut v = vec![0.0; theta.len()];
        let mut beta = cfg.beta_start;
        let mut history = Vec::with_capacity(cfg.iterations);
        let mut last_density = theta.clone();
        for iteration in 0..cfg.iterations {
            let (obj, grad, _) = self.evaluate(problem, solver, &theta, beta)?;
            let nominal_chain = self
                .base
                .chain(beta)
                .then(self.litho_template.at_corner(LithoCorner::nominal()));
            last_density = nominal_chain.forward(&theta);
            history.push(IterationRecord {
                iteration,
                objective: obj,
                gray_level: last_density.gray_level(),
                beta,
                recovered: false,
            });
            let t = (iteration + 1) as i32;
            let bc1 = 1.0 - 0.9f64.powi(t);
            let bc2 = 1.0 - 0.999f64.powi(t);
            for (k, g) in grad.as_slice().iter().enumerate() {
                m[k] = 0.9 * m[k] + 0.1 * g;
                v[k] = 0.999 * v[k] + 0.001 * g * g;
                theta.as_mut_slice()[k] +=
                    cfg.learning_rate * (m[k] / bc1) / ((v[k] / bc2).sqrt() + 1e-8);
            }
            theta.clamp01();
            beta *= cfg.beta_growth;
        }
        // Final field at the nominal corner.
        let omega = problem.omega();
        let source = problem.source()?;
        let objective = problem.objective()?;
        let eps = problem.eps_for(&last_density);
        let eval = solver.objective_and_gradient(&eps, &source, omega, &objective)?;
        Ok(OptimResult {
            theta,
            density: last_density,
            history,
            final_field: eval.forward,
            recoveries: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::ExactAdjoint;
    use crate::init::InitStrategy;
    use maps_core::{Axis, Direction, Grid2d, Port, RealField2d};

    fn bridge_problem() -> DesignProblem {
        let grid = Grid2d::new(48, 36, 0.08);
        let yc = grid.height() / 2.0;
        let mut base = RealField2d::constant(grid, 2.07);
        maps_core::paint(
            &mut base,
            &maps_core::Shape::Rect(maps_core::Rect::new(0.0, yc - 0.24, 1.6, yc + 0.24)),
            12.11,
        );
        maps_core::paint(
            &mut base,
            &maps_core::Shape::Rect(maps_core::Rect::new(
                grid.width() - 1.6,
                yc - 0.24,
                grid.width(),
                yc + 0.24,
            )),
            12.11,
        );
        DesignProblem {
            base_eps: base,
            design_origin: (21, 13),
            design_size: (7, 10),
            eps_min: 2.07,
            eps_max: 12.11,
            wavelength: 1.55,
            input_port: Port::new((1.0, yc), 0.48, Axis::X, Direction::Positive),
            terms: vec![crate::problem::ObjectiveTerm {
                port: Port::new((grid.width() - 1.0, yc), 0.48, Axis::X, Direction::Positive),
                weight: 1.0,
            }],
            normalization: 1.0,
        }
    }

    #[test]
    fn corner_mean_and_per_corner_values() {
        let problem = bridge_problem();
        let exact = ExactAdjoint::default();
        let designer = RobustDesigner::new(
            OptimConfig {
                iterations: 1,
                init: InitStrategy::Uniform(0.6),
                ..OptimConfig::default()
            },
            LithoModel::new(problem.grid().dl),
            LithoCorner::triple(0.05, 0.2, 0.008).to_vec(),
        );
        let theta = InitStrategy::Uniform(0.6).build(7, 10);
        let (mean, grad, per_corner) = designer.evaluate(&problem, &exact, &theta, 2.0).unwrap();
        assert_eq!(per_corner.len(), 3);
        let expect: f64 = per_corner.iter().sum::<f64>() / 3.0;
        assert!((mean - expect).abs() < 1e-12);
        assert_eq!((grad.nx(), grad.ny()), (7, 10));
        assert!(grad.as_slice().iter().any(|g| *g != 0.0));
    }

    #[test]
    fn robust_run_improves_mean_objective() {
        let mut problem = bridge_problem();
        let exact = ExactAdjoint::default();
        problem.calibrate(exact.solver()).unwrap();
        let designer = RobustDesigner::new(
            OptimConfig {
                iterations: 8,
                learning_rate: 0.15,
                init: InitStrategy::Uniform(0.5),
                ..OptimConfig::default()
            },
            LithoModel::new(problem.grid().dl),
            LithoCorner::triple(0.03, 0.15, 0.005).to_vec(),
        );
        let result = designer.run(&problem, &exact).unwrap();
        let first = result.history.first().unwrap().objective;
        let best = result.best_objective().unwrap();
        assert!(
            best > first,
            "robust optimization should improve: {first} -> {best}"
        );
    }
}
