//! Minimum-feature-size measurement via morphological opening/closing.
//!
//! Used to verify that filtered-and-projected designs actually satisfy the
//! fabrication constraint the cone filter was supposed to enforce.

use crate::patch::Patch;

fn binarize(p: &Patch, threshold: f64) -> Vec<bool> {
    p.as_slice().iter().map(|v| *v >= threshold).collect()
}

fn erode(mask: &[bool], nx: usize, ny: usize, r: usize) -> Vec<bool> {
    let ri = r as isize;
    let mut out = vec![false; mask.len()];
    for iy in 0..ny as isize {
        for ix in 0..nx as isize {
            let mut all = true;
            'scan: for dy in -ri..=ri {
                for dx in -ri..=ri {
                    if dx * dx + dy * dy > ri * ri {
                        continue;
                    }
                    let (jx, jy) = (ix + dx, iy + dy);
                    // Outside the window counts as solid: patterns continue
                    // into the surrounding waveguides, so the window edge is
                    // not a real feature boundary.
                    if jx < 0 || jx >= nx as isize || jy < 0 || jy >= ny as isize {
                        continue;
                    }
                    if !mask[(jy * nx as isize + jx) as usize] {
                        all = false;
                        break 'scan;
                    }
                }
            }
            out[(iy * nx as isize + ix) as usize] = all;
        }
    }
    out
}

fn dilate(mask: &[bool], nx: usize, ny: usize, r: usize) -> Vec<bool> {
    let ri = r as isize;
    let mut out = vec![false; mask.len()];
    for iy in 0..ny as isize {
        for ix in 0..nx as isize {
            let mut any = false;
            'scan: for dy in -ri..=ri {
                for dx in -ri..=ri {
                    if dx * dx + dy * dy > ri * ri {
                        continue;
                    }
                    let (jx, jy) = (ix + dx, iy + dy);
                    if jx >= 0
                        && jx < nx as isize
                        && jy >= 0
                        && jy < ny as isize
                        && mask[(jy * nx as isize + jx) as usize]
                    {
                        any = true;
                        break 'scan;
                    }
                }
            }
            out[(iy * nx as isize + ix) as usize] = any;
        }
    }
    out
}

/// Fraction of solid pixels destroyed by a morphological opening with a
/// disk of radius `r` cells — high values mean features thinner than `2r`.
pub fn opening_loss(patch: &Patch, threshold: f64, r: usize) -> f64 {
    let (nx, ny) = (patch.nx(), patch.ny());
    let mask = binarize(patch, threshold);
    let solid = mask.iter().filter(|b| **b).count();
    if solid == 0 {
        return 0.0;
    }
    let opened = dilate(&erode(&mask, nx, ny, r), nx, ny, r);
    let lost = mask
        .iter()
        .zip(&opened)
        .filter(|(orig, open)| **orig && !**open)
        .count();
    lost as f64 / solid as f64
}

/// Estimates the minimum feature size (in cells) of the solid phase: the
/// largest opening diameter `2r` that erases less than `tolerance` of the
/// pattern. Returns 0 when even `r = 1` destroys it.
pub fn minimum_feature_size(patch: &Patch, threshold: f64, tolerance: f64) -> usize {
    let max_r = patch.nx().max(patch.ny()) / 2;
    let mut best = 0;
    for r in 1..=max_r {
        if opening_loss(patch, threshold, r) <= tolerance {
            best = 2 * r;
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip(nx: usize, ny: usize, width: usize) -> Patch {
        let mut p = Patch::zeros(nx, ny);
        let y0 = ny / 2 - width / 2;
        for iy in y0..y0 + width {
            for ix in 0..nx {
                p.set(ix, iy, 1.0);
            }
        }
        p
    }

    #[test]
    fn wide_strip_has_large_mfs() {
        let p = strip(20, 20, 8);
        let mfs = minimum_feature_size(&p, 0.5, 0.05);
        assert!(mfs >= 6, "8-wide strip should have MFS ≥ 6, got {mfs}");
    }

    #[test]
    fn thin_strip_has_small_mfs() {
        let p = strip(20, 20, 2);
        let mfs = minimum_feature_size(&p, 0.5, 0.05);
        assert!(mfs <= 2, "2-wide strip should have small MFS, got {mfs}");
    }

    #[test]
    fn empty_pattern_is_trivially_fine() {
        let p = Patch::zeros(10, 10);
        assert_eq!(opening_loss(&p, 0.5, 3), 0.0);
    }

    #[test]
    fn filtering_increases_mfs() {
        use crate::reparam::{ConeFilter, Reparam, TanhProjection};
        // A noisy pattern gains feature size after filter + projection.
        let mut noisy = Patch::zeros(24, 24);
        for k in 0..noisy.len() {
            noisy.as_mut_slice()[k] = if (k * 2654435761) % 97 < 48 { 1.0 } else { 0.0 };
        }
        let filtered = TanhProjection::new(8.0).forward(&ConeFilter::new(2.5).forward(&noisy));
        let mfs_before = minimum_feature_size(&noisy, 0.5, 0.05);
        let mfs_after = minimum_feature_size(&filtered, 0.5, 0.05);
        assert!(
            mfs_after >= mfs_before,
            "filtering should not shrink MFS: {mfs_before} -> {mfs_after}"
        );
    }
}
