//! Inverse-design problem definition.

use crate::patch::Patch;
use maps_core::{Axis, ComplexField2d, Direction, Grid2d, Port, RealField2d};
use maps_fdfd::{FdfdSolver, ModeError, ModeMonitor, ModeSource, PowerObjective};

/// One term of the design objective: reward (or penalize) modal power
/// leaving through a port.
#[derive(Debug, Clone, Copy)]
pub struct ObjectiveTerm {
    /// The monitored port (its `direction` defines "outgoing").
    pub port: Port,
    /// Weight: positive to maximize, negative to penalize.
    pub weight: f64,
}

/// A topology-optimization problem: a device template with a rectangular
/// design window, ports, and a power objective.
#[derive(Debug, Clone)]
pub struct DesignProblem {
    /// Background permittivity (waveguides painted, design window at
    /// cladding).
    pub base_eps: RealField2d,
    /// Cell coordinates of the design window's lower-left corner.
    pub design_origin: (usize, usize),
    /// Design window size in cells `(nx, ny)`.
    pub design_size: (usize, usize),
    /// Void permittivity (ρ̄ = 0).
    pub eps_min: f64,
    /// Solid permittivity (ρ̄ = 1).
    pub eps_max: f64,
    /// Vacuum wavelength (µm).
    pub wavelength: f64,
    /// The excited input port.
    pub input_port: Port,
    /// Objective terms.
    pub terms: Vec<ObjectiveTerm>,
    /// Injected-power normalization (1.0 until calibrated).
    pub normalization: f64,
}

impl DesignProblem {
    /// The simulation grid.
    pub fn grid(&self) -> Grid2d {
        self.base_eps.grid()
    }

    /// Angular frequency of the problem.
    pub fn omega(&self) -> f64 {
        maps_core::omega_for_wavelength(self.wavelength)
    }

    /// Paints a design density into the window, returning the full
    /// permittivity map: `ε = ε_min + (ε_max − ε_min)·ρ̄`.
    ///
    /// # Panics
    ///
    /// Panics if the patch size disagrees with the design window.
    pub fn eps_for(&self, rho_bar: &Patch) -> RealField2d {
        assert_eq!(
            (rho_bar.nx(), rho_bar.ny()),
            self.design_size,
            "patch does not match design window"
        );
        let mut eps = self.base_eps.clone();
        let (ox, oy) = self.design_origin;
        for py in 0..rho_bar.ny() {
            for px in 0..rho_bar.nx() {
                let v = self.eps_min + (self.eps_max - self.eps_min) * rho_bar.get(px, py);
                eps.set(ox + px, oy + py, v);
            }
        }
        eps
    }

    /// Restricts a full-grid `dF/dε` field to the design window and applies
    /// the chain rule through the permittivity interpolation
    /// (`dε/dρ̄ = ε_max − ε_min`).
    pub fn gradient_to_patch(&self, grad_eps: &RealField2d) -> Patch {
        let (ox, oy) = self.design_origin;
        let (nx, ny) = self.design_size;
        let scale = self.eps_max - self.eps_min;
        let mut patch = Patch::zeros(nx, ny);
        for py in 0..ny {
            for px in 0..nx {
                patch.set(px, py, grad_eps.get(ox + px, oy + py) * scale);
            }
        }
        patch
    }

    /// Accumulates `weight · dF/dρ̄` into an existing patch — the same
    /// restriction and chain rule as [`DesignProblem::gradient_to_patch`],
    /// but writing into a caller-provided accumulator so multi-excitation
    /// loops reuse one scratch patch instead of allocating per excitation.
    ///
    /// # Panics
    ///
    /// Panics if `acc` does not match the design window.
    pub fn accumulate_gradient_patch(&self, grad_eps: &RealField2d, weight: f64, acc: &mut Patch) {
        let (ox, oy) = self.design_origin;
        let (nx, ny) = self.design_size;
        assert_eq!(
            (acc.nx(), acc.ny()),
            (nx, ny),
            "accumulator does not match design window"
        );
        let scale = self.eps_max - self.eps_min;
        for py in 0..ny {
            for px in 0..nx {
                let g = grad_eps.get(ox + px, oy + py) * scale;
                acc.set(px, py, acc.get(px, py) + weight * g);
            }
        }
    }

    /// Builds the unidirectional eigenmode source for the input port
    /// (modes solved on the base permittivity — ports sit on static
    /// waveguides outside the design window).
    ///
    /// # Errors
    ///
    /// Returns [`ModeError`] if the input port guides no mode.
    pub fn source(&self) -> Result<ComplexField2d, ModeError> {
        let src = ModeSource::new(&self.base_eps, &self.input_port, self.omega())?;
        Ok(src.current_density(self.grid()))
    }

    /// Builds the power objective from the port monitors, folding in the
    /// calibration normalization so the FoM reads as a transmission
    /// fraction.
    ///
    /// # Errors
    ///
    /// Returns [`ModeError`] if any monitored port guides no mode.
    pub fn objective(&self) -> Result<PowerObjective, ModeError> {
        let omega = self.omega();
        let mut obj = PowerObjective::new();
        for term in &self.terms {
            let monitor = ModeMonitor::new(&self.base_eps, &term.port, omega)?;
            obj = obj.with_term(
                monitor.outgoing_functional(),
                term.weight / self.normalization,
            );
        }
        Ok(obj)
    }

    /// Calibrates the injected-power normalization by simulating a straight
    /// reference waveguide matched to the input port and measuring the
    /// transmitted modal power. After calibration, objective values read
    /// as fractions of the injected power.
    ///
    /// # Errors
    ///
    /// Returns a boxed error when the reference simulation fails.
    pub fn calibrate(&mut self, solver: &FdfdSolver) -> Result<f64, Box<dyn std::error::Error>> {
        use maps_core::FieldSolver;
        let grid = self.grid();
        let omega = self.omega();
        let port = self.input_port;
        // Straight waveguide along the port axis through the port centre.
        let mut eps = RealField2d::constant(grid, self.eps_min);
        let half = port.width / 2.0;
        match port.axis {
            Axis::X => {
                maps_core::paint(
                    &mut eps,
                    &maps_core::Shape::Rect(maps_core::Rect::new(
                        0.0,
                        port.center.1 - half,
                        grid.width(),
                        port.center.1 + half,
                    )),
                    self.eps_max,
                );
            }
            Axis::Y => {
                maps_core::paint(
                    &mut eps,
                    &maps_core::Shape::Rect(maps_core::Rect::new(
                        port.center.0 - half,
                        0.0,
                        port.center.0 + half,
                        grid.height(),
                    )),
                    self.eps_max,
                );
            }
        }
        let src = ModeSource::new(&eps, &port, omega)?;
        let j = src.current_density(grid);
        let ez = solver.solve_ez(&eps, &j, omega)?;
        // Downstream monitor at 3/4 of the domain along the launch
        // direction.
        let out_center = match (port.axis, port.direction) {
            (Axis::X, Direction::Positive) => (grid.width() * 0.75, port.center.1),
            (Axis::X, Direction::Negative) => (grid.width() * 0.25, port.center.1),
            (Axis::Y, Direction::Positive) => (port.center.0, grid.height() * 0.75),
            (Axis::Y, Direction::Negative) => (port.center.0, grid.height() * 0.25),
        };
        let out_port = Port::new(out_center, port.width, port.axis, port.direction);
        let monitor = ModeMonitor::new(&eps, &out_port, omega)?;
        let p = monitor.outgoing_power(&ez);
        assert!(p > 0.0, "calibration produced no transmitted power");
        self.normalization = p;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_problem() -> DesignProblem {
        let grid = Grid2d::new(60, 44, 0.08);
        let yc = grid.height() / 2.0;
        let mut base = RealField2d::constant(grid, 2.07);
        // Input and output stubs.
        maps_core::paint(
            &mut base,
            &maps_core::Shape::Rect(maps_core::Rect::new(0.0, yc - 0.24, 1.8, yc + 0.24)),
            12.11,
        );
        maps_core::paint(
            &mut base,
            &maps_core::Shape::Rect(maps_core::Rect::new(
                grid.width() - 1.8,
                yc - 0.24,
                grid.width(),
                yc + 0.24,
            )),
            12.11,
        );
        let out_port = Port::new((grid.width() - 1.0, yc), 0.48, Axis::X, Direction::Positive);
        DesignProblem {
            base_eps: base,
            design_origin: (24, 12),
            design_size: (14, 20),
            eps_min: 2.07,
            eps_max: 12.11,
            wavelength: 1.55,
            input_port: Port::new((1.0, yc), 0.48, Axis::X, Direction::Positive),
            terms: vec![ObjectiveTerm {
                port: out_port,
                weight: 1.0,
            }],
            normalization: 1.0,
        }
    }

    #[test]
    fn eps_painting_and_gradient_restriction_are_adjoint() {
        let p = toy_problem();
        let rho = Patch::constant(14, 20, 1.0);
        let eps = p.eps_for(&rho);
        // Inside the window: eps_max; outside unchanged.
        assert_eq!(eps.get(25, 13), 12.11);
        assert_eq!(eps.get(0, 0), 2.07);
        // gradient_to_patch picks the window and scales by (εmax − εmin).
        let mut g = RealField2d::zeros(p.grid());
        g.set(24, 12, 2.0);
        let gp = p.gradient_to_patch(&g);
        assert!((gp.get(0, 0) - 2.0 * (12.11 - 2.07)).abs() < 1e-12);
    }

    #[test]
    fn calibration_sets_normalization() {
        let mut p = toy_problem();
        let solver = FdfdSolver::new();
        let norm = p.calibrate(&solver).unwrap();
        assert!(norm > 0.0);
        assert_eq!(p.normalization, norm);
        // After calibration the straight-guide transmission is ~1 by
        // construction, so the normalization is consistent with itself.
        let obj = p.objective().unwrap();
        assert_eq!(obj.len(), 1);
    }

    #[test]
    #[should_panic(expected = "does not match design window")]
    fn wrong_patch_size_panics() {
        let p = toy_problem();
        p.eps_for(&Patch::zeros(3, 3));
    }
}
