//! Property-based tests of the reparametrization and variation layers.

use maps_invdes::{opening_loss, ConeFilter, LithoModel, Patch, Reparam, Symmetry, TanhProjection};
use proptest::prelude::*;

fn patch_strategy(max: usize) -> impl Strategy<Value = Patch> {
    (2..max, 2..max).prop_flat_map(|(nx, ny)| {
        prop::collection::vec(0.0..1.0f64, nx * ny)
            .prop_map(move |data| Patch::from_vec(nx, ny, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tanh projection maps [0,1] into [0,1] and preserves ordering.
    #[test]
    fn projection_range_and_monotonicity(p in patch_strategy(10), beta in 0.5..30.0f64) {
        let proj = TanhProjection::new(beta);
        let out = proj.forward(&p);
        for v in out.as_slice() {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(v), "out of range: {v}");
        }
        // Monotone: pointwise larger input → larger output.
        let bumped = Patch::from_vec(
            p.nx(),
            p.ny(),
            p.as_slice().iter().map(|v| (v + 0.05).min(1.0)).collect(),
        );
        let out_b = proj.forward(&bumped);
        for (a, b) in out.as_slice().iter().zip(out_b.as_slice()) {
            prop_assert!(b + 1e-12 >= *a);
        }
    }

    /// The cone filter preserves the mean of interior-constant patches and
    /// never exceeds the input range.
    #[test]
    fn filter_respects_range(p in patch_strategy(10), radius in 0.5..3.0f64) {
        let f = ConeFilter::new(radius).forward(&p);
        let (lo, hi) = p
            .as_slice()
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
                (lo.min(*v), hi.max(*v))
            });
        for v in f.as_slice() {
            prop_assert!(*v >= lo - 1e-9 && *v <= hi + 1e-9, "filter out of range");
        }
    }

    /// Symmetrization is idempotent and self-adjoint (as a VJP).
    #[test]
    fn symmetry_idempotent(p in patch_strategy(9)) {
        for sym in [Symmetry::MirrorX, Symmetry::MirrorY, Symmetry::Both] {
            let once = sym.forward(&p);
            let twice = sym.forward(&once);
            for (a, b) in once.as_slice().iter().zip(twice.as_slice()) {
                prop_assert!((a - b).abs() < 1e-12);
            }
        }
    }

    /// Lithography output is a valid density and the VJP has matching shape.
    #[test]
    fn litho_produces_valid_density(p in patch_strategy(9), defocus in 0.0..0.2f64) {
        let model = LithoModel::new(0.05).at_corner(maps_invdes::LithoCorner {
            defocus,
            dose: 0.0,
            etch_bias: 0.0,
        });
        let printed = model.forward(&p);
        for v in printed.as_slice() {
            prop_assert!((0.0..=1.0).contains(v));
        }
        let g = model.vjp(&p, &Patch::constant(p.nx(), p.ny(), 1.0));
        prop_assert_eq!((g.nx(), g.ny()), (p.nx(), p.ny()));
    }

    /// Opening loss is monotone in the radius.
    #[test]
    fn opening_loss_monotone(p in patch_strategy(12)) {
        let l1 = opening_loss(&p, 0.5, 1);
        let l2 = opening_loss(&p, 0.5, 2);
        let l3 = opening_loss(&p, 0.5, 3);
        prop_assert!(l1 <= l2 + 1e-12);
        prop_assert!(l2 <= l3 + 1e-12);
    }

    /// Gray level is zero exactly for binary patterns.
    #[test]
    fn gray_level_of_binarized(p in patch_strategy(8)) {
        let binary = Patch::from_vec(
            p.nx(),
            p.ny(),
            p.as_slice().iter().map(|v| if *v >= 0.5 { 1.0 } else { 0.0 }).collect(),
        );
        prop_assert_eq!(binary.gray_level(), 0.0);
        // Projection with huge β approaches binary — except at the exact
        // threshold η = 0.5, which is a fixed point; push values off it.
        let off_threshold = Patch::from_vec(
            p.nx(),
            p.ny(),
            p.as_slice()
                .iter()
                .map(|v| if (v - 0.5).abs() < 0.05 { 0.6 } else { *v })
                .collect(),
        );
        let hard = TanhProjection::new(500.0).forward(&off_threshold);
        prop_assert!(hard.gray_level() < 0.05);
    }
}
