//! Perf harness for the blocked multi-RHS kernels and the wideband
//! spectrum-sweep workload (PR 8).
//!
//! Not a criterion bench: emits machine-readable `BENCH_pr8.json` so CI
//! can diff runs (and `scripts/bench.sh --compare` can diff the shared
//! K ∈ {2, 4, 8} points against the committed PR 4 baseline, where the
//! batch plane saved only per-call overhead).
//!
//! ```text
//! cargo bench --bench spectrum_sweep -- [--smoke] [--out PATH]
//! ```
//!
//! Three sections:
//!
//! - `multi_rhs` — K same-ω excitations through `solve_ez_batch` against K
//!   sequential `solve_ez` calls, warm cache, K ∈ {2, 4, 8, 32, 128}.
//!   With the factorization shared by both sides, the delta is the blocked
//!   substitution kernel: one pass over the band factors feeds a block of
//!   RHS columns instead of one. Measurements are interleaved pairs and
//!   the regression gate runs on the median paired difference, which
//!   cancels common-mode container noise.
//! - `substitution_kernel` — the banded-LU kernel alone (factorization out
//!   of the loop, dense adjoint-style right-hand sides), blocked vs scalar
//!   through the public `BandedLu` batch API. Dense RHS disables the scalar
//!   path's zero-skip shortcut, so this isolates the pure one-pass-per-block
//!   win the tentpole kernel provides.
//! - `spectrum` — one source swept across K distinct frequencies through
//!   `solve_ez_spectrum` (K = 32, 128). Distinct ω means distinct
//!   factorizations, so the win is amortization: a cold sweep pays K
//!   factorizations, a warm repeat sweep (cache capacity raised to K)
//!   pays only the substitutions. `warm_sequential_ns` pins the batched
//!   warm sweep to per-ω solves for parity.

use maps_core::SolveRequest;
use maps_core::{omega_for_wavelength, ComplexField2d, FieldSolver, Grid2d, RealField2d};
use maps_fdfd::{factor_cache, linspace_wavelengths, FdfdSolver, PmlConfig};
use maps_linalg::Complex64;
use std::time::Instant;

struct Mode {
    smoke: bool,
    out: String,
}

fn parse_args() -> Mode {
    let mut mode = Mode {
        smoke: false,
        out: "BENCH_pr8.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => mode.smoke = true,
            "--out" => {
                mode.out = args.next().expect("--out needs a path");
            }
            // cargo bench passes `--bench`; ignore it and anything unknown.
            _ => {}
        }
    }
    mode
}

fn median_ns(mut samples: Vec<u128>) -> u128 {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Distinct point sources with distinct phases, clear of the PML.
/// One point excitation per RHS, laid out along a port face: adjacent
/// injection sites on a fixed-`iy` line (wrapping to the next line once the
/// face is full), the way a bank of single-mode feeds enters a device. The
/// flattened unknown index is `iy·nx + ix`, so neighboring right-hand sides
/// activate neighboring rows and the blocked sweep runs with all lanes live
/// almost immediately — matching how batched port excitations behave in the
/// solver, instead of the worst case of sources scattered across the grid.
fn point_sources(grid: Grid2d, count: usize) -> Vec<ComplexField2d> {
    let span = grid.nx - 28;
    (0..count)
        .map(|k| {
            let mut s = ComplexField2d::zeros(grid);
            s.set(
                14 + k % span,
                14 + 3 * (k / span),
                Complex64::new(1.0, 0.17 * k as f64),
            );
            s
        })
        .collect()
}

fn main() {
    let mode = parse_args();
    let smoke = mode.smoke;

    // ---- Section 1: same-ω multi-RHS, batched vs sequential ----------
    let grid = if smoke {
        Grid2d::new(40, 40, 0.05)
    } else {
        Grid2d::new(80, 80, 0.05)
    };
    let solver = FdfdSolver::with_pml(PmlConfig::auto(grid.dl));
    let omega = omega_for_wavelength(1.55);
    let eps = RealField2d::constant(grid, 4.0);
    let ks: &[usize] = if smoke { &[2, 8] } else { &[2, 4, 8, 32, 128] };
    let sources = point_sources(grid, *ks.iter().max().unwrap());

    eprintln!(
        "spectrum_sweep: multi_rhs on {}x{} grid (dl={}), mode={}",
        grid.nx,
        grid.ny,
        grid.dl,
        if smoke { "smoke" } else { "full" }
    );

    solver
        .solve_ez(&eps, &sources[0], omega)
        .expect("prime cache");
    let mut multi_rhs = Vec::new();
    for &k in ks {
        // Larger K means longer (and therefore steadier) reps; spend the
        // budget where a single rep is noisy.
        let reps = if smoke {
            7
        } else if k <= 8 {
            25
        } else if k <= 32 {
            11
        } else {
            7
        };
        let requests: Vec<SolveRequest<'_>> = sources[..k]
            .iter()
            .map(|s| SolveRequest::forward(s, omega))
            .collect();
        let mut seq_samples = Vec::with_capacity(reps);
        let mut bat_samples = Vec::with_capacity(reps);
        let mut diffs: Vec<i128> = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t = Instant::now();
            for s in &sources[..k] {
                let ez = solver.solve_ez(&eps, s, omega).expect("sequential solve");
                std::hint::black_box(&ez);
            }
            let seq = t.elapsed().as_nanos();

            let t = Instant::now();
            let out = solver.solve_ez_batch(&eps, &requests);
            let bat = t.elapsed().as_nanos();
            assert!(out.iter().all(Result::is_ok), "batched solve");
            std::hint::black_box(&out);

            seq_samples.push(seq);
            bat_samples.push(bat);
            diffs.push(seq as i128 - bat as i128);
        }
        diffs.sort_unstable();
        let median_diff = diffs[diffs.len() / 2];
        let seq = median_ns(seq_samples);
        let bat = median_ns(bat_samples);
        eprintln!(
            "  k={k:3}: sequential {seq} ns, batched {bat} ns ({:.2}x)",
            seq as f64 / bat.max(1) as f64
        );
        multi_rhs.push((k, seq, bat, median_diff));
    }

    // ---- Section 1b: substitution kernel (adjoint workload) ----------
    // The blocked banded-LU kernel itself, factorization taken out of the
    // loop on both sides and dense right-hand sides: the adjoint half of
    // every gradient feeds full dL/dE fields through `solve_transposed`,
    // so no zero-skip shortcuts apply and the measurement isolates the
    // one-pass-per-block band traversal against one pass per RHS.
    let lu = solver
        .operator(&eps, omega)
        .to_banded()
        .factorize()
        .expect("factorize for kernel section");
    let dense: Vec<Vec<Complex64>> = sources
        .iter()
        .map(|s| {
            solver
                .solve_ez(&eps, s, omega)
                .expect("dense RHS forward solve")
                .into_vec()
        })
        .collect();
    let mut kernel = Vec::new();
    for &k in ks {
        let reps = if smoke {
            7
        } else if k <= 8 {
            25
        } else if k <= 32 {
            11
        } else {
            7
        };
        let mut seq_samples = Vec::with_capacity(reps);
        let mut bat_samples = Vec::with_capacity(reps);
        let mut diffs: Vec<i128> = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t = Instant::now();
            for b in &dense[..k] {
                std::hint::black_box(lu.solve_transposed(b));
            }
            let seq = t.elapsed().as_nanos();

            let t = Instant::now();
            let out = lu.solve_transposed_many_blocked(&dense[..k], solver.effective_rhs_block());
            let bat = t.elapsed().as_nanos();
            std::hint::black_box(&out);

            seq_samples.push(seq);
            bat_samples.push(bat);
            diffs.push(seq as i128 - bat as i128);
        }
        diffs.sort_unstable();
        let median_diff = diffs[diffs.len() / 2];
        let seq = median_ns(seq_samples);
        let bat = median_ns(bat_samples);
        eprintln!(
            "  kernel k={k:3}: sequential {seq} ns, blocked {bat} ns ({:.2}x)",
            seq as f64 / bat.max(1) as f64
        );
        kernel.push((k, seq, bat, median_diff));
    }

    // ---- Section 2: wideband spectrum sweep (distinct ω) -------------
    // Small enough that K=128 cached factorizations fit comfortably in
    // memory; the multi-RHS section above carries the big-grid numbers.
    let sgrid = Grid2d::new(32, 32, 0.05);
    // The auto PML (16 cells at this dl) would swallow a 32-cell grid;
    // a thin 8-cell absorber is enough for a point-source timing sweep.
    let ssolver = FdfdSolver::with_pml(PmlConfig {
        thickness: 8,
        ..PmlConfig::default()
    });
    let seps = RealField2d::constant(sgrid, 4.0);
    let ssource = point_sources(sgrid, 1).pop().unwrap();
    let sks: &[usize] = if smoke { &[8] } else { &[32, 128] };
    let cache = factor_cache::global();

    eprintln!(
        "spectrum_sweep: spectrum on {}x{} grid (dl={})",
        sgrid.nx, sgrid.ny, sgrid.dl
    );

    let mut spectrum = Vec::new();
    for &k in sks {
        let omegas: Vec<f64> = linspace_wavelengths(1.45, 1.65, k)
            .iter()
            .map(|&l| omega_for_wavelength(l))
            .collect();
        // A wideband sweep only amortizes across repeats when the cache
        // can hold the whole spectrum (MAPS_FACTOR_CACHE in production).
        // The guard confines the raise to this iteration — the process-wide
        // capacity snaps back when it drops, so nothing that runs after the
        // sweep inherits a K-factor memory footprint.
        let _capacity = cache.scoped_capacity(k);
        cache.clear();

        let cold_reps = if smoke { 1 } else { 3 };
        let cold_ns = median_ns(
            (0..cold_reps)
                .map(|_| {
                    cache.clear();
                    let t = Instant::now();
                    let out = ssolver.solve_ez_spectrum(&seps, &ssource, &omegas);
                    let ns = t.elapsed().as_nanos();
                    assert!(out.iter().all(Result::is_ok), "cold sweep");
                    std::hint::black_box(&out);
                    ns
                })
                .collect(),
        );
        let warm_reps = if smoke { 3 } else { 7 };
        let warm_ns = median_ns(
            (0..warm_reps)
                .map(|_| {
                    let t = Instant::now();
                    let out = ssolver.solve_ez_spectrum(&seps, &ssource, &omegas);
                    let ns = t.elapsed().as_nanos();
                    assert!(out.iter().all(Result::is_ok), "warm sweep");
                    std::hint::black_box(&out);
                    ns
                })
                .collect(),
        );
        let warm_sequential_ns = median_ns(
            (0..warm_reps)
                .map(|_| {
                    let t = Instant::now();
                    for &w in &omegas {
                        let ez = ssolver.solve_ez(&seps, &ssource, w).expect("warm seq");
                        std::hint::black_box(&ez);
                    }
                    t.elapsed().as_nanos()
                })
                .collect(),
        );
        eprintln!(
            "  k={k:3}: cold {cold_ns} ns, warm {warm_ns} ns ({:.1}x amortized), warm sequential {warm_sequential_ns} ns",
            cold_ns as f64 / warm_ns.max(1) as f64
        );
        spectrum.push((k, cold_ns, warm_ns, warm_sequential_ns));
    }
    cache.clear();

    // ---- Emit -------------------------------------------------------
    let entries = multi_rhs
        .iter()
        .map(|(k, seq, bat, diff)| {
            let ratio = *seq as f64 / (*bat).max(1) as f64;
            format!(
                "    {{ \"k\": {k}, \"sequential_ns\": {seq}, \"batched_ns\": {bat}, \"paired_diff_ns\": {diff}, \"speedup\": {ratio:.3} }}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let kernel_entries = kernel
        .iter()
        .map(|(k, seq, bat, diff)| {
            let ratio = *seq as f64 / (*bat).max(1) as f64;
            format!(
                "    {{ \"k\": {k}, \"sequential_ns\": {seq}, \"batched_ns\": {bat}, \"paired_diff_ns\": {diff}, \"speedup\": {ratio:.3} }}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let spectrum_entries = spectrum
        .iter()
        .map(|(k, cold, warm, warm_seq)| {
            let amortization = *cold as f64 / (*warm).max(1) as f64;
            format!(
                "      {{ \"k\": {k}, \"cold_ns\": {cold}, \"warm_ns\": {warm}, \"warm_sequential_ns\": {warm_seq}, \"amortization\": {amortization:.2} }}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"spectrum_sweep\",\n  \"mode\": \"{mode_s}\",\n  \"grid\": {{ \"nx\": {nx}, \"ny\": {ny}, \"dl\": {dl} }},\n  \"rhs_block\": {block},\n  \"multi_rhs\": [\n{entries}\n  ],\n  \"substitution_kernel\": [\n{kernel_entries}\n  ],\n  \"spectrum\": {{\n    \"grid\": {{ \"nx\": {snx}, \"ny\": {sny}, \"dl\": {sdl} }},\n    \"points\": [\n{spectrum_entries}\n    ]\n  }}\n}}\n",
        mode_s = if smoke { "smoke" } else { "full" },
        nx = grid.nx,
        ny = grid.ny,
        dl = grid.dl,
        block = solver.effective_rhs_block(),
        snx = sgrid.nx,
        sny = sgrid.ny,
        sdl = sgrid.dl,
    );
    std::fs::write(&mode.out, &json).expect("write bench json");
    eprintln!("{json}");
    eprintln!("wrote {}", mode.out);

    // ---- Regression gates -------------------------------------------
    for (k, sequential_ns, batched_ns, median_diff) in &multi_rhs {
        if *k <= 2 {
            // Nearly identical work at K=2: demand parity within noise
            // (5% of the sequential median), not a strict win.
            let slack = (*sequential_ns as i128) / 20;
            assert!(
                *median_diff >= -slack,
                "batched {k}-RHS solve must be no slower than sequential (within noise): \
                 paired median diff {median_diff} ns ({batched_ns} vs {sequential_ns} ns)"
            );
        } else if smoke {
            // The smoke gate (scripts/check.sh) runs on a small grid where
            // a rep is tens of microseconds: require parity-or-better.
            let slack = (*sequential_ns as i128) / 20;
            assert!(
                *median_diff >= -slack,
                "smoke: batched {k}-RHS solve fell behind sequential: \
                 paired median diff {median_diff} ns ({batched_ns} vs {sequential_ns} ns)"
            );
        } else {
            assert!(
                *median_diff > 0,
                "batched {k}-RHS solve must beat sequential: \
                 paired median diff {median_diff} ns ({batched_ns} vs {sequential_ns} ns)"
            );
            let speedup = *sequential_ns as f64 / (*batched_ns).max(1) as f64;
            if *k >= 8 {
                assert!(
                    speedup >= 3.0,
                    "blocked substitution must hold >= 3x at K={k}, got {speedup:.2}x"
                );
            }
        }
    }
    for (k, sequential_ns, batched_ns, median_diff) in &kernel {
        if smoke || *k <= 2 {
            let slack = (*sequential_ns as i128) / 20;
            assert!(
                *median_diff >= -slack,
                "blocked kernel at K={k} fell behind the scalar sweep: \
                 paired median diff {median_diff} ns ({batched_ns} vs {sequential_ns} ns)"
            );
        } else if *k >= 8 {
            // Dense-RHS adjoint sweeps are where the blocked kernel earns
            // its keep; 3.5x is the hard floor (typical runs land >= 4x,
            // container timing noise on this band profile is ~10%).
            let speedup = *sequential_ns as f64 / (*batched_ns).max(1) as f64;
            assert!(
                speedup >= 3.5,
                "blocked kernel must hold >= 3.5x at K={k} on dense RHS, got {speedup:.2}x"
            );
        }
    }
    for (k, cold_ns, warm_ns, _) in &spectrum {
        let amortization = *cold_ns as f64 / (*warm_ns).max(1) as f64;
        let floor = if smoke { 2.0 } else { 3.0 };
        assert!(
            amortization >= floor,
            "warm spectrum sweep at K={k} must amortize factorization >= {floor}x, got {amortization:.2}x"
        );
    }
}
