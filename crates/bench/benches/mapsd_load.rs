//! Load/robustness harness for the `mapsd` daemon (PR 7).
//!
//! Not a criterion bench: emits machine-readable JSON (`BENCH_pr7.json`
//! by default) so CI can diff runs.
//!
//! Usage (via `scripts/bench.sh` or directly):
//!
//! ```text
//! cargo bench --bench mapsd_load -- [--smoke] [--out-pr7 PATH]
//! ```
//!
//! Two experiments against an in-process daemon on an ephemeral port:
//!
//! - **Load**: request latency (p50/p99) and throughput at 1, 4, and 16
//!   concurrent clients, separately for a **cold** cache (every request a
//!   distinct (ε, ω) fingerprint — each pays a factorization) and a
//!   **warm** cache (all requests share one fingerprint — the single-
//!   flight gate and LRU collapse the work). The headline invariant:
//!   warm p50 must beat cold p50 at every concurrency level.
//! - **Chaos**: a fault-injected direct rung, an oversubscribed queue,
//!   and a mix of tight and generous deadlines. The invariants: the
//!   daemon never panics (clean stop), the queue depth never exceeds its
//!   bound, and *every* request is answered — result, degraded result,
//!   shed, or deadline rejection.

use maps_core::fault::{FaultInjectingSolver, FaultPlan, InjectedFault};
use maps_core::{RetryPolicy, RobustSolver};
use maps_fdfd::{Backend, FdfdSolver};
use maps_linalg::IterativeOptions;
use maps_mapsd::{
    http_post, serve, serve_with, Breaker, DaemonConfig, QueueConfig, ServiceFactory, SolveService,
};
use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct Mode {
    smoke: bool,
    out: String,
}

fn parse_args() -> Mode {
    let mut mode = Mode {
        smoke: false,
        out: "BENCH_pr7.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => mode.smoke = true,
            "--out-pr7" | "--out" => {
                mode.out = args.next().expect("--out-pr7 needs a path");
            }
            // cargo bench passes `--bench`; ignore it and anything unknown.
            _ => {}
        }
    }
    mode
}

fn percentile_ms(samples: &mut [f64], p: f64) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let idx = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[idx]
}

struct LoadCell {
    clients: usize,
    p50_ms: f64,
    p99_ms: f64,
    throughput_rps: f64,
}

/// Drives `clients` threads, each posting `per_client` solves; `warm`
/// shares one (ε, ω) fingerprint across all requests, cold gives every
/// request its own.
fn run_load(
    addr: &str,
    grid: (usize, usize),
    clients: usize,
    per_client: usize,
    warm: bool,
) -> LoadCell {
    let (nx, ny) = grid;
    let wall = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    // Distinct permittivity per request on the cold path
                    // → distinct factorization fingerprint.
                    let eps = if warm {
                        2.25
                    } else {
                        2.25 + 0.001 * (c * per_client + i + 1) as f64
                    };
                    let body = format!(
                        r#"{{"nx":{nx},"ny":{ny},"dx":0.05,"eps":{eps},"omega":4.05,"deadline_ms":60000}}"#
                    );
                    let started = Instant::now();
                    let (status, resp) =
                        http_post(&addr, "/solve", &body).expect("daemon reachable");
                    assert_eq!(status, 200, "load request failed: {resp}");
                    latencies.push(started.elapsed().as_secs_f64() * 1e3);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let elapsed = wall.elapsed().as_secs_f64();
    let total = (clients * per_client) as f64;
    LoadCell {
        clients,
        p50_ms: percentile_ms(&mut latencies, 0.50),
        p99_ms: percentile_ms(&mut latencies, 0.99),
        throughput_rps: total / elapsed,
    }
}

struct ChaosOutcome {
    requests: usize,
    ok_direct: usize,
    ok_degraded: usize,
    shed: usize,
    deadline_rejected: usize,
    max_depth_seen: usize,
    queue_bound: usize,
}

/// Fault-injected solver + tiny queue + mixed deadlines. Every request
/// must be answered with a classifiable status; the queue must stay
/// within its bound; the daemon must stop cleanly.
fn run_chaos(grid: (usize, usize), clients: usize, per_client: usize) -> ChaosOutcome {
    let (nx, ny) = grid;
    let queue_bound = 4;
    let factory: ServiceFactory = Arc::new(|| {
        // Every third direct solve faults; the ladder's primary is starved
        // (one BiCGSTAB iteration at an unreachable tolerance) so rescues
        // visibly run the relax→fallback path instead of being a silent
        // second full-fidelity solve.
        let direct = FaultInjectingSolver::new(
            FdfdSolver::new(),
            FaultPlan::new().fail_every(3, InjectedFault::Error),
        )
        .with_name("chaos-direct");
        let ladder = RobustSolver::new(
            FdfdSolver::new().backend(Backend::Iterative(IterativeOptions {
                tolerance: 1e-30,
                max_iterations: 1,
            })),
            RetryPolicy::default(),
        )
        .with_fallback(Box::new(FdfdSolver::new()));
        SolveService::with_parts(Box::new(direct), ladder, Breaker::new(3), true)
    });
    let daemon = serve_with(
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_body: 4 << 20,
            queue: QueueConfig {
                depth: queue_bound,
                client_quota: 64,
            },
            tail: maps_mapsd::TailConfig::default(),
        },
        factory,
    )
    .expect("chaos daemon");
    let addr = daemon.local_addr().to_string();

    let max_depth = Arc::new(AtomicUsize::new(0));
    let sampler_stop = Arc::new(AtomicUsize::new(0));
    let sampler = {
        let queue = Arc::clone(daemon.queue());
        let max_depth = Arc::clone(&max_depth);
        let stop = Arc::clone(&sampler_stop);
        std::thread::spawn(move || {
            while stop.load(Ordering::Relaxed) == 0 {
                max_depth.fetch_max(queue.depth(), Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        })
    };

    let counters = [
        Arc::new(AtomicUsize::new(0)), // ok_direct
        Arc::new(AtomicUsize::new(0)), // ok_degraded
        Arc::new(AtomicUsize::new(0)), // shed
        Arc::new(AtomicUsize::new(0)), // deadline_rejected
    ];
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let counters: Vec<_> = counters.iter().map(Arc::clone).collect();
            std::thread::spawn(move || {
                for i in 0..per_client {
                    // Every fourth request carries an unmeetable deadline.
                    let deadline_ms = if i % 4 == 3 { 1 } else { 60000 };
                    let eps = 2.25 + 0.01 * (c + 1) as f64;
                    let body = format!(
                        r#"{{"nx":{nx},"ny":{ny},"dx":0.05,"eps":{eps},"omega":4.05,"deadline_ms":{deadline_ms}}}"#
                    );
                    let (status, resp) =
                        http_post(&addr, "/solve", &body).expect("daemon reachable");
                    match status {
                        200 => {
                            if resp.contains("\"fidelity\":\"direct\"") {
                                counters[0].fetch_add(1, Ordering::Relaxed);
                            } else {
                                counters[1].fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        429 | 503 => {
                            counters[2].fetch_add(1, Ordering::Relaxed);
                        }
                        408 => {
                            counters[3].fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("unclassified chaos response {other}: {resp}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("chaos client never panics");
    }
    sampler_stop.store(1, Ordering::Relaxed);
    sampler.join().expect("sampler");
    // Clean stop with zero panics is itself an assertion: a worker that
    // panicked would leave stop() joining a poisoned thread.
    daemon.stop();

    let outcome = ChaosOutcome {
        requests: clients * per_client,
        ok_direct: counters[0].load(Ordering::Relaxed),
        ok_degraded: counters[1].load(Ordering::Relaxed),
        shed: counters[2].load(Ordering::Relaxed),
        deadline_rejected: counters[3].load(Ordering::Relaxed),
        max_depth_seen: max_depth.load(Ordering::Relaxed),
        queue_bound,
    };
    assert_eq!(
        outcome.ok_direct + outcome.ok_degraded + outcome.shed + outcome.deadline_rejected,
        outcome.requests,
        "every chaos request is answered and classified"
    );
    assert!(
        outcome.max_depth_seen <= outcome.queue_bound,
        "queue depth {} exceeded its bound {}",
        outcome.max_depth_seen,
        outcome.queue_bound
    );
    outcome
}

fn main() {
    let mode = parse_args();
    let (grid, per_client, chaos_per_client) = if mode.smoke {
        ((30, 26), 4, 4)
    } else {
        ((80, 80), 12, 8)
    };

    // One daemon serves both cache regimes; the cold pass runs first so
    // the warm pass cannot pre-seed it.
    let daemon = serve(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        max_body: 4 << 20,
        queue: QueueConfig {
            depth: 256,
            client_quota: 64,
        },
        tail: maps_mapsd::TailConfig::default(),
    })
    .expect("load daemon");
    let addr = daemon.local_addr().to_string();

    let concurrencies = [1usize, 4, 16];
    let mut cold = Vec::new();
    let mut warm = Vec::new();
    for &c in &concurrencies {
        cold.push(run_load(&addr, grid, c, per_client, false));
    }
    // Seed the warm fingerprint once, then measure.
    let _ = run_load(&addr, grid, 1, 1, true);
    for &c in &concurrencies {
        warm.push(run_load(&addr, grid, c, per_client, true));
    }
    daemon.stop();

    for (c, w) in cold.iter().zip(&warm) {
        println!(
            "mapsd load: {:>2} clients  cold p50 {:>8.2} ms p99 {:>8.2} ms {:>7.1} rps   warm p50 {:>7.2} ms p99 {:>7.2} ms {:>7.1} rps",
            c.clients, c.p50_ms, c.p99_ms, c.throughput_rps, w.p50_ms, w.p99_ms, w.throughput_rps
        );
        assert!(
            w.p50_ms < c.p50_ms,
            "warm cache must beat cold at {} clients ({:.2} vs {:.2} ms)",
            c.clients,
            w.p50_ms,
            c.p50_ms
        );
    }

    let chaos = run_chaos(grid, 8, chaos_per_client);
    println!(
        "mapsd chaos: {} requests → {} direct, {} degraded, {} shed, {} deadline-rejected; max queue depth {}/{}",
        chaos.requests,
        chaos.ok_direct,
        chaos.ok_degraded,
        chaos.shed,
        chaos.deadline_rejected,
        chaos.max_depth_seen,
        chaos.queue_bound
    );

    let render_cells = |cells: &[LoadCell]| {
        cells
            .iter()
            .map(|c| {
                format!(
                    "    {{ \"clients\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"throughput_rps\": {:.2} }}",
                    c.clients, c.p50_ms, c.p99_ms, c.throughput_rps
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let json = format!(
        "{{\n  \"bench\": \"mapsd_load\",\n  \"mode\": \"{}\",\n  \"grid\": {{ \"nx\": {}, \"ny\": {} }},\n  \"per_client\": {},\n  \"cold\": [\n{}\n  ],\n  \"warm\": [\n{}\n  ],\n  \"chaos\": {{\n    \"requests\": {},\n    \"ok_direct\": {},\n    \"ok_degraded\": {},\n    \"shed\": {},\n    \"deadline_rejected\": {},\n    \"max_depth_seen\": {},\n    \"queue_bound\": {},\n    \"panics\": 0\n  }}\n}}\n",
        if mode.smoke { "smoke" } else { "full" },
        grid.0,
        grid.1,
        per_client,
        render_cells(&cold),
        render_cells(&warm),
        chaos.requests,
        chaos.ok_direct,
        chaos.ok_degraded,
        chaos.shed,
        chaos.deadline_rejected,
        chaos.max_depth_seen,
        chaos.queue_bound,
    );
    let mut f = std::fs::File::create(&mode.out).expect("create output");
    f.write_all(json.as_bytes()).expect("write output");
    println!("mapsd load: wrote {}", mode.out);
}
