//! Figure 5 reproduction: sampling-strategy distributions.
//!
//! (a) Histogram of transmission efficiency for random, opt-traj, and
//!     perturbed-opt-traj samples of the bending device — random sampling
//!     concentrates at low transmission, trajectory sampling covers the
//!     full range.
//! (b) t-SNE embedding of the design patterns, labelled by low/high
//!     performance — the two populations form separate clusters and the
//!     perturbed-opt-traj samples cover both.

use maps_bench::{ascii_histogram, calibrated_device};
use maps_data::{
    label_batch, sample_densities, DeviceKind, GenerateConfig, SamplerConfig, SamplingStrategy,
};
use maps_train::{separation_score, tsne, TsneConfig};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    println!("=== Figure 5: sampling strategy distributions (bending device) ===\n");
    let device = calibrated_device(DeviceKind::Bending);
    let per_strategy = 40;
    let cfg = GenerateConfig {
        with_adjoint: false,
        with_residual: false,
        ..Default::default()
    };

    let mut all_patterns: Vec<Vec<f64>> = Vec::new();
    let mut all_transmissions: Vec<f64> = Vec::new();
    let mut strategy_of: Vec<SamplingStrategy> = Vec::new();

    println!("--- (a) transmission histograms ---");
    for strategy in [
        SamplingStrategy::Random,
        SamplingStrategy::OptTraj,
        SamplingStrategy::PerturbedOptTraj,
    ] {
        let densities = sample_densities(
            strategy,
            &device,
            &SamplerConfig {
                count: per_strategy,
                seed: 13,
                trajectory_iterations: 12,
                perturbation: 0.25,
            },
        )
        .expect("sampling");
        let samples = label_batch(&device, &densities, &cfg).expect("labels");
        let transmissions: Vec<f64> = samples
            .iter()
            .map(|s| s.labels.total_transmission().min(1.0))
            .collect();
        println!("\n{}:", strategy.name());
        for (range, count) in ascii_histogram(&transmissions, 10) {
            println!("  {range}  {:3}  {}", count, "#".repeat(count));
        }
        let low = transmissions.iter().filter(|t| **t < 0.1).count();
        println!(
            "  mean T = {:.3}, fraction below 10% = {:.2}",
            transmissions.iter().sum::<f64>() / transmissions.len() as f64,
            low as f64 / transmissions.len() as f64
        );
        for (d, t) in densities.iter().zip(&transmissions) {
            all_patterns.push(d.as_slice().to_vec());
            all_transmissions.push(*t);
            strategy_of.push(strategy);
        }
    }

    println!("\n--- (b) t-SNE of design patterns ---");
    let embedded = tsne(
        &all_patterns,
        &TsneConfig {
            perplexity: 15.0,
            iterations: 250,
            learning_rate: 50.0,
            seed: 5,
        },
    );
    // Low vs high performance populations.
    let labels: Vec<bool> = all_transmissions.iter().map(|t| *t >= 0.3).collect();
    let n_high = labels.iter().filter(|l| **l).count();
    let score = separation_score(&embedded, &labels);
    println!(
        "{} patterns embedded; {} high-performance (T >= 0.3), {} low",
        embedded.len(),
        n_high,
        embedded.len() - n_high
    );
    println!("low/high separation score (inter/intra distance ratio): {score:.2}");
    // Coverage: does perturbed-opt-traj span both clusters?
    for strategy in [
        SamplingStrategy::Random,
        SamplingStrategy::OptTraj,
        SamplingStrategy::PerturbedOptTraj,
    ] {
        let (mut low_cnt, mut high_cnt) = (0, 0);
        for (s, l) in strategy_of.iter().zip(&labels) {
            if *s == strategy {
                if *l {
                    high_cnt += 1;
                } else {
                    low_cnt += 1;
                }
            }
        }
        println!(
            "{:18} covers: {:2} low-perf, {:2} high-perf patterns{}",
            strategy.name(),
            low_cnt,
            high_cnt,
            if low_cnt > 0 && high_cnt > 0 {
                "  (covers BOTH)"
            } else {
                ""
            }
        );
    }
    // First few embedding coordinates for external plotting.
    println!("\nsample embedding coordinates (strategy, T, x, y):");
    for k in (0..embedded.len()).step_by(12) {
        println!(
            "  {:18} T={:.3}  ({:+.2}, {:+.2})",
            strategy_of[k].name(),
            all_transmissions[k],
            embedded[k].0,
            embedded[k].1
        );
    }
    println!("\n[fig5 completed in {:.1?}]", t0.elapsed());
}
