//! Per-request observability overhead for `mapsd` (PR 10).
//!
//! Not a criterion bench: emits machine-readable JSON (`BENCH_pr10.json`
//! by default) so CI can diff runs.
//!
//! Usage (via `scripts/bench.sh` or directly):
//!
//! ```text
//! cargo bench --bench request_obs -- [--smoke] [--out-pr10 PATH]
//! ```
//!
//! One experiment against an in-process daemon on an ephemeral port: the
//! latency of a **warm-cache** `/solve` (the daemon's hot path — the
//! factorization is a cache hit, so the request is mostly protocol and
//! bookkeeping) with the tracing plane **off** (recorder disabled; wide
//! events still on, as in production) versus **on** (flight recorder +
//! tail-sampled flows + head sampling 1-in-16 + exemplars). Batches of
//! the two variants are interleaved so container noise hits both arms.
//!
//! Invariants asserted here:
//!
//! - tracing-on p50 within 5% of tracing-off (full mode; smoke runs use a
//!   relaxed bound because the grid is tiny and the hot path is short);
//! - exactly one wide event per admission across the whole run.

use maps_mapsd::{http_post, serve, DaemonConfig, QueueConfig, TailConfig};
use std::io::Write as _;
use std::time::Instant;

struct Mode {
    smoke: bool,
    out: String,
}

fn parse_args() -> Mode {
    let mut mode = Mode {
        smoke: false,
        out: "BENCH_pr10.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => mode.smoke = true,
            "--out-pr10" | "--out" => {
                mode.out = args.next().expect("--out-pr10 needs a path");
            }
            // cargo bench passes `--bench`; ignore it and anything unknown.
            _ => {}
        }
    }
    mode
}

fn percentile_ms(samples: &mut [f64], p: f64) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let idx = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[idx]
}

fn drive(addr: &str, body: &str, n: usize, latencies: &mut Vec<f64>) {
    for _ in 0..n {
        let started = Instant::now();
        let (status, resp) = http_post(addr, "/solve", body).expect("daemon reachable");
        assert_eq!(status, 200, "warm solve failed: {resp}");
        latencies.push(started.elapsed().as_secs_f64() * 1e3);
    }
}

fn main() {
    let mode = parse_args();
    let ((nx, ny), batches, per_batch) = if mode.smoke {
        ((30, 26), 4, 6)
    } else {
        ((80, 80), 10, 25)
    };
    println!(
        "request_obs: {nx}x{ny} grid, {batches} interleaved batches x {per_batch} requests/arm, mode={}",
        if mode.smoke { "smoke" } else { "full" }
    );

    // Tail sampling configured as in a production deployment: a finite
    // slow threshold nothing here should cross, plus 1-in-16 head
    // sampling — so the tracing-on arm pays begin/close-flow on every
    // request and full retention + exemplar on a trickle.
    let daemon = serve(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        max_body: 4 << 20,
        queue: QueueConfig {
            depth: 64,
            client_quota: 64,
        },
        tail: TailConfig {
            slow_ms: 60_000.0,
            per_endpoint: Vec::new(),
            sample: 16,
        },
    })
    .expect("daemon");
    let addr = daemon.local_addr().to_string();
    let body =
        format!(r#"{{"nx":{nx},"ny":{ny},"dx":0.05,"eps":2.25,"omega":4.05,"deadline_ms":60000}}"#);

    let events_before = maps_obs::reqlog::total();
    let mut issued = 0usize;

    // Warm the factor cache so both arms measure the cache-hit path.
    maps_obs::recorder::disable();
    let mut warmup = Vec::new();
    drive(&addr, &body, 2, &mut warmup);
    issued += 2;

    let mut off = Vec::with_capacity(batches * per_batch);
    let mut on = Vec::with_capacity(batches * per_batch);
    for _ in 0..batches {
        maps_obs::recorder::disable();
        drive(&addr, &body, per_batch, &mut off);
        maps_obs::recorder::enable();
        drive(&addr, &body, per_batch, &mut on);
        issued += 2 * per_batch;
    }
    maps_obs::recorder::disable();
    daemon.stop();

    let off_p50 = percentile_ms(&mut off, 0.50);
    let off_p99 = percentile_ms(&mut off, 0.99);
    let on_p50 = percentile_ms(&mut on, 0.50);
    let on_p99 = percentile_ms(&mut on, 0.99);
    let overhead_pct = (on_p50 - off_p50) / off_p50.max(1e-9) * 100.0;
    let wide_events = (maps_obs::reqlog::total() - events_before) as usize;

    println!(
        "request_obs: warm /solve p50 off {off_p50:.3} ms on {on_p50:.3} ms ({overhead_pct:+.2}%), p99 off {off_p99:.3} on {on_p99:.3}"
    );
    println!("request_obs: {wide_events} wide events for {issued} admissions");

    let json = format!(
        "{{\n  \"bench\": \"request_obs\",\n  \"mode\": \"{}\",\n  \"grid\": {{ \"nx\": {nx}, \"ny\": {ny} }},\n  \"batches\": {batches},\n  \"per_batch\": {per_batch},\n  \"tracing_off\": {{ \"p50_ms\": {off_p50:.4}, \"p99_ms\": {off_p99:.4} }},\n  \"tracing_on\": {{ \"p50_ms\": {on_p50:.4}, \"p99_ms\": {on_p99:.4} }},\n  \"overhead_pct\": {overhead_pct:.3},\n  \"wide_events\": {wide_events},\n  \"requests\": {issued}\n}}\n",
        if mode.smoke { "smoke" } else { "full" },
    );
    let mut f = std::fs::File::create(&mode.out).expect("create output");
    f.write_all(json.as_bytes()).expect("write output");
    println!("request_obs: wrote {}", mode.out);

    // One wide event per admission — the reconciliation contract.
    assert_eq!(
        wide_events, issued,
        "every admission must produce exactly one wide event"
    );
    // The 5% contract is defined at the full-mode 80×80 grid; the smoke
    // grid's solve is so short that fixed per-request cost is a larger
    // fraction of it — the smoke bound only catches order-of-magnitude
    // regressions.
    let budget_pct = if mode.smoke { 25.0 } else { 5.0 };
    assert!(
        overhead_pct < budget_pct,
        "per-request tracing overhead on a warm /solve must stay under {budget_pct}%: \
         got {overhead_pct:.3}% (p50 {on_p50:.4} vs {off_p50:.4} ms)"
    );
}
