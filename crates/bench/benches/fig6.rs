//! Figure 6 reproduction: neural-solver-driven inverse design.
//!
//! (a) Optimization trajectory driven purely by adjoint gradients computed
//!     from NN-predicted forward and adjoint fields, with FDFD-verified
//!     transmission at every iteration.
//! (b) Field of the final design: NN prediction vs FDFD ground truth.
//!
//! Expected shape: the NN-driven trajectory converges to a high-transmission
//! structure confirmed by FDFD, and the NN/FDFD curves track each other.

use maps_bench::{build_dataset, calibrated_device, train_baseline, Baseline, TrainedModel};
use maps_core::FieldSolver;
use maps_data::{DeviceKind, SamplingStrategy};
use maps_fdfd::{FdfdSolver, PmlConfig};
use maps_invdes::{FieldGradient, InitStrategy, InverseDesigner, OptimConfig};
use maps_tensor::{OwnedTape, Params, Tensor};
use maps_train::NeuralFieldSolver;
use std::time::Instant;

struct Borrowed(TrainedModel);
impl maps_nn::Model for Borrowed {
    fn forward(
        &self,
        params: &Params,
        x: Tensor<f64, OwnedTape<f64>>,
    ) -> Tensor<f64, OwnedTape<f64>> {
        self.0.model.forward(params, x)
    }
    fn infer(&self, params: &Params, x: Tensor) -> Tensor {
        self.0.model.infer(params, x)
    }
    fn infer_f32(&self, params: &Params<f32>, x: Tensor<f32>) -> Tensor<f32> {
        self.0.model.infer_f32(params, x)
    }
    fn in_channels(&self) -> usize {
        self.0.model.in_channels()
    }
    fn name(&self) -> &str {
        self.0.model.name()
    }
    fn wants_wave_prior(&self) -> bool {
        self.0.model.wants_wave_prior()
    }
}

fn main() {
    let t0 = Instant::now();
    println!("=== Figure 6: NN-driven inverse design with FDFD verification ===\n");
    let device = calibrated_device(DeviceKind::Bending);
    let fdfd = FdfdSolver::with_pml(PmlConfig::auto(device.grid().dl));

    // Train the surrogate on trajectory data.
    let dataset = build_dataset(&device, SamplingStrategy::PerturbedOptTraj, 32, 6, 41);
    let trained = train_baseline(Baseline::Fno, &dataset, 24, 12, 3);
    println!("surrogate trained (final loss {:.4})\n", trained.final_loss);
    let params = trained.params.clone();
    let normalizer = trained.normalizer;
    let neural = NeuralFieldSolver::new(Borrowed(trained), params, normalizer);

    let problem = device.problem.clone();
    let source = problem.source().expect("source");
    let objective = problem.objective().expect("objective");
    let omega = problem.omega();

    let designer = InverseDesigner::new(OptimConfig {
        iterations: 20,
        learning_rate: 0.12,
        beta_start: 1.5,
        beta_growth: 1.12,
        filter_radius: 1.5,
        symmetry: None,
        litho: None,
        init: InitStrategy::Uniform(0.5),
        ..OptimConfig::default()
    });
    let neural_grad = FieldGradient::new(&neural);

    println!("--- (a) optimization trajectory ---");
    println!("iter | NN-predicted T | FDFD-verified T");
    let mut pairs = Vec::new();
    let result = designer
        .run_with_callback(&problem, &neural_grad, |rec, density, _| {
            let eps = problem.eps_for(density);
            let true_field = fdfd.solve_ez(&eps, &source, omega).expect("fdfd verify");
            let true_t = objective.eval(&true_field);
            println!(
                "{:4} |         {:.4} |          {:.4}",
                rec.iteration, rec.objective, true_t
            );
            pairs.push((rec.objective, true_t));
        })
        .expect("optimization");

    println!("\n--- (b) final design field fidelity ---");
    let eps = problem.eps_for(&result.density);
    let nn_field = neural.solve_ez(&eps, &source, omega).expect("nn field");
    let fdfd_field = fdfd.solve_ez(&eps, &source, omega).expect("fdfd field");
    let nl2 = nn_field.normalized_l2_distance(&fdfd_field);
    println!("final-design field N-L2 (NN vs FDFD): {nl2:.4}");

    let first_true = pairs.first().expect("history").1;
    let best_true = pairs.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    println!("FDFD-verified transmission: {first_true:.4} -> {best_true:.4}");
    println!(
        "NN-driven optimization reached a high-transmission design? {}",
        if best_true > first_true * 2.0 && best_true > 0.3 {
            "YES"
        } else {
            "no"
        }
    );
    // Trajectory correlation between NN-predicted and verified curves.
    let corr = {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let mx = xs.iter().sum::<f64>() / xs.len() as f64;
        let my = ys.iter().sum::<f64>() / ys.len() as f64;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
        cov / (vx.sqrt() * vy.sqrt()).max(1e-30)
    };
    println!("NN-predicted vs FDFD-verified trajectory correlation: {corr:.3}");
    println!("\n[fig6 completed in {:.1?}]", t0.elapsed());
}
