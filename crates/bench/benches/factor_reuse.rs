//! Perf-regression harness for factorization reuse (PR 3).
//!
//! Not a criterion bench: this harness emits a machine-readable JSON file
//! (`BENCH_pr3.json` by default) with median timings so CI can diff runs.
//!
//! Usage (via `scripts/bench.sh` or directly):
//!
//! ```text
//! cargo bench --bench factor_reuse -- [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the grid and repetition counts so the harness finishes
//! in seconds (wired into `scripts/check.sh`); the default full mode runs at
//! the default bending-device grid (80×80, dl = 0.05).
//!
//! Reported medians (nanoseconds):
//!
//! - `factorize_ns` — assemble + banded-LU factorize (what a cache miss pays)
//! - `solve_cold_ns` — full `solve_ez` with an empty cache (factorize + sweep)
//! - `solve_cached_ns` — `solve_ez` answered from the cache (sweep only)
//! - `invdes_iteration_ns` — one inverse-design iteration (forward + adjoint
//!   sharing one factorization)
//! - `label_batch_per_sample_ns` — resilient batch labeling, per sample

use maps_core::{omega_for_wavelength, ComplexField2d, FieldSolver, RealField2d};
use maps_data::{
    label_batch_resilient_par, sample_densities, DeviceKind, DeviceResolution, GenerateConfig,
    SamplerConfig, SamplingStrategy,
};
use maps_fdfd::{factor_cache, FdfdSolver, PmlConfig};
use maps_invdes::{ExactAdjoint, InitStrategy, InverseDesigner, OptimConfig};
use maps_linalg::Complex64;
use std::time::Instant;

struct Mode {
    smoke: bool,
    out: String,
}

fn parse_args() -> Mode {
    let mut mode = Mode {
        smoke: false,
        out: "BENCH_pr3.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => mode.smoke = true,
            "--out" => {
                mode.out = args.next().expect("--out needs a path");
            }
            // cargo bench passes `--bench`; ignore it and anything unknown.
            _ => {}
        }
    }
    mode
}

fn median_ns(mut samples: Vec<u128>) -> u128 {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let mode = parse_args();
    let res = if mode.smoke {
        DeviceResolution::low()
    } else {
        DeviceResolution::default()
    };
    let reps = if mode.smoke { 3 } else { 11 };
    let invdes_iters = if mode.smoke { 4 } else { 20 };
    let label_count = if mode.smoke { 2 } else { 4 };

    let mut device = DeviceKind::Bending.build(res);
    let grid = device.grid();
    let dl = grid.dl;
    let solver = FdfdSolver::with_pml(PmlConfig::auto(dl));
    let omega = omega_for_wavelength(1.55);
    let eps = RealField2d::constant(grid, 4.0);
    let mut j = ComplexField2d::zeros(grid);
    j.set(grid.nx / 2, grid.ny / 2, Complex64::ONE);
    let cache = factor_cache::global();

    eprintln!(
        "factor_reuse: {}x{} grid (dl={dl}), {reps} reps, mode={}",
        grid.nx,
        grid.ny,
        if mode.smoke { "smoke" } else { "full" }
    );

    // Assemble + factorize: the cost a cache miss pays beyond the sweep.
    let factorize_ns = median_ns(
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                let lu = solver
                    .operator(&eps, omega)
                    .to_banded()
                    .factorize()
                    .expect("factorize");
                let ns = t.elapsed().as_nanos();
                std::hint::black_box(&lu);
                ns
            })
            .collect(),
    );

    // Full solve with an empty cache: factorize + substitution sweeps.
    let solve_cold_ns = median_ns(
        (0..reps)
            .map(|_| {
                cache.clear();
                let t = Instant::now();
                let ez = solver.solve_ez(&eps, &j, omega).expect("cold solve");
                let ns = t.elapsed().as_nanos();
                std::hint::black_box(&ez);
                ns
            })
            .collect(),
    );

    // Cached re-solve: the factorization is shared, only the sweeps run.
    solver.solve_ez(&eps, &j, omega).expect("prime cache");
    let solve_cached_ns = median_ns(
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                let ez = solver.solve_ez(&eps, &j, omega).expect("cached solve");
                let ns = t.elapsed().as_nanos();
                std::hint::black_box(&ez);
                ns
            })
            .collect(),
    );

    // Inverse-design iterations: per-iteration wall time from the run
    // callback (each iteration is a distinct design, so each pays one
    // factorization plus the adjoint reuse).
    let adjoint = ExactAdjoint::new(FdfdSolver::with_pml(PmlConfig::auto(dl)));
    device
        .problem
        .calibrate(adjoint.solver())
        .expect("calibrate");
    let designer = InverseDesigner::new(OptimConfig {
        iterations: invdes_iters,
        learning_rate: 0.12,
        beta_start: 1.5,
        beta_growth: 1.15,
        filter_radius: 1.5,
        symmetry: None,
        litho: None,
        init: InitStrategy::Uniform(0.5),
        ..OptimConfig::default()
    });
    let mut iter_ns = Vec::with_capacity(invdes_iters);
    let mut last = Instant::now();
    designer
        .run_with_callback(&device.problem, &adjoint, |_, _, _| {
            iter_ns.push(last.elapsed().as_nanos());
            last = Instant::now();
        })
        .expect("invdes run");
    let invdes_iteration_ns = median_ns(iter_ns);

    // Resilient batch labeling, per produced sample.
    let densities = sample_densities(
        SamplingStrategy::Random,
        &device,
        &SamplerConfig {
            count: label_count,
            seed: 7,
            trajectory_iterations: 4,
            perturbation: 0.25,
        },
    )
    .expect("densities");
    let config = GenerateConfig::default();
    let label_per_sample_ns = median_ns(
        (0..3)
            .map(|_| {
                cache.clear();
                let t = Instant::now();
                let report = label_batch_resilient_par(&device, &densities, &config);
                let ns = t.elapsed().as_nanos();
                assert!(!report.ok.is_empty(), "labeling produced no samples");
                ns / report.ok.len() as u128
            })
            .collect(),
    );

    let speedup = solve_cold_ns as f64 / solve_cached_ns.max(1) as f64;
    let json = format!(
        "{{\n  \"bench\": \"factor_reuse\",\n  \"mode\": \"{mode_s}\",\n  \"grid\": {{ \"nx\": {nx}, \"ny\": {ny}, \"dl\": {dl} }},\n  \"reps\": {reps},\n  \"medians_ns\": {{\n    \"factorize\": {factorize_ns},\n    \"solve_cold\": {solve_cold_ns},\n    \"solve_cached\": {solve_cached_ns},\n    \"invdes_iteration\": {invdes_iteration_ns},\n    \"label_batch_per_sample\": {label_per_sample_ns}\n  }},\n  \"speedup_cached_resolve\": {speedup:.2}\n}}\n",
        mode_s = if mode.smoke { "smoke" } else { "full" },
        nx = grid.nx,
        ny = grid.ny,
    );
    std::fs::write(&mode.out, &json).expect("write bench json");
    eprintln!("{json}");
    eprintln!("wrote {}", mode.out);

    assert!(
        speedup >= 3.0,
        "cached re-solve must be >= 3x faster than cold factorize+solve, got {speedup:.2}x"
    );
}
