//! Perf-regression harness for factorization reuse (PR 3).
//!
//! Not a criterion bench: this harness emits a machine-readable JSON file
//! (`BENCH_pr3.json` by default) with median timings so CI can diff runs.
//!
//! Usage (via `scripts/bench.sh` or directly):
//!
//! ```text
//! cargo bench --bench factor_reuse -- [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the grid and repetition counts so the harness finishes
//! in seconds (wired into `scripts/check.sh`); the default full mode runs at
//! the default bending-device grid (80×80, dl = 0.05).
//!
//! Reported medians (nanoseconds):
//!
//! - `factorize_ns` — assemble + banded-LU factorize (what a cache miss pays)
//! - `solve_cold_ns` — full `solve_ez` with an empty cache (factorize + sweep)
//! - `solve_cached_ns` — `solve_ez` answered from the cache (sweep only)
//! - `invdes_iteration_ns` — one inverse-design iteration (forward + adjoint
//!   sharing one factorization)
//! - `label_batch_per_sample_ns` — resilient batch labeling, per sample
//!
//! The harness additionally times K-excitation multi-RHS solves through
//! `solve_ez_batch` against K sequential `solve_ez` calls (K ∈ {2, 4, 8},
//! warm cache, so the delta is the per-call fingerprint/lookup/span
//! overhead the batch pays once per ω group) and writes those medians to a
//! second JSON (`BENCH_pr4.json` by default, `--out-batched PATH`).

use maps_core::{omega_for_wavelength, ComplexField2d, FieldSolver, RealField2d, SolveRequest};
use maps_data::{
    label_batch_resilient_par, sample_densities, DeviceKind, DeviceResolution, GenerateConfig,
    SamplerConfig, SamplingStrategy,
};
use maps_fdfd::{factor_cache, FdfdSolver, PmlConfig};
use maps_invdes::{ExactAdjoint, InitStrategy, InverseDesigner, OptimConfig};
use maps_linalg::Complex64;
use std::time::Instant;

struct Mode {
    smoke: bool,
    out: String,
    out_batched: String,
}

fn parse_args() -> Mode {
    let mut mode = Mode {
        smoke: false,
        out: "BENCH_pr3.json".to_string(),
        out_batched: "BENCH_pr4.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => mode.smoke = true,
            "--out" => {
                mode.out = args.next().expect("--out needs a path");
            }
            "--out-batched" => {
                mode.out_batched = args.next().expect("--out-batched needs a path");
            }
            // cargo bench passes `--bench`; ignore it and anything unknown.
            _ => {}
        }
    }
    mode
}

fn median_ns(mut samples: Vec<u128>) -> u128 {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let mode = parse_args();
    let res = if mode.smoke {
        DeviceResolution::low()
    } else {
        DeviceResolution::default()
    };
    let reps = if mode.smoke { 3 } else { 11 };
    let invdes_iters = if mode.smoke { 4 } else { 20 };
    let label_count = if mode.smoke { 2 } else { 4 };

    let mut device = DeviceKind::Bending.build(res);
    let grid = device.grid();
    let dl = grid.dl;
    let solver = FdfdSolver::with_pml(PmlConfig::auto(dl));
    let omega = omega_for_wavelength(1.55);
    let eps = RealField2d::constant(grid, 4.0);
    let mut j = ComplexField2d::zeros(grid);
    j.set(grid.nx / 2, grid.ny / 2, Complex64::ONE);
    let cache = factor_cache::global();

    eprintln!(
        "factor_reuse: {}x{} grid (dl={dl}), {reps} reps, mode={}",
        grid.nx,
        grid.ny,
        if mode.smoke { "smoke" } else { "full" }
    );

    // Assemble + factorize: the cost a cache miss pays beyond the sweep.
    let factorize_ns = median_ns(
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                let lu = solver
                    .operator(&eps, omega)
                    .to_banded()
                    .factorize()
                    .expect("factorize");
                let ns = t.elapsed().as_nanos();
                std::hint::black_box(&lu);
                ns
            })
            .collect(),
    );

    // Full solve with an empty cache: factorize + substitution sweeps.
    let solve_cold_ns = median_ns(
        (0..reps)
            .map(|_| {
                cache.clear();
                let t = Instant::now();
                let ez = solver.solve_ez(&eps, &j, omega).expect("cold solve");
                let ns = t.elapsed().as_nanos();
                std::hint::black_box(&ez);
                ns
            })
            .collect(),
    );

    // Cached re-solve: the factorization is shared, only the sweeps run.
    solver.solve_ez(&eps, &j, omega).expect("prime cache");
    let solve_cached_ns = median_ns(
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                let ez = solver.solve_ez(&eps, &j, omega).expect("cached solve");
                let ns = t.elapsed().as_nanos();
                std::hint::black_box(&ez);
                ns
            })
            .collect(),
    );

    // Inverse-design iterations: per-iteration wall time from the run
    // callback (each iteration is a distinct design, so each pays one
    // factorization plus the adjoint reuse).
    let adjoint = ExactAdjoint::new(FdfdSolver::with_pml(PmlConfig::auto(dl)));
    device
        .problem
        .calibrate(adjoint.solver())
        .expect("calibrate");
    let designer = InverseDesigner::new(OptimConfig {
        iterations: invdes_iters,
        learning_rate: 0.12,
        beta_start: 1.5,
        beta_growth: 1.15,
        filter_radius: 1.5,
        symmetry: None,
        litho: None,
        init: InitStrategy::Uniform(0.5),
        ..OptimConfig::default()
    });
    let mut iter_ns = Vec::with_capacity(invdes_iters);
    let mut last = Instant::now();
    designer
        .run_with_callback(&device.problem, &adjoint, |_, _, _| {
            iter_ns.push(last.elapsed().as_nanos());
            last = Instant::now();
        })
        .expect("invdes run");
    let invdes_iteration_ns = median_ns(iter_ns);

    // Resilient batch labeling, per produced sample.
    let densities = sample_densities(
        SamplingStrategy::Random,
        &device,
        &SamplerConfig {
            count: label_count,
            seed: 7,
            trajectory_iterations: 4,
            perturbation: 0.25,
        },
    )
    .expect("densities");
    let config = GenerateConfig::default();
    let label_per_sample_ns = median_ns(
        (0..3)
            .map(|_| {
                cache.clear();
                let t = Instant::now();
                let report = label_batch_resilient_par(&device, &densities, &config);
                let ns = t.elapsed().as_nanos();
                assert!(!report.ok.is_empty(), "labeling produced no samples");
                ns / report.ok.len() as u128
            })
            .collect(),
    );

    // Batched vs sequential multi-RHS: K distinct sources at one ω against
    // a warm cache. Sequential pays the fingerprint + cache lookup + span
    // per solve and one RHS copy per sweep; the batch pays the lookup once
    // per ω group and sweeps every RHS in place, so it must never be
    // slower and pulls ahead as K grows.
    let batch_reps = if mode.smoke { 15 } else { 25 };
    let sources: Vec<ComplexField2d> = (0..8)
        .map(|k| {
            let mut s = ComplexField2d::zeros(grid);
            s.set(
                4 + (k * 7) % (grid.nx - 8),
                4 + (k * 11) % (grid.ny - 8),
                Complex64::new(1.0, 0.2 * k as f64),
            );
            s
        })
        .collect();
    solver.solve_ez(&eps, &j, omega).expect("prime cache");
    let mut multi_rhs = Vec::new();
    for k in [2usize, 4, 8] {
        let requests: Vec<SolveRequest<'_>> = sources[..k]
            .iter()
            .map(|s| SolveRequest::forward(s, omega))
            .collect();
        // Interleave the two measurements: each rep times the sequential
        // and batched variants back to back, so bursty container noise
        // (context switches, noisy neighbors) hits both sides of a pair.
        // The regression check runs on the median of the paired per-rep
        // differences, which cancels that common-mode noise; the reported
        // medians are the honest per-variant timings.
        let mut seq_samples = Vec::with_capacity(batch_reps);
        let mut bat_samples = Vec::with_capacity(batch_reps);
        let mut diffs: Vec<i128> = Vec::with_capacity(batch_reps);
        for _ in 0..batch_reps {
            let t = Instant::now();
            for s in &sources[..k] {
                let ez = solver.solve_ez(&eps, s, omega).expect("sequential solve");
                std::hint::black_box(&ez);
            }
            let seq = t.elapsed().as_nanos();

            let t = Instant::now();
            let out = solver.solve_ez_batch(&eps, &requests);
            let bat = t.elapsed().as_nanos();
            assert!(out.iter().all(Result::is_ok), "batched solve");
            std::hint::black_box(&out);

            seq_samples.push(seq);
            bat_samples.push(bat);
            diffs.push(seq as i128 - bat as i128);
        }
        diffs.sort_unstable();
        let median_diff = diffs[diffs.len() / 2];
        multi_rhs.push((
            k,
            median_ns(seq_samples),
            median_ns(bat_samples),
            median_diff,
        ));
    }

    let speedup = solve_cold_ns as f64 / solve_cached_ns.max(1) as f64;
    let json = format!(
        "{{\n  \"bench\": \"factor_reuse\",\n  \"mode\": \"{mode_s}\",\n  \"grid\": {{ \"nx\": {nx}, \"ny\": {ny}, \"dl\": {dl} }},\n  \"reps\": {reps},\n  \"medians_ns\": {{\n    \"factorize\": {factorize_ns},\n    \"solve_cold\": {solve_cold_ns},\n    \"solve_cached\": {solve_cached_ns},\n    \"invdes_iteration\": {invdes_iteration_ns},\n    \"label_batch_per_sample\": {label_per_sample_ns}\n  }},\n  \"speedup_cached_resolve\": {speedup:.2}\n}}\n",
        mode_s = if mode.smoke { "smoke" } else { "full" },
        nx = grid.nx,
        ny = grid.ny,
    );
    std::fs::write(&mode.out, &json).expect("write bench json");
    eprintln!("{json}");
    eprintln!("wrote {}", mode.out);

    let entries = multi_rhs
        .iter()
        .map(|(k, seq, bat, diff)| {
            let ratio = *seq as f64 / (*bat).max(1) as f64;
            format!(
                "    {{ \"k\": {k}, \"sequential_ns\": {seq}, \"batched_ns\": {bat}, \"paired_diff_ns\": {diff}, \"speedup\": {ratio:.3} }}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let batched_json = format!(
        "{{\n  \"bench\": \"batched_multi_rhs\",\n  \"mode\": \"{mode_s}\",\n  \"grid\": {{ \"nx\": {nx}, \"ny\": {ny}, \"dl\": {dl} }},\n  \"reps\": {batch_reps},\n  \"multi_rhs\": [\n{entries}\n  ]\n}}\n",
        mode_s = if mode.smoke { "smoke" } else { "full" },
        nx = grid.nx,
        ny = grid.ny,
    );
    std::fs::write(&mode.out_batched, &batched_json).expect("write batched bench json");
    eprintln!("{batched_json}");
    eprintln!("wrote {}", mode.out_batched);

    assert!(
        speedup >= 3.0,
        "cached re-solve must be >= 3x faster than cold factorize+solve, got {speedup:.2}x"
    );
    for (k, sequential_ns, batched_ns, median_diff) in &multi_rhs {
        if *k <= 2 {
            // At K=2 the two variants are nearly identical in work, so the
            // paired median sits at the noise floor of a shared container;
            // allow a small negative slack (5% of the sequential median)
            // instead of demanding a strictly non-negative diff.
            let slack = (*sequential_ns as i128) / 20;
            assert!(
                *median_diff >= -slack,
                "batched {k}-RHS solve must be no slower than sequential (within noise): \
                 paired median diff {median_diff} ns ({batched_ns} vs {sequential_ns} ns)"
            );
        } else {
            assert!(
                *median_diff > 0,
                "batched {k}-RHS solve must beat sequential: \
                 paired median diff {median_diff} ns ({batched_ns} vs {sequential_ns} ns)"
            );
        }
    }
}
