//! Criterion micro-benchmarks of the numerical substrates, including the
//! paper's headline claim that a neural surrogate is orders of magnitude
//! faster than the numerical solver per field evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maps_core::{ComplexField2d, FieldSolver, Grid2d, RealField2d};
use maps_fdfd::{FdfdSolver, PmlConfig};
use maps_linalg::{fft::fft2, BandedMatrix, Complex64};
use maps_nn::{Fno, FnoConfig, Model};
use maps_tensor::{Params, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fdfd_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fdfd_solve");
    group.sample_size(10);
    for &n in &[32usize, 48, 64] {
        let grid = Grid2d::new(n, n, 0.1);
        let eps = RealField2d::constant(grid, 4.0);
        let mut j = ComplexField2d::zeros(grid);
        j.set(n / 2, n / 2, Complex64::ONE);
        let solver = FdfdSolver::with_pml(PmlConfig::auto(grid.dl));
        let omega = maps_core::omega_for_wavelength(1.55);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| solver.solve_ez(&eps, &j, omega).expect("solve"));
        });
    }
    group.finish();
}

fn bench_neural_vs_fdfd(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_per_field_eval");
    group.sample_size(10);
    let n = 40;
    let grid = Grid2d::new(n, n, 0.1);
    let eps = RealField2d::constant(grid, 4.0);
    let mut j = ComplexField2d::zeros(grid);
    j.set(n / 2, n / 2, Complex64::ONE);
    let omega = maps_core::omega_for_wavelength(1.55);
    let fdfd = FdfdSolver::with_pml(PmlConfig::auto(grid.dl));
    group.bench_function("fdfd_exact", |b| {
        b.iter(|| fdfd.solve_ez(&eps, &j, omega).expect("solve"));
    });
    let mut params = Params::new();
    let mut rng = StdRng::seed_from_u64(0);
    let model = Fno::new(
        &mut params,
        &mut rng,
        FnoConfig {
            in_channels: 4,
            out_channels: 2,
            width: 12,
            modes: 6,
            depth: 3,
        },
    );
    let solver =
        maps_train::NeuralFieldSolver::new(model, params, maps_train::FieldNormalizer::identity());
    group.bench_function("neural_fno", |b| {
        b.iter(|| solver.solve_ez(&eps, &j, omega).expect("nn solve"));
    });
    group.finish();
}

fn bench_banded_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("banded_lu_factorize");
    group.sample_size(10);
    for &n in &[1024usize, 2500] {
        let bw = (n as f64).sqrt() as usize;
        let mut a = BandedMatrix::zeros(n, bw, bw);
        for i in 0..n {
            a.set(i, i, Complex64::new(4.0, 0.4));
            if i >= 1 {
                a.set(i, i - 1, Complex64::from_re(-1.0));
            }
            if i >= bw {
                a.set(i, i - bw, Complex64::from_re(-1.0));
            }
            if i + 1 < n {
                a.set(i, i + 1, Complex64::from_re(-1.0));
            }
            if i + bw < n {
                a.set(i, i + bw, Complex64::from_re(-1.0));
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| a.clone().factorize().expect("factorize"));
        });
    }
    group.finish();
}

/// Matvec vs. substitution solve vs. factorize on Helmholtz-shaped banded
/// systems at the device-zoo grid sizes (40×40 low-res → n=1600, bw=40;
/// 80×80 default → n=6400, bw=80). The factorize/solve gap is the headroom
/// the factorization cache converts into cached re-solve speedup.
fn bench_banded_ops_at_device_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("banded_ops_device_grids");
    group.sample_size(10);
    for &nx in &[40usize, 80] {
        let n = nx * nx;
        let bw = nx;
        let mut a = BandedMatrix::zeros(n, bw, bw);
        for i in 0..n {
            a.set(i, i, Complex64::new(4.0, 0.4));
            if i >= 1 {
                a.set(i, i - 1, Complex64::from_re(-1.0));
            }
            if i >= bw {
                a.set(i, i - bw, Complex64::from_re(-1.0));
            }
            if i + 1 < n {
                a.set(i, i + 1, Complex64::from_re(-1.0));
            }
            if i + bw < n {
                a.set(i, i + bw, Complex64::from_re(-1.0));
            }
        }
        let x: Vec<Complex64> = (0..n)
            .map(|k| Complex64::new((k as f64 * 0.01).sin(), (k as f64 * 0.02).cos()))
            .collect();
        let lu = a.clone().factorize().expect("factorize");
        group.bench_with_input(BenchmarkId::new("matvec", nx), &nx, |b, _| {
            b.iter(|| a.matvec(&x));
        });
        group.bench_with_input(BenchmarkId::new("solve", nx), &nx, |b, _| {
            b.iter(|| lu.solve(&x));
        });
        group.bench_with_input(BenchmarkId::new("factorize", nx), &nx, |b, _| {
            b.iter(|| a.clone().factorize().expect("factorize"));
        });
    }
    group.finish();
}

fn bench_fft2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft2");
    for &(h, w) in &[(32usize, 32usize), (40, 40), (64, 64)] {
        let data: Vec<Complex64> = (0..h * w)
            .map(|k| Complex64::new((k as f64 * 0.1).sin(), 0.0))
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{h}x{w}")),
            &(h, w),
            |b, _| {
                b.iter(|| {
                    let mut buf = data.clone();
                    fft2(&mut buf, h, w);
                    buf
                });
            },
        );
    }
    group.finish();
}

fn bench_fno_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("fno_forward");
    group.sample_size(10);
    let mut params = Params::new();
    let mut rng = StdRng::seed_from_u64(0);
    let model = Fno::new(
        &mut params,
        &mut rng,
        FnoConfig {
            in_channels: 4,
            out_channels: 2,
            width: 12,
            modes: 6,
            depth: 3,
        },
    );
    let x = Tensor::zeros(&[1, 4, 40, 40]);
    group.bench_function("taped_f64_batch1_40x40", |b| {
        b.iter(|| model.forward(&params, x.trace()).no_tape().len());
    });
    group.bench_function("infer_f64_batch1_40x40", |b| {
        b.iter(|| model.infer(&params, x.clone()).len());
    });
    let params32 = params.cast::<f32>();
    let x32 = x.cast::<f32>();
    group.bench_function("infer_f32_batch1_40x40", |b| {
        b.iter(|| model.infer_f32(&params32, x32.clone()).len());
    });
    group.finish();
}

/// Span guard overhead on the disabled fast path (recorder off, no debug
/// logging — the cost every production call site pays) versus with the
/// flight recorder capturing.
fn bench_span_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("span_overhead");
    maps_obs::recorder::disable();
    group.bench_function("disabled", |b| {
        b.iter(|| maps_obs::span("bench.micro.span"));
    });
    group.bench_function("disabled_with_field", |b| {
        b.iter(|| maps_obs::span("bench.micro.span").field("k", 7));
    });
    maps_obs::recorder::enable();
    group.bench_function("recording", |b| {
        b.iter(|| maps_obs::span("bench.micro.span").field("k", 7));
    });
    maps_obs::recorder::disable();
    group.finish();
}

criterion_group!(
    benches,
    bench_fdfd_scaling,
    bench_neural_vs_fdfd,
    bench_banded_lu,
    bench_banded_ops_at_device_sizes,
    bench_fft2,
    bench_fno_forward,
    bench_span_overhead
);
criterion_main!(benches);
