//! Table III reproduction: main results across all baselines and devices.
//!
//! Trains FNO, F-FNO, UNet, and NeurOLight on perturbed-trajectory datasets
//! of each of the six benchmark devices and reports the paper's triple
//! `Train N-L2norm / Test N-L2norm / Test gradient similarity` per cell.
//!
//! Expected shape (paper Table III): spectral models (FNO/F-FNO/NeurOLight)
//! beat UNet; everything degrades on the complex multiplexing devices
//! (MDM/WDM/TOS) relative to bending/crossing.

use maps_bench::{build_dataset, calibrated_device, evaluate, train_baseline, Baseline, EvalRow};
use maps_data::{DeviceKind, SamplingStrategy};
use rayon::prelude::*;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    println!("=== Table III: baselines x devices (Train N-L2 / Test N-L2 / Grad Sim) ===\n");
    let epochs = 8;
    let width = 8;
    let devices = DeviceKind::all();

    // Generate datasets (parallel across devices), then train each baseline.
    let results: Vec<(DeviceKind, Vec<(Baseline, EvalRow)>)> = devices
        .par_iter()
        .map(|&kind| {
            let device = calibrated_device(kind);
            let dataset = build_dataset(&device, SamplingStrategy::PerturbedOptTraj, 16, 6, 31);
            let rows = Baseline::all()
                .into_iter()
                .map(|b| {
                    let trained = train_baseline(b, &dataset, epochs, width, 5);
                    (b, evaluate(&trained, &dataset))
                })
                .collect();
            (kind, rows)
        })
        .collect();

    // Print in the paper's two-block layout.
    for block in devices.chunks(3) {
        print!("{:>16}", "baselines");
        for kind in block {
            print!(" | {:>20}", kind.name());
        }
        println!();
        println!("{}", "-".repeat(16 + block.len() * 23));
        for baseline in Baseline::all() {
            print!("{:>16}", baseline.label());
            for kind in block {
                let (_, rows) = results.iter().find(|(k, _)| k == kind).unwrap();
                let (_, row) = rows.iter().find(|(b, _)| *b == baseline).unwrap();
                print!(
                    " | {:>5.2}/{:>5.2}/{:>6.2}",
                    row.train_nl2, row.test_nl2, row.grad_similarity
                );
            }
            println!();
        }
        println!();
    }

    // Shape summary.
    let mean_test = |b: Baseline| -> f64 {
        let v: Vec<f64> = results
            .iter()
            .map(|(_, rows)| rows.iter().find(|(bb, _)| *bb == b).unwrap().1.test_nl2)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let simple: f64 = results
        .iter()
        .filter(|(k, _)| matches!(k, DeviceKind::Bending | DeviceKind::Crossing))
        .flat_map(|(_, rows)| rows.iter().map(|(_, r)| r.test_nl2))
        .sum::<f64>()
        / 8.0;
    let complex: f64 = results
        .iter()
        .filter(|(k, _)| matches!(k, DeviceKind::Mdm | DeviceKind::Wdm | DeviceKind::Tos))
        .flat_map(|(_, rows)| rows.iter().map(|(_, r)| r.test_nl2))
        .sum::<f64>()
        / 12.0;
    println!("mean test N-L2 per baseline:");
    for b in Baseline::all() {
        println!("  {:>16}: {:.3}", b.label(), mean_test(b));
    }
    println!(
        "\nsimple devices (bend/crossing) mean test N-L2 {simple:.3} vs complex (MDM/WDM/TOS) {complex:.3} — degradation on complex devices? {}",
        if complex > simple { "YES" } else { "no" }
    );
    println!("\n[table3 completed in {:.1?}]", t0.elapsed());
}
