//! Table I reproduction: sampling-strategy comparison.
//!
//! Trains FNO and UNet on (a) a perturbed optimization-trajectory dataset
//! and (b) a random-pattern dataset of the same size, then reports
//! Train N-L2norm / Test N-L2norm / gradient similarity, where the test set
//! is always drawn from the realistic trajectory distribution.
//!
//! Expected shape (paper Table I): trajectory-trained models generalize far
//! better (much lower test N-L2, much higher gradient similarity) than
//! random-trained ones.

use maps_bench::{build_dataset, calibrated_device, evaluate, train_baseline, Baseline};
use maps_data::{DeviceKind, SamplingStrategy};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    println!("=== Table I: data sampling strategies (bending device) ===\n");
    let device = calibrated_device(DeviceKind::Bending);
    let epochs = 14;
    let width = 10;
    let (train_n, test_n) = (32, 12);

    println!(
        "{:>10} | {:>17} | {:>14} | {:>13} | {:>15}",
        "models", "dataset", "Train N-L2norm", "Test N-L2norm", "Grad Similarity"
    );
    println!("{}", "-".repeat(82));
    let mut rows = Vec::new();
    for baseline in [Baseline::Fno, Baseline::UNet] {
        for (strategy, label) in [
            (SamplingStrategy::PerturbedOptTraj, "Perturb Opt-Traj"),
            (SamplingStrategy::Random, "random"),
        ] {
            let dataset = build_dataset(&device, strategy, train_n, test_n, 21);
            let trained = train_baseline(baseline, &dataset, epochs, width, 3);
            let row = evaluate(&trained, &dataset);
            println!(
                "{:>10} | {:>17} | {:>14.4} | {:>13.4} | {:>15.5}",
                trained.model.name(),
                label,
                row.train_nl2,
                row.test_nl2,
                row.grad_similarity
            );
            rows.push((baseline, strategy, row));
        }
    }

    // Shape assertions mirroring the paper's conclusion.
    println!();
    for baseline in [Baseline::Fno, Baseline::UNet] {
        let traj = rows
            .iter()
            .find(|(b, s, _)| *b == baseline && *s == SamplingStrategy::PerturbedOptTraj)
            .unwrap();
        let rand = rows
            .iter()
            .find(|(b, s, _)| *b == baseline && *s == SamplingStrategy::Random)
            .unwrap();
        let gen_ok = traj.2.test_nl2 < rand.2.test_nl2;
        let grad_ok = traj.2.grad_similarity > rand.2.grad_similarity;
        println!(
            "{:>10}: trajectory sampling better test N-L2? {}  better grad similarity? {}",
            baseline.label(),
            if gen_ok { "YES" } else { "no" },
            if grad_ok { "YES" } else { "no" }
        );
    }
    println!("\n[table1 completed in {:.1?}]", t0.elapsed());
}
